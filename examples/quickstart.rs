//! Quickstart: two DCFA-MPI ranks on two simulated Xeon Phi cards —
//! hello-message exchange plus a short ping-pong with timing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use dcfa_mpi_repro::dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::Simulation;
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;

fn main() {
    // Build the simulated machine: 2 nodes, each a host Xeon + Phi card +
    // ConnectX-3 HCA, parameters from the paper's Table I.
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);

    let report: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let report2 = report.clone();

    // DCFA-MPI: ranks live on the Phi cards; resource setup is offloaded to
    // the per-node host daemon; data moves card-to-card over InfiniBand.
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let me = comm.rank();
            let peer = 1 - me;
            let buf = comm.alloc(4096).unwrap();

            // Hello exchange.
            if me == 0 {
                comm.write(&buf, 0, b"hello from the mic side");
                comm.send(ctx, &buf, peer, 0).unwrap();
            } else {
                let st = comm
                    .recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(0))
                    .unwrap();
                let text = String::from_utf8_lossy(&comm.read_vec(&buf)[..23]).into_owned();
                report2.lock().push(format!(
                    "rank 1 received {} bytes from rank {}: {text:?}",
                    st.len, st.source
                ));
            }

            // Ping-pong: blocking round trips, timed in *virtual* time.
            let iters = 100;
            let t0 = ctx.now();
            for _ in 0..iters {
                if me == 0 {
                    comm.send(ctx, &buf.slice(0, 4), peer, 1).unwrap();
                    comm.recv(ctx, &buf.slice(0, 4), Src::Rank(peer), TagSel::Tag(2))
                        .unwrap();
                } else {
                    comm.recv(ctx, &buf.slice(0, 4), Src::Rank(peer), TagSel::Tag(1))
                        .unwrap();
                    comm.send(ctx, &buf.slice(0, 4), peer, 2).unwrap();
                }
            }
            if me == 0 {
                let rtt = (ctx.now() - t0).as_micros_f64() / iters as f64;
                report2.lock().push(format!(
                    "4-byte ping-pong over {iters} iterations: {rtt:.1} us RTT (paper: ~15 us)"
                ));
            }
        },
    );

    sim.run_expect();
    for line in report.lock().iter() {
        println!("{line}");
    }
}
