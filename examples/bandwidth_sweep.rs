//! Bandwidth sweeps in the style of Figs. 5, 8 and 9: raw RDMA directions
//! and the MPI runtimes, 4 B – 1 MiB.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep
//! ```

use dcfa_mpi_repro::apps::{
    mpi_pingpong_blocking, mpi_pingpong_nonblocking, rdma_direction, Direction, MpiRuntime,
};
use dcfa_mpi_repro::dcfa_mpi::MpiConfig;
use dcfa_mpi_repro::fabric::ClusterConfig;

fn main() {
    let ccfg = ClusterConfig::paper();
    let sizes: Vec<u64> = (2..=20).map(|p| 1u64 << p).collect();

    println!("== raw RDMA write bandwidth by direction (GB/s, cf. Fig. 5) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "size", "host->host", "host->phi", "phi->host", "phi->phi"
    );
    for &s in sizes.iter().step_by(3) {
        let row: Vec<f64> = [
            Direction::HostToHost,
            Direction::HostToPhi,
            Direction::PhiToHost,
            Direction::PhiToPhi,
        ]
        .iter()
        .map(|&d| rdma_direction(&ccfg, d, s, 4).bw_gbs)
        .collect();
        println!(
            "{s:>10} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            row[0], row[1], row[2], row[3]
        );
    }

    println!("\n== MPI bandwidth (GB/s): DCFA-MPI (±offload buffer) and Intel-MPI-on-Phi ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size", "dcfa+offload", "dcfa-no-off", "intel-phi"
    );
    for &s in sizes.iter().step_by(3) {
        let a = mpi_pingpong_nonblocking(&ccfg, &MpiRuntime::Dcfa(MpiConfig::dcfa()), s, 6);
        let b =
            mpi_pingpong_nonblocking(&ccfg, &MpiRuntime::Dcfa(MpiConfig::dcfa_no_offload()), s, 6);
        let c = mpi_pingpong_blocking(&ccfg, &MpiRuntime::IntelPhi, s, 6);
        println!(
            "{s:>10} {:>14.2} {:>14.2} {:>14.2}",
            a.bw_gbs, b.bw_gbs, c.bw_gbs
        );
    }
}
