//! Master/worker task farm over DCFA-MPI: the master deals work items to
//! whichever Phi card asks first (`MPI_ANY_SOURCE` + probe), workers
//! return variable-size results — the classic irregular-parallelism
//! pattern, exercising any-source matching, probing and variable message
//! sizes in one program.
//!
//! ```text
//! cargo run --release --example task_farm
//! ```

use dcfa_mpi_repro::dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::{SimDuration, Simulation};
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;
use std::sync::Arc;

const TAG_READY: u32 = 1;
const TAG_WORK: u32 = 2;
const TAG_RESULT: u32 = 3;
const TAG_STOP: u32 = 4;

fn main() {
    let n = 5; // 1 master + 4 workers
    let tasks = 16u64;

    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);

    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();

    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        n,
        LaunchOpts::default(),
        move |ctx, comm| {
            if comm.rank() == 0 {
                // ---- master ----
                let tiny = comm.alloc(8).unwrap();
                let mut next = 0u64;
                let mut done = 0u64;
                let mut stopped = 0usize;
                let mut results_bytes = 0u64;
                while done < tasks {
                    // Whoever speaks first gets served.
                    let st = comm.recv(ctx, &tiny, Src::Any, TagSel::Any).unwrap();
                    match st.tag {
                        TAG_READY => {
                            if next < tasks {
                                comm.write(&tiny, 0, &next.to_le_bytes());
                                comm.send(ctx, &tiny, st.source, TAG_WORK).unwrap();
                                next += 1;
                            } else {
                                comm.send(ctx, &tiny, st.source, TAG_STOP).unwrap();
                                stopped += 1;
                            }
                        }
                        TAG_RESULT => {
                            // Probe for the variable-size payload that follows.
                            let env =
                                comm.probe(ctx, Src::Rank(st.source), TagSel::Tag(TAG_RESULT));
                            let buf = comm.alloc(env.len).unwrap();
                            comm.recv(ctx, &buf, Src::Rank(st.source), TagSel::Tag(TAG_RESULT))
                                .unwrap();
                            results_bytes += env.len;
                            done += 1;
                            comm.free(&buf);
                        }
                        other => panic!("unexpected tag {other}"),
                    }
                }
                // Stop the workers that are still asking for work.
                while stopped < n - 1 {
                    let st = comm
                        .recv(ctx, &tiny, Src::Any, TagSel::Tag(TAG_READY))
                        .unwrap();
                    comm.send(ctx, &tiny, st.source, TAG_STOP).unwrap();
                    stopped += 1;
                }
                l2.lock().push(format!(
                "master: {tasks} tasks farmed out, {results_bytes} result bytes collected, finished at {}",
                ctx.now()
            ));
            } else {
                // ---- worker ----
                let tiny = comm.alloc(8).unwrap();
                let mut served = 0;
                loop {
                    comm.send(ctx, &tiny, 0, TAG_READY).unwrap();
                    let st = comm.recv(ctx, &tiny, Src::Rank(0), TagSel::Any).unwrap();
                    if st.tag == TAG_STOP {
                        break;
                    }
                    let task = u64::from_le_bytes(comm.read_vec(&tiny).try_into().unwrap());
                    // "Compute": variable effort and a variable-size result
                    // (some results are large enough to go rendezvous).
                    ctx.sleep(SimDuration::from_micros(50 + 37 * (task % 7)));
                    let result_len = 1024u64 << (task % 6); // 1 KiB .. 32 KiB
                    let result = comm.alloc(result_len).unwrap();
                    comm.write(&result, 0, &[task as u8; 64]);
                    // Envelope first (so the master can probe the size), then
                    // the payload.
                    comm.send(ctx, &tiny, 0, TAG_RESULT).unwrap();
                    comm.send(ctx, &result, 0, TAG_RESULT).unwrap();
                    comm.free(&result);
                    served += 1;
                }
                l2.lock()
                    .push(format!("worker {} served {served} tasks", comm.rank()));
            }
        },
    );
    sim.run_expect();
    let mut lines = log.lock().clone();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
}
