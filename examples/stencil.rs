//! Five-point stencil (the paper's third experiment) across all three
//! runtimes, with checksum validation that every communication path moved
//! the exact same bytes.
//!
//! ```text
//! cargo run --release --example stencil          # paper-size 1282^2 grid
//! cargo run --release --example stencil -- small # quick 258^2 variant
//! ```

use dcfa_mpi_repro::apps::{stencil_dcfa, stencil_intel_phi, stencil_offload, StencilParams};
use dcfa_mpi_repro::dcfa_mpi::MpiConfig;
use dcfa_mpi_repro::fabric::ClusterConfig;

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let (n, iters) = if small { (258, 10) } else { (1282, 100) };
    let ccfg = ClusterConfig::paper();
    let p = StencilParams {
        n,
        iters,
        procs: 8,
        threads: 56,
    };

    println!(
        "five-point stencil: {n}x{n} grid, {iters} iterations, {} procs x {} threads",
        p.procs, p.threads
    );

    let serial = stencil_dcfa(
        &ccfg,
        MpiConfig::dcfa(),
        StencilParams {
            procs: 1,
            threads: 1,
            ..p
        },
    );
    println!(
        "  serial reference           : {:>10.1} us/iter",
        serial.iter_us
    );

    let dcfa = stencil_dcfa(&ccfg, MpiConfig::dcfa(), p);
    let intel = stencil_intel_phi(&ccfg, p);
    let off = stencil_offload(&ccfg, p);

    for (name, r) in [
        ("DCFA-MPI", &dcfa),
        ("Intel MPI on Xeon Phi", &intel),
        ("Intel MPI on Xeon + offload", &off),
    ] {
        println!(
            "  {name:<27}: {:>10.1} us/iter  speedup {:>6.1}x  checksum {:.6e}",
            r.iter_us,
            serial.iter_us / r.iter_us,
            r.checksum
        );
    }

    assert_eq!(
        dcfa.checksum.to_bits(),
        intel.checksum.to_bits(),
        "runtimes disagree on the arithmetic!"
    );
    assert_eq!(dcfa.checksum.to_bits(), off.checksum.to_bits());
    println!("checksums identical across all three runtimes ✓");
}
