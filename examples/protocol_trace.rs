//! Protocol trace: watch the eager and rendezvous state machines on the
//! wire. Sends one small (Eager) and one large (sender-first Rendezvous)
//! message and prints every ring packet with its virtual timestamp.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use dcfa_mpi_repro::dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::Simulation;
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);

    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let l2 = lines.clone();
    sim.set_trace(move |t, msg| {
        // Only packet-level traffic is interesting here.
        if msg.contains("seq=") {
            l2.lock().push(format!("[{:>12}] {msg}", t.to_string()));
        }
    });

    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let small = comm.alloc(256).unwrap();
            let large = comm.alloc(256 << 10).unwrap();
            if comm.rank() == 0 {
                // Eager: one copy + RDMA write into the peer's ring.
                comm.send(ctx, &small, 1, 1).unwrap();
                // Sender-first rendezvous: RTS -> peer RDMA READ -> DONE.
                comm.send(ctx, &large, 1, 2).unwrap();
            } else {
                comm.recv(ctx, &small, Src::Rank(0), TagSel::Tag(1))
                    .unwrap();
                // Delay so rank 0's RTS arrives before our receive (pure
                // sender-first path).
                ctx.sleep(dcfa_mpi_repro::simcore::SimDuration::from_micros(200));
                comm.recv(ctx, &large, Src::Rank(0), TagSel::Tag(2))
                    .unwrap();
            }
        },
    );
    sim.run_expect();

    println!("packet trace (virtual time | event):");
    for l in lines.lock().iter() {
        println!("{l}");
    }
}
