//! Derived-datatype demo: exchange matrix *column* halos between two ranks
//! using strided vector layouts (the paper's "communication using user
//! defined data types" future work, implemented in `dcfa_mpi::datatype`).
//!
//! ```text
//! cargo run --release --example column_halo
//! ```

use dcfa_mpi_repro::dcfa_mpi::datatype::{recv_typed, send_typed, Layout};
use dcfa_mpi_repro::dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::Simulation;
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);

    let out: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();

    // A 512 x 512 grid of f64 per rank, column-partitioned: rank 0 owns
    // the left half-plane, rank 1 the right. Each iteration exchanges one
    // boundary *column* — a strided layout with 512 blocks of 8 bytes.
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let (rows, cols, elem) = (512u64, 512u64, 8u64);
            let grid = comm.alloc(rows * cols * elem).unwrap();
            let me = comm.rank();
            let peer = 1 - me;

            // Fill the boundary column with recognizable values.
            let my_boundary = if me == 0 { cols - 1 } else { 0 };
            for r in 0..rows {
                let v = (me as u64 + 1) * 1_000_000 + r;
                comm.write(&grid, (r * cols + my_boundary) * elem, &v.to_le_bytes());
            }

            let send_col = Layout::column(my_boundary, rows, cols, elem);
            // The ghost column lives on the far side of the local grid (a
            // real column-partitioned code would widen the grid by one ghost
            // column per neighbour; reusing the far edge keeps the demo
            // compact without overlapping the send column).
            let halo_col = if me == 0 { 0 } else { cols - 1 };
            let recv_col = Layout::column(halo_col, rows, cols, elem);

            let t0 = ctx.now();
            // Exchange: lower rank sends first (simple two-rank ordering).
            if me == 0 {
                send_typed(ctx, comm, &grid, &send_col, peer, 7).unwrap();
                recv_typed(ctx, comm, &grid, &recv_col, Src::Rank(peer), TagSel::Tag(7)).unwrap();
            } else {
                recv_typed(ctx, comm, &grid, &recv_col, Src::Rank(peer), TagSel::Tag(7)).unwrap();
                send_typed(ctx, comm, &grid, &send_col, peer, 7).unwrap();
            }
            let elapsed = ctx.now() - t0;

            // Verify the received halo column.
            let all = comm.read_vec(&grid);
            let check_row = 100usize;
            let off = (check_row as u64 * cols + halo_col) as usize * 8;
            let v = u64::from_le_bytes(all[off..off + 8].try_into().unwrap());
            let expect = (peer as u64 + 1) * 1_000_000 + check_row as u64;
            assert_eq!(v, expect, "rank {me} halo column corrupted");
            out2.lock().push(format!(
                "rank {me}: column halo exchanged in {elapsed} — halo[{check_row}] = {v} ✓"
            ));
        },
    );
    sim.run_expect();
    for l in out.lock().iter() {
        println!("{l}");
    }
}
