//! Control-plane fault tolerance through the full MPI stack: the
//! delegation daemons crash (and get respawned), drop replies (answered
//! from the dedup cache on retransmit) and delay replies (forcing
//! retransmits) while 4 ranks run a mixed eager/rendezvous workload with
//! heartbeats and the lease reaper live. Payloads must arrive intact,
//! host twin pages must balance, and the auditor must confirm every
//! crash paired with a respawn and every re-attach replayed its full
//! resource journal.

use std::sync::Arc;

use dcfa_mpi_repro::dcfa::{self, DaemonConfig};
use dcfa_mpi_repro::dcfa_mpi::{
    audit, launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel, TraceBuf,
};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::{SimDuration, Simulation};
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// The headline soak: daemons crash, drop and delay mid-run; everything
/// still completes with correct payloads, nothing leaks, and the audit
/// (which includes crash/respawn pairing and full-journal-replay checks)
/// stays clean.
#[test]
fn four_ranks_survive_daemon_crash_drop_and_delay() {
    const N: usize = 4;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(N));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        daemon: DaemonConfig {
            faults: dcfa::parse_daemon_fault_spec("6:crash,20:drop,35:delay").expect("valid spec"),
            lease_ttl: Some(SimDuration::from_millis(2)),
            reaper_period: SimDuration::from_micros(500),
            ..Default::default()
        },
        ..Default::default()
    };
    let cfg = MpiConfig {
        heartbeat_interval: Some(SimDuration::from_micros(200)),
        ..MpiConfig::dcfa()
    };
    let corrupt = Arc::new(Mutex::new(0u64));
    let corrupt2 = corrupt.clone();
    let stats = launch(&sim, &ib, &scif, cfg, N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let stx = comm.alloc(512).unwrap();
        let srx = comm.alloc(512).unwrap();
        let big = comm.alloc(64 << 10).unwrap();
        // Eager ring traffic, every payload verified.
        for i in 0..8u8 {
            let rr = comm
                .irecv(ctx, &srx, Src::Rank(prev), TagSel::Tag(10))
                .unwrap();
            comm.write(&stx, 0, &pattern(512, i));
            let sr = comm.isend(ctx, &stx, next, 10).unwrap();
            comm.wait(ctx, sr).unwrap();
            comm.wait(ctx, rr).unwrap();
            if comm.read_vec(&srx) != pattern(512, i) {
                *corrupt2.lock() += 1;
            }
        }
        // Rendezvous between pairs, both skews: 64 KiB needs an offload
        // twin from the daemon — the resource op the armed plans crash,
        // drop and delay.
        let peer = r ^ 1;
        let skew = SimDuration::from_micros(150);
        for (round, recv_late) in [true, false].into_iter().enumerate() {
            let salt = 100 + round as u8;
            if r % 2 == 0 {
                if !recv_late {
                    ctx.sleep(skew);
                }
                comm.write(&big, 0, &pattern(64 << 10, salt));
                comm.send(ctx, &big, peer, 20).unwrap();
            } else {
                if recv_late {
                    ctx.sleep(skew);
                }
                comm.recv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                    .unwrap();
                if comm.read_vec(&big) != pattern(64 << 10, salt) {
                    *corrupt2.lock() += 1;
                }
            }
        }
    });
    sim.run_expect();

    assert_eq!(*corrupt.lock(), 0, "payloads must survive the chaos intact");

    let d = stats.expect("Phi launch spawns daemons").snapshot();
    assert!(d.daemon_crashes >= 1, "crash plan must fire: {d:?}");
    assert_eq!(
        d.daemon_crashes, d.daemon_respawns,
        "every crash must be respawned: {d:?}"
    );
    assert!(d.reattaches >= 1, "clients must re-attach: {d:?}");
    assert!(d.cmd_retries >= 1, "chaos must force retransmits: {d:?}");
    assert_eq!(d.leases_reclaimed, 0, "heartbeats keep every rank alive");

    let events = tracer.snapshot();
    let report = audit(&events).expect("auditor found invariant violations");
    assert_eq!(report.daemon_crashes, d.daemon_crashes);
    assert!(report.reattaches >= 1);
    assert_eq!(report.mr_leaked, 0);

    // Host memory only ever holds offload twins; after finalize (and
    // crash drains) every page must be back.
    for n in 0..N {
        let used = cluster.mem_used(MemRef {
            node: NodeId(n),
            domain: Domain::Host,
        });
        assert_eq!(used, 0, "node {n} leaked {used} host bytes");
    }
}

/// Degradation: a daemon whose host memory is exhausted cannot provide
/// offload twins; the rank must fall back to direct-from-Phi rendezvous
/// sends (counted, traced) instead of failing the transfer.
#[test]
fn offload_exhaustion_degrades_to_direct_sends() {
    const N: usize = 2;
    let mut sim = Simulation::new();
    // Host memory too small for a 64 KiB twin: every RegOffloadMr OOMs.
    let cluster = Cluster::new(
        sim.scheduler(),
        ClusterConfig {
            host_mem_capacity: 16 << 10,
            ..ClusterConfig::with_nodes(N)
        },
    );
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    };
    let reports = Arc::new(Mutex::new(Vec::new()));
    let reports2 = reports.clone();
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        N,
        opts,
        move |ctx, comm| {
            let big = comm.alloc(64 << 10).unwrap();
            for i in 0..5 {
                if comm.rank() == 0 {
                    comm.write(&big, 0, &pattern(64 << 10, i as u8));
                    comm.send(ctx, &big, 1, i).unwrap();
                } else {
                    comm.recv(ctx, &big, Src::Rank(0), TagSel::Tag(i)).unwrap();
                    assert_eq!(comm.read_vec(&big), pattern(64 << 10, i as u8));
                }
            }
            if comm.rank() == 0 {
                reports2.lock().push(comm.dump());
            }
        },
    );
    sim.run_expect();

    let reports = reports.lock();
    let c = &reports[0].comm;
    assert_eq!(c.rndv_sends, 5, "all transfers must complete: {c:?}");
    assert_eq!(c.offload_syncs, 0, "no twin can exist: {c:?}");
    assert!(
        c.offload_fallbacks >= 3,
        "each failed twin attempt is a fallback: {c:?}"
    );

    let events = tracer.snapshot();
    let report = audit(&events).expect("auditor found invariant violations");
    assert_eq!(
        report.offload_degraded, 1,
        "rank 0 must degrade after repeated failures"
    );
    assert_eq!(report.mr_leaked, 0);
}
