//! Rank fail-stop through the full MPI stack: a kill schedule tears
//! ranks down mid-flight (QPs error, heartbeats stop), survivors detect
//! the death (heartbeat staleness or QP-error snooping) and observe
//! `PeerFailed` instead of hanging, revocation drains pending work, and
//! `shrink` agrees on a surviving-ranks sub-communicator that completes
//! a further verified exchange. Every scenario is deterministic: kills
//! trigger on MPI-operation counts, detection on simulated-time TTLs.

use std::sync::Arc;

use dcfa_mpi_repro::dcfa_mpi::{
    audit, launch, CommStats, Communicator, KillSpec, LaunchOpts, MpiConfig, MpiError, Src, TagSel,
    TraceBuf,
};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::{SimDuration, Simulation};
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// Per-rank outcome a test closure records on its way out. Killed ranks
/// never reach the recording line and stay `None`.
#[derive(Clone, Debug, Default)]
struct RankOut {
    stats: CommStats,
    mr_pinned: usize,
    sub_size: usize,
    corrupt: u64,
    saw_peer_failed: bool,
}

/// Detection without recovery: rank 3 fail-stops mid-run. A pending
/// receive sourced from the corpse resolves with `PeerFailed` (heartbeat
/// TTL detection), sends toward it fail instead of wedging on credits
/// (QP-error snooping), survivor-to-survivor traffic keeps working, and
/// finalize completes without the dead rank.
#[test]
fn killed_rank_is_detected_and_survivors_finish() {
    const N: usize = 4;
    const LEN: usize = 512;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(N));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        // Rank 3 dies as it enters its third MPI operation: after one
        // send to rank 0 and one to rank 1.
        kills: vec![KillSpec {
            rank: 3,
            after_ops: 3,
        }],
        ..Default::default()
    };
    let cfg = MpiConfig {
        peer_ttl: Some(SimDuration::from_micros(50)),
        ..MpiConfig::dcfa()
    };
    let outs: Arc<Mutex<Vec<Option<RankOut>>>> = Arc::new(Mutex::new(vec![None; N]));
    let outs2 = outs.clone();
    launch(&sim, &ib, &scif, cfg, N, opts, move |ctx, comm| {
        let r = comm.rank();
        let buf = comm.alloc(LEN as u64).unwrap();
        let mut out = RankOut::default();
        match r {
            3 => {
                // Two farewell messages, then death at the third op.
                comm.write(&buf, 0, &pattern(LEN, 3));
                comm.send(ctx, &buf, 0, 7).unwrap();
                comm.send(ctx, &buf, 1, 7).unwrap();
                loop {
                    let _ = comm.send(ctx, &buf, 0, 7);
                }
            }
            0 => {
                comm.recv(ctx, &buf, Src::Rank(3), TagSel::Tag(7)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 3) {
                    out.corrupt += 1;
                }
                // A receive the dead rank will never satisfy: must fail
                // with PeerFailed once the TTL promotes rank 3, not hang.
                let req = comm
                    .irecv(ctx, &buf, Src::Rank(3), TagSel::Tag(99))
                    .unwrap();
                match comm.wait(ctx, req) {
                    Err(MpiError::PeerFailed(3)) => out.saw_peer_failed = true,
                    other => panic!("pending recv from corpse resolved as {other:?}"),
                }
            }
            1 => {
                comm.recv(ctx, &buf, Src::Rank(3), TagSel::Tag(7)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 3) {
                    out.corrupt += 1;
                }
                // Sends toward the corpse must fail finitely (flush
                // completions on the errored QP, then entry checks).
                for _ in 0..10_000 {
                    match comm.send(ctx, &buf, 3, 5) {
                        Ok(()) => {}
                        Err(MpiError::PeerFailed(3)) => {
                            out.saw_peer_failed = true;
                            break;
                        }
                        Err(e) => panic!("send to corpse failed oddly: {e:?}"),
                    }
                }
                assert!(out.saw_peer_failed, "sends to a dead peer never failed");
                // Survivor-to-survivor traffic still works after the death.
                comm.write(&buf, 0, &pattern(LEN, 1));
                comm.send(ctx, &buf, 2, 6).unwrap();
                comm.recv(ctx, &buf, Src::Rank(2), TagSel::Tag(6)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 2) {
                    out.corrupt += 1;
                }
            }
            _ => {
                comm.recv(ctx, &buf, Src::Rank(1), TagSel::Tag(6)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 1) {
                    out.corrupt += 1;
                }
                comm.write(&buf, 0, &pattern(LEN, 2));
                comm.send(ctx, &buf, 1, 6).unwrap();
            }
        }
        comm.free(&buf);
        out.stats = comm.stats();
        out.mr_pinned = comm.mr_pinned_len();
        outs2.lock()[r] = Some(out);
    });
    sim.run_expect();

    let outs = outs.lock();
    assert!(outs[3].is_none(), "the killed rank must not finish");
    for r in [0usize, 1, 2] {
        let o = outs[r].as_ref().unwrap_or_else(|| panic!("rank {r} hung"));
        assert_eq!(o.corrupt, 0, "rank {r} saw corrupt payloads");
        assert_eq!(o.mr_pinned, 0, "rank {r} left MR leases pinned");
    }
    assert!(outs[0].as_ref().unwrap().saw_peer_failed);
    assert!(outs[1].as_ref().unwrap().saw_peer_failed);
    let deaths: u64 = outs
        .iter()
        .flatten()
        .map(|o| o.stats.peer_deaths_detected)
        .sum();
    assert!(deaths >= 2, "ranks 0 and 1 both reap the corpse: {deaths}");
    let report = audit(&tracer.snapshot()).expect("auditor found invariant violations");
    assert_eq!(report.ranks_killed, 1);
    assert!(report.peers_reaped >= 2, "reaps: {}", report.peers_reaped);
    // Host memory holds only offload twins; survivors' nodes must have
    // returned every page at finalize. (Node 3 keeps whatever the corpse
    // held — its "process" died without cleanup, by design.)
    for node in 0..3 {
        let used = cluster.mem_used(MemRef {
            node: NodeId(node),
            domain: Domain::Host,
        });
        assert_eq!(used, 0, "node {node} leaked {used} host bytes");
    }
}

/// The full ULFM cycle: a death mid-ring surfaces as `PeerFailed`, the
/// observers revoke (two ranks revoke concurrently — the flood must be
/// idempotent), every parked receive drains with an error, `shrink`
/// agrees on the 4 survivors, and a further verified exchange runs on
/// the shrunk communicator with renumbered ranks.
#[test]
fn revoke_drains_and_shrink_rebuilds_the_world() {
    const N: usize = 5;
    const LEN: usize = 256;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(N));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        // Park recv (1), ring iter 1 send+recv (2, 3), death entering
        // the second iteration's send (4).
        kills: vec![KillSpec {
            rank: 2,
            after_ops: 4,
        }],
        ..Default::default()
    };
    let cfg = MpiConfig {
        peer_ttl: Some(SimDuration::from_micros(50)),
        ..MpiConfig::dcfa()
    };
    let outs: Arc<Mutex<Vec<Option<RankOut>>>> = Arc::new(Mutex::new(vec![None; N]));
    let outs2 = outs.clone();
    launch(&sim, &ib, &scif, cfg, N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let stx = comm.alloc(LEN as u64).unwrap();
        let srx = comm.alloc(LEN as u64).unwrap();
        let pbuf = comm.alloc(64).unwrap();
        let mut out = RankOut::default();
        // Parked receive: drained by the revocation (or by the source's
        // death), releasing every rank from the ring no matter where the
        // failure interrupted it.
        let park = comm
            .irecv(ctx, &pbuf, Src::Rank(next), TagSel::Tag(777))
            .unwrap();
        let mut failed = false;
        for iter in 0..6u8 {
            comm.write(&stx, 0, &pattern(LEN, (r as u8) ^ iter));
            let mut errs: Vec<MpiError> = Vec::new();
            let sr = comm.isend(ctx, &stx, next, 7);
            let rr = comm.irecv(ctx, &srx, Src::Rank(prev), TagSel::Tag(7));
            let mut done = 0;
            for q in [sr, rr] {
                match q {
                    Ok(q) => match comm.wait(ctx, q) {
                        Ok(_) => done += 1,
                        Err(e) => errs.push(e),
                    },
                    Err(e) => errs.push(e),
                }
            }
            if done == 2 && comm.read_vec(&srx) != pattern(LEN, (prev as u8) ^ iter) {
                out.corrupt += 1;
            }
            // A rank can see both errors in one iteration (its send
            // drained by a neighbour's revoke, its recv reaped by the
            // death): any PeerFailed counts as having seen the corpse.
            for e in &errs {
                match e {
                    MpiError::PeerFailed(p) => {
                        assert_eq!(*p, 2, "only rank 2 dies");
                        out.saw_peer_failed = true;
                    }
                    MpiError::Revoked => {}
                    other => panic!("rank {r} saw unexpected error {other:?}"),
                }
            }
            if !errs.is_empty() {
                failed = true;
                break;
            }
        }
        assert!(
            failed || r == 0 || r == 4,
            "ring neighbours must observe the death"
        );
        // Rank 1's send WR flushes on the corpse's errored QP, so it is
        // guaranteed to see PeerFailed and revoke. Rank 3 revokes on
        // whatever error released it — two concurrent revocations, so
        // the flood must be idempotent (and must spare the subsequent
        // shrink agreement's own traffic).
        if out.saw_peer_failed || (r == 3 && failed) {
            comm.revoke(ctx);
        }
        let park_res = comm.wait(ctx, park);
        assert!(
            park_res.is_err(),
            "parked recv must drain with an error, got {park_res:?}"
        );
        {
            let mut sub = comm.shrink(ctx).expect("survivor must shrink");
            out.sub_size = sub.size();
            let (sr, sn) = (sub.rank(), sub.size());
            let snext = (sr + 1) % sn;
            let sprev = (sr + sn - 1) % sn;
            for iter in 0..3u8 {
                sub.cluster()
                    .write(&stx, 0, &pattern(LEN, 0x40 ^ (sr as u8) ^ iter));
                sub.sendrecv(ctx, &stx, snext, &srx, sprev, 5).unwrap();
                if sub.cluster().read_vec(&srx) != pattern(LEN, 0x40 ^ (sprev as u8) ^ iter) {
                    out.corrupt += 1;
                }
            }
        }
        comm.free(&stx);
        comm.free(&srx);
        comm.free(&pbuf);
        out.stats = comm.stats();
        out.mr_pinned = comm.mr_pinned_len();
        outs2.lock()[r] = Some(out);
    });
    sim.run_expect();

    let outs = outs.lock();
    assert!(outs[2].is_none(), "the killed rank must not finish");
    for r in [0usize, 1, 3, 4] {
        let o = outs[r].as_ref().unwrap_or_else(|| panic!("rank {r} hung"));
        assert_eq!(o.corrupt, 0, "rank {r} saw corrupt payloads");
        assert_eq!(o.sub_size, 4, "rank {r} shrank to the wrong world");
        assert_eq!(o.mr_pinned, 0, "rank {r} left MR leases pinned");
        assert!(
            o.stats.revokes_observed >= 1,
            "rank {r} never observed the revocation"
        );
    }
    // The corpse's upstream neighbour saw PeerFailed (flush snoop).
    assert!(outs[1].as_ref().unwrap().saw_peer_failed);
    let sum =
        |f: fn(&CommStats) -> u64| -> u64 { outs.iter().flatten().map(|o| f(&o.stats)).sum() };
    assert_eq!(
        sum(|s| s.peer_deaths_detected),
        4,
        "4 survivors reap 1 corpse"
    );
    assert!(
        sum(|s| s.reqs_revoked) >= 1,
        "no request drained as Revoked"
    );
    assert!(
        sum(|s| s.dead_reclaimed) >= 1,
        "nothing reclaimed from the corpse"
    );
    let report = audit(&tracer.snapshot()).expect("auditor found invariant violations");
    assert_eq!(report.ranks_killed, 1);
    assert_eq!(report.peers_reaped, 4);
    assert!(report.revokes_observed >= 4);
    assert_eq!(
        report.shrink_commits, 4,
        "every survivor commits the shrink"
    );
}

/// A participant dies *inside* the shrink agreement: rank 4 dies idle
/// (pure heartbeat detection — its QPs never carried traffic), rank 3
/// revokes and then dies posting its agreement report. The remaining
/// ranks must restart the agreement at the new death epoch and commit a
/// 3-rank world.
#[test]
fn death_mid_agreement_restarts_and_commits() {
    const N: usize = 5;
    const LEN: usize = 128;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(N));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        kills: vec![
            // Dies entering its second op: right after parking, before
            // any data ever flows — only heartbeats can expose it.
            KillSpec {
                rank: 4,
                after_ops: 2,
            },
            // Park (1), then the shrink agreement's report send (2):
            // death lands in the middle of the agreement.
            KillSpec {
                rank: 3,
                after_ops: 2,
            },
        ],
        ..Default::default()
    };
    let cfg = MpiConfig {
        peer_ttl: Some(SimDuration::from_micros(50)),
        ..MpiConfig::dcfa()
    };
    let outs: Arc<Mutex<Vec<Option<RankOut>>>> = Arc::new(Mutex::new(vec![None; N]));
    let outs2 = outs.clone();
    launch(&sim, &ib, &scif, cfg, N, opts, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let pbuf = comm.alloc(64).unwrap();
        let mut out = RankOut::default();
        let park = comm
            .irecv(ctx, &pbuf, Src::Rank(next), TagSel::Tag(777))
            .unwrap();
        if r == 4 {
            // Dies entering this send; nothing reaches the wire.
            let _ = comm.send(ctx, &pbuf, 0, 50);
            unreachable!("rank 4 is killed at its second operation");
        }
        let park_res = comm.wait(ctx, park);
        assert!(park_res.is_err(), "park must drain, got {park_res:?}");
        if r == 3 {
            // Saw PeerFailed(4) from the park (heartbeat detection),
            // revokes, then dies posting its agreement report.
            assert!(matches!(park_res, Err(MpiError::PeerFailed(4))));
            comm.revoke(ctx);
            let _ = comm.shrink(ctx);
            unreachable!("rank 3 is killed inside the agreement");
        }
        let stx = comm.alloc(LEN as u64).unwrap();
        let srx = comm.alloc(LEN as u64).unwrap();
        {
            let mut sub = comm.shrink(ctx).expect("survivor must shrink");
            out.sub_size = sub.size();
            let (sr, sn) = (sub.rank(), sub.size());
            let snext = (sr + 1) % sn;
            let sprev = (sr + sn - 1) % sn;
            sub.cluster().write(&stx, 0, &pattern(LEN, 0x20 ^ sr as u8));
            sub.sendrecv(ctx, &stx, snext, &srx, sprev, 5).unwrap();
            if sub.cluster().read_vec(&srx) != pattern(LEN, 0x20 ^ sprev as u8) {
                out.corrupt += 1;
            }
        }
        comm.free(&stx);
        comm.free(&srx);
        comm.free(&pbuf);
        out.stats = comm.stats();
        out.mr_pinned = comm.mr_pinned_len();
        outs2.lock()[r] = Some(out);
    });
    sim.run_expect();

    let outs = outs.lock();
    assert!(outs[3].is_none() && outs[4].is_none());
    for r in [0usize, 1, 2] {
        let o = outs[r].as_ref().unwrap_or_else(|| panic!("rank {r} hung"));
        assert_eq!(o.corrupt, 0, "rank {r} saw corrupt payloads");
        assert_eq!(o.sub_size, 3, "rank {r} shrank to the wrong world");
        assert_eq!(o.mr_pinned, 0, "rank {r} left MR leases pinned");
        assert!(
            o.stats.agreement_restarts >= 1,
            "rank {r} never restarted the agreement: {:?}",
            o.stats.agreement_restarts
        );
    }
    let report = audit(&tracer.snapshot()).expect("auditor found invariant violations");
    assert_eq!(report.ranks_killed, 2);
    assert_eq!(report.shrink_commits, 3, "the 3 survivors commit once each");
}

/// Lazy-connect REQ/ACK frames are lost: the handshake watchdog must
/// re-issue them through the timer heap and the transfer still complete.
/// Dropping the first two directory frames covers both the initiator's
/// REQ and the passive side's ACK (or a cross-connect's two REQs).
#[test]
fn dropped_connect_handshake_is_retried() {
    const LEN: usize = 1024;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let tracer = TraceBuf::new(1 << 14);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        conn_drops: Some((0, 2)),
        ..Default::default()
    };
    let outs: Arc<Mutex<Vec<Option<RankOut>>>> = Arc::new(Mutex::new(vec![None; 2]));
    let outs2 = outs.clone();
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        2,
        opts,
        move |ctx, comm| {
            let r = comm.rank();
            let buf = comm.alloc(LEN as u64).unwrap();
            let mut out = RankOut::default();
            if r == 0 {
                comm.write(&buf, 0, &pattern(LEN, 0xA5));
                comm.send(ctx, &buf, 1, 3).unwrap();
                comm.recv(ctx, &buf, Src::Rank(1), TagSel::Tag(4)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 0x5A) {
                    out.corrupt += 1;
                }
            } else {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(3)).unwrap();
                if comm.read_vec(&buf) != pattern(LEN, 0xA5) {
                    out.corrupt += 1;
                }
                comm.write(&buf, 0, &pattern(LEN, 0x5A));
                comm.send(ctx, &buf, 0, 4).unwrap();
            }
            comm.free(&buf);
            out.stats = comm.stats();
            outs2.lock()[r] = Some(out);
        },
    );
    sim.run_expect();

    let outs = outs.lock();
    let retries: u64 = outs.iter().flatten().map(|o| o.stats.conn_retries).sum();
    assert!(
        retries >= 1,
        "dropped handshake frames were never re-issued"
    );
    for o in outs.iter().flatten() {
        assert_eq!(o.corrupt, 0, "payload corrupted across the retried connect");
    }
    let report = audit(&tracer.snapshot()).expect("auditor found invariant violations");
    assert!(report.conn_retries >= 1);
    for node in 0..2 {
        let used = cluster.mem_used(MemRef {
            node: NodeId(node),
            domain: Domain::Host,
        });
        assert_eq!(used, 0, "node {node} leaked {used} host bytes");
    }
}
