//! Whole-stack calibration: the headline ratios the paper prints, asserted
//! end-to-end through every layer (simulator → fabric → verbs/scif → DCFA
//! → DCFA-MPI → workloads). DESIGN.md §7 documents the constants these
//! pin down.

use dcfa_mpi_repro::apps::{
    commonly_dcfa, commonly_offload, mpi_pingpong_blocking, mpi_pingpong_nonblocking,
    rdma_direction, stencil_dcfa, stencil_intel_phi, stencil_offload, Direction, MpiRuntime,
    StencilParams,
};
use dcfa_mpi_repro::dcfa_mpi::MpiConfig;
use dcfa_mpi_repro::fabric::ClusterConfig;

fn ccfg() -> ClusterConfig {
    ClusterConfig::paper()
}

#[test]
fn abstract_claim_3x_bandwidth_over_intel_phi() {
    // "DCFA-MPI delivers 3 times greater bandwidth than the 'Intel MPI on
    // Xeon Phi co-processors' mode"
    let c = ccfg();
    let size = 2 << 20;
    let d = mpi_pingpong_blocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), size, 5);
    let i = mpi_pingpong_blocking(&c, &MpiRuntime::IntelPhi, size, 5);
    let ratio = d.bw_gbs / i.bw_gbs;
    assert!(
        (2.3..3.8).contains(&ratio),
        "bandwidth ratio {ratio:.2}, paper ~3x"
    );
}

#[test]
fn abstract_claim_2_to_12x_commonly() {
    // "a from 2 to 12 times speed-up ... in communication with 2 MPI
    // processes" (the communication-only application).
    let c = ccfg();
    let small =
        commonly_offload(&c, 64, 12).iter_us / commonly_dcfa(&c, MpiConfig::dcfa(), 64, 12).iter_us;
    let large = commonly_offload(&c, 2 << 20, 5).iter_us
        / commonly_dcfa(&c, MpiConfig::dcfa(), 2 << 20, 5).iter_us;
    assert!(
        small > 8.0 && small < 16.0,
        "small-message speed-up {small:.1}, paper ~12x"
    );
    assert!(
        large > 1.6 && large < 3.0,
        "large-message speed-up {large:.1}, paper ~2x"
    );
    assert!(
        small > large,
        "speed-up must shrink as offload overhead amortizes"
    );
}

#[test]
fn fig5_bottleneck_factor() {
    // "Xeon Phi co-processor to Xeon Phi co-processor InfiniBand data
    // transfer is always slower than host to host, by more than 4 times."
    let c = ccfg();
    let hh = rdma_direction(&c, Direction::HostToHost, 1 << 20, 4);
    let pp = rdma_direction(&c, Direction::PhiToPhi, 1 << 20, 4);
    assert!(hh.bw_gbs / pp.bw_gbs > 4.0);
}

#[test]
fn fig8_conclusion_only_2x_slower_than_host() {
    // "the Xeon Phi co-processor to Xeon Phi co-processor communication
    // using DCFA-MPI is only 2 times slower than host to host for large
    // messages."
    let c = ccfg();
    let host = mpi_pingpong_nonblocking(&c, &MpiRuntime::Dcfa(MpiConfig::host()), 1 << 20, 5);
    let dcfa = mpi_pingpong_nonblocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 1 << 20, 5);
    let ratio = dcfa.rtt_us / host.rtt_us;
    assert!(
        (1.5..2.6).contains(&ratio),
        "DCFA/host = {ratio:.2}, paper ~2"
    );
}

#[test]
fn fig12_headline_speedups() {
    // 8 procs x 56 threads: DCFA-MPI 117x, Intel-MPI-on-Phi 113x,
    // Xeon+offload 74x over the serial program. Run at a reduced grid
    // that preserves the compute/communication proportions enough for a
    // band check (the full 1282-grid numbers live in EXPERIMENTS.md).
    let c = ccfg();
    let n = 642; // half-size grid keeps this test quick
    let iters = 12;
    let serial = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n,
            iters,
            procs: 1,
            threads: 1,
        },
    );
    let p = StencilParams {
        n,
        iters,
        procs: 8,
        threads: 56,
    };
    let d = serial.iter_us / stencil_dcfa(&c, MpiConfig::dcfa(), p).iter_us;
    let i = serial.iter_us / stencil_intel_phi(&c, p).iter_us;
    let o = serial.iter_us / stencil_offload(&c, p).iter_us;
    // Shape: DCFA ≈ IntelPhi, both well above offload mode.
    assert!(d > 60.0, "DCFA speed-up {d:.0}x");
    assert!(
        (0.85..1.1).contains(&(i / d)),
        "IntelPhi/DCFA = {:.2}",
        i / d
    );
    assert!(o < d * 0.75, "offload {o:.0}x must trail DCFA {d:.0}x");
    assert!(o > d * 0.2, "offload {o:.0}x unreasonably slow vs {d:.0}x");
}

#[test]
fn determinism_of_full_experiments() {
    // Any experiment run twice produces identical virtual-time results.
    let c = ccfg();
    let a = mpi_pingpong_blocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 32 << 10, 6);
    let b = mpi_pingpong_blocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 32 << 10, 6);
    assert_eq!(a.rtt_us.to_bits(), b.rtt_us.to_bits());
    let s1 = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n: 130,
            iters: 3,
            procs: 4,
            threads: 8,
        },
    );
    let s2 = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n: 130,
            iters: 3,
            procs: 4,
            threads: 8,
        },
    );
    assert_eq!(s1.iter_us.to_bits(), s2.iter_us.to_bits());
    assert_eq!(s1.checksum.to_bits(), s2.checksum.to_bits());
}
