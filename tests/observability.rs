//! Protocol-trace + auditor integration tests: the MR-lease lifetime
//! fixes (no leak with caching disabled, no deregister under an in-flight
//! RDMA) and deterministic replay of a traced multi-rank run, all checked
//! by the event-stream auditor rather than ad-hoc assertions.

use std::sync::Arc;

use dcfa_mpi_repro::dcfa_mpi::{
    audit, launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel, TraceBuf, TraceEvent,
};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::{SimDuration, Simulation};
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;

struct Rig {
    sim: Simulation,
    cluster: Arc<Cluster>,
    ib: Arc<IbFabric>,
    scif: Arc<ScifFabric>,
}

fn rig(nodes: usize) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    Rig {
        sim,
        cluster,
        ib,
        scif,
    }
}

fn traced_opts(tracer: &TraceBuf) -> LaunchOpts {
    LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    }
}

/// With the MR cache pool disabled (`mr_cache_capacity = 0`), every
/// rendezvous registration must be torn down when its transfer completes:
/// nothing resident, nothing pinned, nothing leaked — the regression this
/// layer's lease model fixed (lookups used to register and never
/// deregister).
#[test]
fn cache_disabled_releases_every_mr() {
    let mut r = rig(2);
    let tracer = TraceBuf::new(4096);
    let cfg = MpiConfig {
        mr_cache_capacity: 0,
        ..MpiConfig::dcfa_no_offload()
    };
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        cfg,
        2,
        traced_opts(&tracer),
        move |ctx, comm| {
            let buf = comm.alloc(128 << 10).unwrap();
            for i in 0..4 {
                if comm.rank() == 0 {
                    comm.send(ctx, &buf, 1, i).unwrap();
                } else {
                    comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(i)).unwrap();
                }
            }
            comm.free(&buf);
            let (hits, misses) = comm.mr_cache_stats();
            assert_eq!(hits, 0, "disabled cache must never hit");
            assert!(
                misses > 0,
                "rendezvous traffic goes through the cache as misses"
            );
            assert_eq!(
                comm.mr_cache_len(),
                0,
                "disabled cache must hold no regions"
            );
            assert_eq!(comm.mr_pinned_len(), 0, "no lease may outlive its transfer");
        },
    );
    r.sim.run_expect();

    let events = tracer.snapshot();
    let report = audit(&events).expect("auditor found invariant violations");
    assert!(report.mr_registered > 0, "run must have registered regions");
    assert_eq!(
        report.mr_leaked, 0,
        "every registration must be matched by a deregister"
    );
    // Mirror `phi_memory_released_after_finalize`: host memory only ever
    // holds offload twins (none in this no-offload config), so anything
    // left after finalize is a leak. Phi memory keeps the engine-owned
    // rings, as in the seed test.
    for n in 0..2 {
        let used = r.cluster.mem_used(MemRef {
            node: NodeId(n),
            domain: Domain::Host,
        });
        assert_eq!(used, 0, "node {n} leaked {used} host bytes");
    }
}

/// A tiny (capacity 1) cache under concurrent rendezvous transfers from
/// two distinct buffers: eviction pressure arrives while the first
/// region's RDMA is still in flight. The pinned region must survive (the
/// overflow acquisition goes uncached) and the payloads must arrive
/// intact — the use-after-deregister regression.
#[test]
fn eviction_waits_for_inflight_rendezvous() {
    let mut r = rig(2);
    let tracer = TraceBuf::new(8192);
    let cfg = MpiConfig {
        mr_cache_capacity: 1,
        ..MpiConfig::dcfa_no_offload()
    };
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        cfg,
        2,
        traced_opts(&tracer),
        move |ctx, comm| {
            let len = 64u64 << 10;
            let a = comm.alloc(len).unwrap();
            let b = comm.alloc(len).unwrap();
            if comm.rank() == 0 {
                comm.write(&a, 0, &[0xAA; 64]);
                comm.write(&b, 0, &[0xBB; 64]);
                // Both sends outstanding at once: registering `b` while `a`'s
                // RDMA READ is pending forces the eviction decision.
                let ra = comm.isend(ctx, &a, 1, 1).unwrap();
                let rb = comm.isend(ctx, &b, 1, 2).unwrap();
                comm.waitall(ctx, &[ra, rb]).unwrap();
            } else {
                ctx.sleep(SimDuration::from_micros(50));
                let ra = comm.irecv(ctx, &a, Src::Rank(0), TagSel::Tag(1)).unwrap();
                let rb = comm.irecv(ctx, &b, Src::Rank(0), TagSel::Tag(2)).unwrap();
                comm.waitall(ctx, &[ra, rb]).unwrap();
                assert_eq!(&comm.read_vec(&a)[..64], &[0xAA; 64]);
                assert_eq!(&comm.read_vec(&b)[..64], &[0xBB; 64]);
                *ok2.lock() = true;
            }
            assert_eq!(comm.mr_pinned_len(), 0, "leases must all be released");
        },
    );
    r.sim.run_expect();
    assert!(*ok.lock(), "receiver verified both payloads");

    // The auditor proves no region was deregistered or evicted while an
    // RDMA lease still pinned it.
    let events = tracer.snapshot();
    let report = audit(&events).expect("auditor found invariant violations");
    assert_eq!(report.mr_leaked, 0);
}

/// The traced 4-rank mixed workload: eager ring, both rendezvous flavours
/// (peer skew selects sender-first then receiver-first), ANY_SOURCE
/// fan-in, offload-buffer syncs. One simulation's event stream must pass
/// the auditor, and a second identical simulation must replay the exact
/// same stream (the property that makes trace-based debugging viable).
#[test]
fn auditor_replays_4rank_mixed_run_deterministically() {
    fn run() -> Vec<TraceEvent> {
        let mut r = rig(4);
        let tracer = TraceBuf::new(1 << 16);
        launch(
            &r.sim,
            &r.ib,
            &r.scif,
            MpiConfig::dcfa(),
            4,
            traced_opts(&tracer),
            move |ctx, comm| {
                let (me, n) = (comm.rank(), comm.size());
                let next = (me + 1) % n;
                let prev = (me + n - 1) % n;
                let stx = comm.alloc(512).unwrap();
                let srx = comm.alloc(512).unwrap();
                let big = comm.alloc(64 << 10).unwrap();
                for _ in 0..6 {
                    comm.sendrecv(ctx, &stx, next, &srx, prev, 10).unwrap();
                }
                let peer = me ^ 1;
                for recv_late in [true, false] {
                    if me % 2 == 0 {
                        if !recv_late {
                            ctx.sleep(SimDuration::from_micros(150));
                        }
                        comm.send(ctx, &big, peer, 20).unwrap();
                    } else {
                        if recv_late {
                            ctx.sleep(SimDuration::from_micros(150));
                        }
                        comm.recv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                            .unwrap();
                    }
                }
                if me == 0 {
                    for _ in 1..n {
                        comm.recv(ctx, &srx, Src::Any, TagSel::Any).unwrap();
                    }
                } else {
                    comm.send(ctx, &stx, 0, 30).unwrap();
                }
            },
        );
        r.sim.run_expect();
        assert_eq!(tracer.dropped(), 0, "ring must not overflow in this run");
        tracer.snapshot()
    }

    let events = run();
    let report = audit(&events).expect("auditor found invariant violations");
    assert!(report.data_packets > 0);
    assert!(
        report.rts_matched > 0,
        "run must exercise sender-first rendezvous"
    );
    assert!(
        report.offload_syncs > 0,
        "64 KiB sends must stage through the offload buffer"
    );
    assert_eq!(report.mr_leaked, 0);

    let replay = run();
    assert_eq!(
        events, replay,
        "identical simulations must produce identical traces"
    );
}

/// Containment lookup in the offload-twin cache: re-sending from the same
/// Phi buffer must reuse the host twin (hit), not allocate a new one.
#[test]
fn offload_twin_containment_reuses_host_buffer() {
    let mut r = rig(2);
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let buf = comm.alloc(32 << 10).unwrap();
            for i in 0..3 {
                if comm.rank() == 0 {
                    comm.send(ctx, &buf, 1, i).unwrap();
                } else {
                    comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(i)).unwrap();
                }
            }
            if comm.rank() == 0 {
                let (hits, misses) = comm.offload_cache_stats();
                assert_eq!(misses, 1, "first send allocates the twin");
                assert_eq!(hits, 2, "repeat sends must hit via containment");
            }
        },
    );
    r.sim.run_expect();
}
