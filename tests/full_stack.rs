//! Cross-crate integration tests: mixed traffic patterns, larger rank
//! counts, teardown hygiene and memory accounting across the whole stack.

use std::sync::Arc;

use dcfa_mpi_repro::dcfa_mpi::collectives;
use dcfa_mpi_repro::dcfa_mpi::{
    launch, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp, Src, TagSel,
};
use dcfa_mpi_repro::fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use dcfa_mpi_repro::scif::ScifFabric;
use dcfa_mpi_repro::simcore::{SimDuration, Simulation};
use dcfa_mpi_repro::verbs::IbFabric;
use parking_lot::Mutex;

struct Rig {
    sim: Simulation,
    cluster: Arc<Cluster>,
    ib: Arc<IbFabric>,
    scif: Arc<ScifFabric>,
}

fn rig(nodes: usize) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    Rig {
        sim,
        cluster,
        ib,
        scif,
    }
}

#[test]
fn eight_ranks_mixed_traffic() {
    // Every rank sends a distinct-size message to every other rank (sizes
    // span eager, offload and rendezvous regimes) and checks content.
    let mut r = rig(8);
    let done = Arc::new(Mutex::new(0usize));
    let d2 = done.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        8,
        LaunchOpts::default(),
        move |ctx, comm| {
            let n = comm.size();
            let me = comm.rank();
            let size_for = |from: usize, to: usize| 64u64 << ((from + to) % 5 * 3); // 64B..256KB
            let mut reqs = Vec::new();
            let mut rbufs = Vec::new();
            for p in 0..n {
                if p == me {
                    continue;
                }
                let rbuf = comm.alloc(size_for(p, me)).unwrap();
                reqs.push(
                    comm.irecv(ctx, &rbuf, Src::Rank(p), TagSel::Tag(700))
                        .unwrap(),
                );
                rbufs.push((p, rbuf));
            }
            for p in 0..n {
                if p == me {
                    continue;
                }
                let len = size_for(me, p);
                let sbuf = comm.alloc(len).unwrap();
                comm.write(&sbuf, 0, &vec![(me * 16 + p) as u8; len as usize]);
                reqs.push(comm.isend(ctx, &sbuf, p, 700).unwrap());
            }
            comm.waitall(ctx, &reqs).unwrap();
            for (p, rbuf) in rbufs {
                let expect = (p * 16 + me) as u8;
                let got = comm.read_vec(&rbuf);
                assert!(got.iter().all(|&b| b == expect), "rank {me} from {p}");
            }
            collectives::barrier(comm, ctx).unwrap();
            *d2.lock() += 1;
        },
    );
    r.sim.run_expect();
    assert_eq!(*done.lock(), 8);
}

#[test]
fn two_ranks_per_node_share_the_card() {
    // 4 ranks on 2 nodes: co-located ranks share the Phi card and the
    // DCFA daemon; traffic between co-located ranks loops through the HCA.
    let mut r = rig(2);
    let sum = Arc::new(Mutex::new(0u64));
    let s2 = sum.clone();
    let opts = LaunchOpts {
        ranks_per_node: 2,
        ..Default::default()
    };
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        4,
        opts,
        move |ctx, comm| {
            let buf = comm.alloc(1024).unwrap();
            comm.write(&buf, 0, &[comm.rank() as u8; 1024]);
            collectives::allreduce(comm, ctx, &buf, Datatype::U8, ReduceOp::Sum).unwrap();
            let v = comm.read_vec(&buf)[0] as u64;
            *s2.lock() += v;
        },
    );
    r.sim.run_expect();
    // 0+1+2+3 = 6 on every rank.
    assert_eq!(*sum.lock(), 6 * 4);
}

#[test]
fn phi_memory_released_after_finalize() {
    let mut r = rig(2);
    let cluster = r.cluster.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let buf = comm.alloc(1 << 20).unwrap();
            if comm.rank() == 0 {
                comm.send(ctx, &buf, 1, 1).unwrap();
            } else {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            }
            comm.free(&buf);
        },
    );
    r.sim.run_expect();
    // After finalize, the offload twins on the host were deregistered and
    // freed; host memory holds no leaked twins (rings/stages are owned by
    // the engine and freed with the arena — we check the *host* side which
    // only ever holds offload twins).
    for n in 0..2 {
        let host_used = cluster.mem_used(MemRef {
            node: NodeId(n),
            domain: Domain::Host,
        });
        assert_eq!(host_used, 0, "node {n} leaked {host_used} host bytes");
    }
}

#[test]
fn offload_twins_freed_on_finalize() {
    let mut r = rig(2);
    let cluster = r.cluster.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            // Large sends create offload twins in host memory.
            let buf = comm.alloc(1 << 20).unwrap();
            if comm.rank() == 0 {
                for _ in 0..3 {
                    comm.send(ctx, &buf, 1, 1).unwrap();
                }
            } else {
                for _ in 0..3 {
                    comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                }
            }
        },
    );
    r.sim.run_expect();
    let host_used = cluster.mem_used(MemRef {
        node: NodeId(0),
        domain: Domain::Host,
    });
    assert_eq!(host_used, 0, "offload twins leaked: {host_used} bytes");
}

#[test]
fn stress_many_small_messages_across_six_ranks() {
    let mut r = rig(6);
    let total = Arc::new(Mutex::new(0u64));
    let t2 = total.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        6,
        LaunchOpts::default(),
        move |ctx, comm| {
            let n = comm.size();
            let me = comm.rank();
            let rounds = 40;
            let buf = comm.alloc(128).unwrap();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            for k in 0..rounds {
                let rr = comm
                    .irecv(ctx, &buf, Src::Rank(left), TagSel::Tag(k))
                    .unwrap();
                let sbuf = comm.alloc(128).unwrap();
                comm.write(&sbuf, 0, &[k as u8; 128]);
                let sr = comm.isend(ctx, &sbuf, right, k).unwrap();
                comm.wait(ctx, sr).unwrap();
                let st = comm.wait(ctx, rr).unwrap();
                assert_eq!(st.len, 128);
                comm.free(&sbuf);
            }
            *t2.lock() += rounds as u64;
        },
    );
    r.sim.run_expect();
    assert_eq!(*total.lock(), 240);
}

#[test]
fn staggered_start_times_still_converge() {
    // Ranks entering the application at wildly different times must still
    // bootstrap and communicate (bootstrap is unsynchronized publish/wait).
    let mut r = rig(4);
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        4,
        LaunchOpts::default(),
        move |ctx, comm| {
            ctx.sleep(SimDuration::from_micros(137 * comm.rank() as u64));
            let buf = comm.alloc(64).unwrap();
            collectives::bcast(comm, ctx, &buf, 2).unwrap();
            collectives::barrier(comm, ctx).unwrap();
            *ok2.lock() += 1;
        },
    );
    r.sim.run_expect();
    assert_eq!(*ok.lock(), 4);
}

#[test]
fn intel_phi_and_dcfa_coexist_in_one_simulation() {
    // Two jobs (a DCFA-MPI pair and an Intel-Phi pair) share the cluster;
    // both complete and their traffic contends on the same channels.
    use dcfa_mpi_repro::baselines::IntelPhiWorld;
    let mut r = rig(2);
    let done = Arc::new(Mutex::new(0usize));

    let d1 = done.clone();
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let buf = comm.alloc(256 << 10).unwrap();
            let peer = 1 - comm.rank();
            if comm.rank() == 0 {
                comm.send(ctx, &buf, peer, 1).unwrap();
            } else {
                comm.recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(1))
                    .unwrap();
            }
            *d1.lock() += 1;
        },
    );

    let world = IntelPhiWorld::new(r.cluster.clone(), 2);
    let d2 = done.clone();
    world.launch(&r.sim, move |ctx, comm| {
        let buf = comm.cluster().alloc_pages(comm.mem(), 256 << 10).unwrap();
        let peer = 1 - comm.rank();
        if comm.rank() == 0 {
            comm.send(ctx, &buf, peer, 9).unwrap();
        } else {
            comm.recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(9))
                .unwrap();
        }
        *d2.lock() += 1;
    });

    r.sim.run_expect();
    assert_eq!(*done.lock(), 4);
}
