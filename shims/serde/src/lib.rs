//! Offline shim for `serde` (see `shims/README.md`). The workspace only
//! derives `Serialize` as forward-looking metadata — nothing serializes
//! yet (result output is hand-rolled CSV) — so the traits are markers
//! with blanket impls and the derives are no-ops.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
