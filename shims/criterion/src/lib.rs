//! Offline shim for the subset of `criterion` this workspace uses (see
//! `shims/README.md`): `criterion_group!`/`criterion_main!`, benchmark
//! groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `bench_with_input`, and `BenchmarkId`.
//!
//! Instead of criterion's statistical pipeline it runs a short warm-up
//! plus a bounded number of timed iterations and prints the mean. When
//! `cargo test` drives a `harness = false` bench target it passes
//! `--test`; the shim detects that and skips all benchmarks so test
//! runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver; construct via [`Criterion::from_args`] (done by
/// `criterion_main!`).
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    pub fn from_args() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _c: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        // Cap samples: the shim reports a rough mean, not a
        // distribution, so large criterion sample sizes would only
        // slow the run down.
        let samples = self.sample_size.clamp(1, 10);
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b); // warm-up
        b.iters = 0;
        b.total = Duration::ZERO;
        for _ in 0..samples {
            f(&mut b);
        }
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "  {}/{}: mean {:?} over {} iters",
            self.name, id.0, mean, b.iters
        );
    }
}

/// Passed to benchmark closures; times the closure given to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Benchmark label, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            if c.is_test_mode() {
                println!("criterion shim: --test mode, benchmarks skipped");
                return;
            }
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion { test_mode: false };
        let mut hits = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| hits += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(hits, 4);
    }
}
