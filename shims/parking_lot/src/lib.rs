//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors thin, API-compatible stand-ins for its external dependencies
//! (see `shims/README.md`). This one maps `parking_lot::Mutex` /
//! `RwLock` onto `std::sync` with parking_lot's ergonomics: `lock()`
//! returns the guard directly and poisoning is transparently ignored
//! (a panicking simulation process already aborts the test).

use std::sync::{PoisonError, TryLockError};

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex` lookalike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` lookalike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
