//! Offline shim for the subset of `proptest` this workspace uses (see
//! `shims/README.md`): the `proptest!` test macro, range / tuple /
//! `any` / `Just` / `prop_oneof!` strategies with `prop_map` /
//! `prop_flat_map`, `collection::vec`, and the `prop_assert*` macros.
//!
//! Generation is deterministic — each test's RNG is seeded from the
//! test name, so failures replay exactly. There is no shrinking: a
//! failing case panics with its case number instead of a minimized
//! input, which is enough for a fully deterministic simulation.

pub mod test_runner {
    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Per-`proptest!` configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Object-safe strategy view, used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// `prop_oneof!`: uniform choice between arms of equal value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn DynStrategy<T>>>,
    }

    /// Builds a [`Union`] one arm at a time. `arm`'s `Value = T` bound
    /// pins the union's value type from the first arm, which plain
    /// `Box<dyn DynStrategy<_>>` casts cannot (unsize coercion does
    /// not drive inference).
    pub struct UnionBuilder<T> {
        arms: Vec<Box<dyn DynStrategy<T>>>,
    }

    impl<T> UnionBuilder<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            UnionBuilder { arms: Vec::new() }
        }

        pub fn arm<S>(mut self, s: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            self.arms.push(Box::new(s));
            self
        }

        pub fn build(self) -> Union<T> {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms: self.arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].sample_dyn(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `Strategy::prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-domain strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical full-domain distribution.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::collection::vec`: a vector with length drawn from
    /// `len` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategy arms (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::UnionBuilder::new()$(.arm($arm))+.build()
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` block: each contained `#[test] fn name(arg in strat,
/// ...) { body }` becomes a normal test running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn oneof_maps_and_vecs(
            v in crate::collection::vec(
                prop_oneof![Just(0u64), 1u64..10, (10u64..20).prop_map(|x| x * 2)],
                1..8,
            ),
            pair in (0usize..4, any::<bool>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x == 0u64 || (1..10).contains(&x) || (20..40).contains(&x));
            }
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn flat_map_threads_values(m in (1u32..5).prop_flat_map(|n| (0u32..n).prop_map(move |k| (n, k)))) {
            prop_assert!(m.1 < m.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
