//! Offline shim for the subset of `rand` 0.9 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range` (see
//! `shims/README.md`). Deterministic by construction — the workloads
//! only need reproducible, well-mixed streams, not cryptographic ones.
//!
//! The generator is SplitMix64: passes BigCrush for the mixing quality
//! needed here and guarantees full-period 64-bit output.

use std::ops::{Range, RangeInclusive};

/// Core RNG surface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    /// A uniformly random value of `T` (`rand::Rng::random`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range` (`rand::Rng::random_range`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_uniform(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types `Rng::random` can produce.
pub trait Random {
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits of uniformity in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.random_range(2..=9);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
