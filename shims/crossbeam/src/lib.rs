//! Offline shim for the subset of `crossbeam` this workspace uses
//! (`crossbeam::channel::unbounded` in the simulation engine; see
//! `shims/README.md`). The engine hands each `Receiver` to exactly one
//! thread, so `std::sync::mpsc` covers the required semantics.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Unbounded MPSC channel, `crossbeam::channel::unbounded` signature.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
