//! Offline shim for the subset of `crossbeam` this workspace uses
//! (`crossbeam::channel::unbounded` in the simulation engine; see
//! `shims/README.md`).
//!
//! The channel is a `Mutex<VecDeque>` + `Condvar` queue with a
//! yield-assisted receive path, tuned for the simulator's handoff
//! pattern: the engine thread and the currently-running process thread
//! ping-pong one message at a time, and on a loaded (or single-CPU) box
//! the counterpart is usually runnable and about to reply. In that
//! regime `std::thread::yield_now()` hands the core straight to the
//! sender and the reply lands within a few yields — measurably cheaper
//! than a futex sleep/wake cycle per message, and with no per-send heap
//! allocation (unlike `std::sync::mpsc`'s linked-list nodes).
//!
//! Each receiver carries an *adaptive* yield budget: a receive that is
//! satisfied during the yield phase restores the full budget, while one
//! that falls through to a blocking wait halves it. The engine's
//! `park_rx` (whose counterpart always replies promptly) therefore keeps
//! spinning cheaply, while a process thread that parks for a long
//! stretch of virtual time converges to an immediate `Condvar` wait
//! instead of burning its budget competing with the thread that should
//! be running.

pub mod channel {
    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone,
    /// handing the unsent message back (crossbeam/std signature).
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Cap on the adaptive yield budget (see [`Receiver::recv`]).
    fn yield_cap() -> u32 {
        static B: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        *B.get_or_init(|| {
            std::env::var("CHAN_YIELD")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1024)
        })
    }

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        /// Mirror of `queue.len()`, written under the lock — lets the
        /// yield loop poll for pending messages without contending it.
        len: AtomicUsize,
        /// Live `Sender` clones; 0 means disconnected.
        senders: AtomicUsize,
        /// Whether the receiver is parked in `cv` (written under the
        /// lock) — senders skip the notify syscall when nobody sleeps.
        parked: AtomicUsize,
        /// Cleared (under the lock) when the `Receiver` drops.
        rx_alive: AtomicBool,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
        /// Adaptive yield budget for the next receive.
        budget: Cell<u32>,
    }

    /// Unbounded MPSC channel, `crossbeam::channel::unbounded` signature.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            parked: AtomicUsize::new(0),
            rx_alive: AtomicBool::new(true),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver {
                inner,
                budget: Cell::new(2),
            },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let inner = &*self.inner;
            let mut q = inner.queue.lock().unwrap();
            if !inner.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            q.push_back(value);
            inner.len.store(q.len(), Ordering::Release);
            drop(q);
            // The receiver sets `parked` under the lock before waiting,
            // so either it saw our message or we see its park flag.
            if inner.parked.load(Ordering::Acquire) > 0 {
                inner.cv.notify_one();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Serialize with a receiver that just checked `senders`
                // and is about to wait — notifying while it still holds
                // the lock (pre-wait) would otherwise be lost.
                drop(self.inner.queue.lock().unwrap());
                self.inner.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &*self.inner;
            // Yield phase: poll the length mirror, handing the core to
            // whichever thread is about to reply.
            let budget = self.budget.get();
            let mut tries = 0;
            loop {
                if inner.len.load(Ordering::Acquire) > 0 {
                    let mut q = inner.queue.lock().unwrap();
                    if let Some(v) = q.pop_front() {
                        inner.len.store(q.len(), Ordering::Release);
                        // Reply arrived while polling: this receiver's
                        // waits are short — poll longer next time.
                        self.budget.set((budget.max(1) * 2).min(yield_cap()));
                        return Ok(v);
                    }
                }
                if inner.senders.load(Ordering::Acquire) == 0 {
                    break;
                }
                if tries >= budget {
                    break;
                }
                tries += 1;
                std::thread::yield_now();
            }
            // Block phase: the reply is not imminent (or the channel may
            // be disconnected) — recheck everything under the lock and
            // sleep. Collapse the budget so habitual long waits converge
            // to an immediate sleep instead of stealing the core from
            // the thread that should be running.
            self.budget.set(budget / 4);
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    inner.len.store(q.len(), Ordering::Release);
                    return Ok(v);
                }
                if inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                inner.parked.fetch_add(1, Ordering::Release);
                q = inner.cv.wait(q).unwrap();
                inner.parked.fetch_sub(1, Ordering::Release);
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Under the lock so `send` can't slip a message in between
            // its liveness check and push.
            let _q = self.inner.queue.lock().unwrap();
            self.inner.rx_alive.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_errors_once_drained_and_disconnected() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        // Buffered messages survive sender drop; only then disconnect.
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        let err = tx.send(42).unwrap_err();
        assert_eq!(err.0, 42);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u64>();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        // Outlast the receiver's yield budget so it actually parks.
        std::thread::sleep(std::time::Duration::from_millis(50));
        tx.send(99).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u64>();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn ping_pong_stress() {
        let (atx, arx) = unbounded::<u64>();
        let (btx, brx) = unbounded::<u64>();
        let t = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..10_000 {
                let v = arx.recv().unwrap();
                sum += v;
                btx.send(v + 1).unwrap();
            }
            sum
        });
        for i in 0..10_000u64 {
            atx.send(i).unwrap();
            assert_eq!(brx.recv().unwrap(), i + 1);
        }
        assert_eq!(t.join().unwrap(), (0..10_000).sum::<u64>());
    }

    #[test]
    fn multiple_producers_all_delivered() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..4_000).collect::<Vec<_>>());
    }
}
