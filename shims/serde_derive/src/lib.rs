//! No-op derives backing the vendored `serde` shim (`shims/serde`).
//! The shim's `Serialize`/`Deserialize` traits carry blanket impls, so
//! the derive only has to make `#[derive(Serialize)]` parse — it emits
//! no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
