//! SCIF concurrency tests: multiple connections per listener, message
//! ordering, and PCIe contention between endpoints of the same node.

use std::sync::Arc;

use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{SimDuration, Simulation};

fn host(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Host,
    }
}

fn phi(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Phi,
    }
}

#[test]
fn one_listener_many_clients() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let fabric = ScifFabric::new(cluster);
    let served = Arc::new(Mutex::new(Vec::new()));

    let f1 = fabric.clone();
    let s2 = served.clone();
    sim.spawn_daemon("server", move |ctx| {
        let listener = f1.listen(host(0), 9);
        loop {
            let ep = listener.accept(ctx);
            let s3 = s2.clone();
            ctx.scheduler().spawn_daemon("handler", move |hctx| {
                let msg = ep.recv(hctx);
                s3.lock().push(msg[0]);
                ep.send(hctx, &[msg[0] + 100]);
            });
        }
    });

    for i in 0..4u8 {
        let f = fabric.clone();
        sim.spawn(format!("client{i}"), move |ctx| {
            ctx.yield_now();
            let ep = f.connect(ctx, phi(0), Domain::Host, 9).unwrap();
            ep.send(ctx, &[i]);
            let reply = ep.recv(ctx);
            assert_eq!(reply, vec![i + 100]);
        });
    }
    sim.run_expect();
    let mut s = served.lock().clone();
    s.sort();
    assert_eq!(s, vec![0, 1, 2, 3]);
}

#[test]
fn message_order_is_fifo_per_connection() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let fabric = ScifFabric::new(cluster);
    let got = Arc::new(Mutex::new(Vec::new()));

    let f1 = fabric.clone();
    let g2 = got.clone();
    sim.spawn_daemon("rx", move |ctx| {
        let listener = f1.listen(host(0), 1);
        let ep = listener.accept(ctx);
        loop {
            let m = ep.recv(ctx);
            g2.lock().push(m[0]);
        }
    });
    let f2 = fabric.clone();
    sim.spawn("tx", move |ctx| {
        ctx.yield_now();
        let ep = f2.connect(ctx, phi(0), Domain::Host, 1).unwrap();
        for i in 0..16u8 {
            ep.send(ctx, &[i]);
            if i % 3 == 0 {
                ctx.sleep(SimDuration::from_micros(2));
            }
        }
        // Let everything drain.
        ctx.sleep(SimDuration::from_millis(1));
    });
    sim.run_expect();
    assert_eq!(*got.lock(), (0..16u8).collect::<Vec<_>>());
}

#[test]
fn rma_contention_serializes_same_direction() {
    // Two endpoints on the same node both RMA-write phi->host: the PCIe
    // p2h channel serializes them.
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let fabric = ScifFabric::new(cluster.clone());
    let times = Arc::new(Mutex::new(Vec::new()));

    let f1 = fabric.clone();
    sim.spawn_daemon("srv", move |ctx| {
        let l = f1.listen(host(0), 2);
        loop {
            let _ep = l.accept(ctx);
            // Keep the endpoint alive by leaking it into a handler that
            // parks forever.
            ctx.scheduler().spawn_daemon("h", move |hctx| {
                let _keep = &_ep;
                let mb: simcore::Mailbox<()> = simcore::Mailbox::new();
                mb.recv(hctx);
            });
        }
    });

    let len = 4u64 << 20;
    let barrier = Arc::new(Mutex::new(0usize));
    for i in 0..2 {
        let f = fabric.clone();
        let cl = cluster.clone();
        let t2 = times.clone();
        let b2 = barrier.clone();
        sim.spawn(format!("phi{i}"), move |ctx| {
            ctx.yield_now();
            let ep = f.connect(ctx, phi(0), Domain::Host, 2).unwrap();
            let src = cl.alloc_pages(phi(0), len).unwrap();
            let dst = cl.alloc_pages(host(0), len).unwrap();
            // Rough start sync.
            *b2.lock() += 1;
            while *b2.lock() < 2 {
                ctx.sleep(SimDuration::from_micros(1));
            }
            let t0 = ctx.now();
            ep.writeto_sync(ctx, &src, &dst);
            t2.lock().push((ctx.now() - t0).as_nanos());
        });
    }
    sim.run_expect();
    let times = times.lock().clone();
    let single = simcore::transfer_time(len, ClusterConfig::paper().cost.pci_p2h_bw).as_nanos();
    // One of the two waited for the other: its elapsed ~2x a lone transfer.
    let max = *times.iter().max().unwrap();
    assert!(
        max as f64 > 1.8 * single as f64,
        "no serialization visible: {times:?}"
    );
}

#[test]
fn cross_node_endpoints_do_not_contend() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let fabric = ScifFabric::new(cluster.clone());
    let times = Arc::new(Mutex::new(Vec::new()));
    for i in 0..2usize {
        let f = fabric.clone();
        let cl = cluster.clone();
        let t2 = times.clone();
        let fl = fabric.clone();
        sim.spawn_daemon(format!("srv{i}"), move |ctx| {
            let l = fl.listen(host(i), 3);
            let _ep = l.accept(ctx);
            let mb: simcore::Mailbox<()> = simcore::Mailbox::new();
            mb.recv(ctx);
        });
        sim.spawn(format!("phi{i}"), move |ctx| {
            ctx.yield_now();
            let len = 4u64 << 20;
            let ep = f.connect(ctx, phi(i), Domain::Host, 3).unwrap();
            let src = cl.alloc_pages(phi(i), len).unwrap();
            let dst = cl.alloc_pages(host(i), len).unwrap();
            let t0 = ctx.now();
            ep.writeto_sync(ctx, &src, &dst);
            t2.lock().push((ctx.now() - t0).as_nanos());
        });
    }
    sim.run_expect();
    let times = times.lock().clone();
    assert_eq!(times[0], times[1], "different nodes must not contend");
}
