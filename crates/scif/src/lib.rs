//! # scif — SCIF-like host↔co-processor communication endpoints
//!
//! The Intel MPSS ships the Symmetric Communication Interface (SCIF) as the
//! "communication backbone between the host processors and the Xeon Phi
//! co-processors" (§III-A). This crate provides the simulated equivalent:
//!
//! * port-based connection establishment between the host and Phi sides of
//!   a node ([`ScifFabric::listen`] / [`ScifFabric::connect`]);
//! * message-oriented [`ScifEndpoint::send`]/[`ScifEndpoint::recv`]
//!   (kernel-mediated ring-buffer messaging — higher latency than the raw
//!   DMA engine, used for control traffic);
//! * registered-window RMA ([`ScifEndpoint::writeto`] /
//!   [`ScifEndpoint::readfrom`]) riding the PCIe DMA engine with real
//!   channel contention.
//!
//! The DCFA command channel and the Intel-MPI-on-Phi proxy path (HCA proxy
//! + host IB proxy daemon) are both built on these endpoints.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, MemRef, NodeId, Transfer};
use parking_lot::Mutex;
use simcore::{Ctx, Mailbox, SimDuration, SimTime};

/// A SCIF port number.
pub type Port = u16;

/// Error returned by [`ScifFabric::connect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScifError {
    /// No listener on the requested (node, domain, port).
    ConnectionRefused {
        node: NodeId,
        domain: Domain,
        port: Port,
    },
    /// SCIF endpoints connect the two domains of one node.
    CrossNode,
}

impl std::fmt::Display for ScifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScifError::ConnectionRefused { node, domain, port } => {
                write!(f, "connection refused at {node}/{domain}:{port}")
            }
            ScifError::CrossNode => write!(f, "SCIF endpoints must be on the same node"),
        }
    }
}

impl std::error::Error for ScifError {}

struct ListenerInner {
    pending: Mailbox<ScifEndpoint>,
}

struct FabState {
    listeners: HashMap<(NodeId, Domain, Port), Arc<ListenerInner>>,
}

/// Registry of SCIF listeners across the cluster.
pub struct ScifFabric {
    cluster: Arc<Cluster>,
    state: Mutex<FabState>,
}

impl ScifFabric {
    pub fn new(cluster: Arc<Cluster>) -> Arc<ScifFabric> {
        Arc::new(ScifFabric {
            cluster,
            state: Mutex::new(FabState {
                listeners: HashMap::new(),
            }),
        })
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Open a listening port at `local`.
    pub fn listen(self: &Arc<Self>, local: MemRef, port: Port) -> ScifListener {
        let inner = Arc::new(ListenerInner {
            pending: Mailbox::new(),
        });
        self.state
            .lock()
            .listeners
            .insert((local.node, local.domain, port), inner.clone());
        ScifListener {
            fabric: self.clone(),
            inner,
        }
    }

    /// Close a listening port at `local`: later connects are refused. The
    /// pending queue of an already-accepted listener is unaffected; this
    /// models a daemon process dying while the kernel tears its port down.
    pub fn unlisten(&self, local: MemRef, port: Port) {
        self.state
            .lock()
            .listeners
            .remove(&(local.node, local.domain, port));
    }

    /// Connect from `local` to a listener at the *other* domain of the same
    /// node. Charges one control-message round trip.
    pub fn connect(
        self: &Arc<Self>,
        ctx: &mut Ctx,
        local: MemRef,
        peer_domain: Domain,
        port: Port,
    ) -> Result<ScifEndpoint, ScifError> {
        if peer_domain == local.domain {
            return Err(ScifError::CrossNode);
        }
        let peer = MemRef {
            node: local.node,
            domain: peer_domain,
        };
        let listener = self
            .state
            .lock()
            .listeners
            .get(&(peer.node, peer.domain, port))
            .cloned()
            .ok_or(ScifError::ConnectionRefused {
                node: peer.node,
                domain: peer.domain,
                port,
            })?;

        // Two unidirectional message lanes.
        let a_to_b: Mailbox<Vec<u8>> = Mailbox::new();
        let b_to_a: Mailbox<Vec<u8>> = Mailbox::new();
        let my_end = ScifEndpoint {
            cluster: self.cluster.clone(),
            local,
            peer,
            tx: a_to_b.clone(),
            rx: b_to_a.clone(),
        };
        let their_end = ScifEndpoint {
            cluster: self.cluster.clone(),
            local: peer,
            peer: local,
            tx: b_to_a,
            rx: a_to_b,
        };
        // Handshake: one message latency each way.
        let lat = self.cluster.config().cost.scif_msg_latency;
        ctx.sleep(lat * 2);
        let sched = ctx.scheduler();
        listener.pending.send(&sched, their_end);
        Ok(my_end)
    }
}

/// A listening SCIF port.
pub struct ScifListener {
    #[allow(dead_code)]
    fabric: Arc<ScifFabric>,
    inner: Arc<ListenerInner>,
}

impl ScifListener {
    /// Block until a peer connects; returns the accepted endpoint.
    pub fn accept(&self, ctx: &mut Ctx) -> ScifEndpoint {
        self.inner.pending.recv(ctx)
    }
}

/// One side of an established SCIF connection. Cloning yields a second
/// handle onto the *same* connection (shared message lanes) so auxiliary
/// processes — e.g. a heartbeat daemon — can send on an endpoint owned by
/// another process.
#[derive(Clone)]
pub struct ScifEndpoint {
    cluster: Arc<Cluster>,
    local: MemRef,
    peer: MemRef,
    tx: Mailbox<Vec<u8>>,
    rx: Mailbox<Vec<u8>>,
}

impl std::fmt::Debug for ScifEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScifEndpoint")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl ScifEndpoint {
    pub fn local(&self) -> MemRef {
        self.local
    }

    pub fn peer(&self) -> MemRef {
        self.peer
    }

    /// Send a control message. Delivery is charged the SCIF message latency
    /// plus ring-copy serialization; the *caller* only pays its local copy
    /// into the ring (send returns before delivery, like `scif_send`).
    pub fn send(&self, ctx: &mut Ctx, data: &[u8]) {
        let cost = &self.cluster.config().cost;
        let copy = simcore::transfer_time(data.len() as u64, cost.scif_msg_bw);
        ctx.sleep(cost.cpu_op(self.local.domain));
        let arrive = ctx.now() + cost.scif_msg_latency + copy;
        let sched = ctx.scheduler();
        self.tx.send_at(&sched, arrive, data.to_vec());
    }

    /// Blocking receive of one message.
    pub fn recv(&self, ctx: &mut Ctx) -> Vec<u8> {
        let cost = self.cluster.config().cost.clone();
        let msg = self.rx.recv(ctx);
        ctx.sleep(cost.cpu_op(self.local.domain));
        msg
    }

    /// Blocking receive that gives up after `timeout`: returns `None` if no
    /// message arrived by then. The timeout wake and the message wake share
    /// one block epoch, so an abandoned wait can never fire later.
    pub fn recv_timeout(&self, ctx: &mut Ctx, timeout: SimDuration) -> Option<Vec<u8>> {
        let cost = self.cluster.config().cost.clone();
        let deadline = ctx.now() + timeout;
        let msg = self.rx.recv_deadline(ctx, deadline)?;
        ctx.sleep(cost.cpu_op(self.local.domain));
        Some(msg)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.try_recv()
    }

    /// RMA write: DMA `local_buf` into `remote_buf` (peer domain, same
    /// node) through the PCIe DMA engine. Returns the in-flight transfer.
    pub fn writeto(&self, ctx: &mut Ctx, local_buf: &Buffer, remote_buf: &Buffer) -> Transfer {
        assert_eq!(local_buf.mem, self.local, "writeto source must be local");
        assert_eq!(remote_buf.mem, self.peer, "writeto target must be the peer");
        self.cluster.pci_dma(local_buf, remote_buf, ctx.now())
    }

    /// RMA read: DMA `remote_buf` (peer domain) into `local_buf`.
    pub fn readfrom(&self, ctx: &mut Ctx, local_buf: &Buffer, remote_buf: &Buffer) -> Transfer {
        assert_eq!(local_buf.mem, self.local, "readfrom target must be local");
        assert_eq!(
            remote_buf.mem, self.peer,
            "readfrom source must be the peer"
        );
        self.cluster.pci_dma(remote_buf, local_buf, ctx.now())
    }

    /// Convenience: RMA write and wait for completion. Returns when the
    /// data is visible on the peer.
    pub fn writeto_sync(&self, ctx: &mut Ctx, local_buf: &Buffer, remote_buf: &Buffer) -> SimTime {
        let t = self.writeto(ctx, local_buf, remote_buf);
        ctx.wait_reason(&t.completion, "scif writeto");
        t.end
    }

    /// Convenience: RMA read and wait for completion.
    pub fn readfrom_sync(&self, ctx: &mut Ctx, local_buf: &Buffer, remote_buf: &Buffer) -> SimTime {
        let t = self.readfrom(ctx, local_buf, remote_buf);
        ctx.wait_reason(&t.completion, "scif readfrom");
        t.end
    }

    /// One-way control-message cost for `len` bytes (for modeling layers).
    pub fn message_cost(&self, len: usize) -> SimDuration {
        let cost = &self.cluster.config().cost;
        cost.scif_msg_latency + simcore::transfer_time(len as u64, cost.scif_msg_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::ClusterConfig;
    use simcore::Simulation;

    fn setup() -> (Simulation, Arc<ScifFabric>) {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
        let fabric = ScifFabric::new(cluster);
        (sim, fabric)
    }

    fn host(n: usize) -> MemRef {
        MemRef {
            node: NodeId(n),
            domain: Domain::Host,
        }
    }

    fn phi(n: usize) -> MemRef {
        MemRef {
            node: NodeId(n),
            domain: Domain::Phi,
        }
    }

    #[test]
    fn connect_accept_send_recv() {
        let (mut sim, fabric) = setup();
        let f1 = fabric.clone();
        sim.spawn("host-daemon", move |ctx| {
            let listener = f1.listen(host(0), 1);
            let ep = listener.accept(ctx);
            let msg = ep.recv(ctx);
            assert_eq!(msg, b"reg_mr request");
            ep.send(ctx, b"reg_mr reply");
        });
        let f2 = fabric.clone();
        sim.spawn("phi-client", move |ctx| {
            // Give the listener a chance to be installed at t=0 first.
            ctx.yield_now();
            let ep = f2.connect(ctx, phi(0), Domain::Host, 1).unwrap();
            let t0 = ctx.now();
            ep.send(ctx, b"reg_mr request");
            let reply = ep.recv(ctx);
            assert_eq!(reply, b"reg_mr reply");
            // A round trip costs at least two message latencies.
            let min = f2.cluster().config().cost.scif_msg_latency * 2;
            assert!(ctx.now() - t0 >= min);
        });
        sim.run_expect();
    }

    #[test]
    fn connect_to_missing_port_refused() {
        let (mut sim, fabric) = setup();
        sim.spawn("phi-client", move |ctx| {
            let err = fabric.connect(ctx, phi(0), Domain::Host, 99).unwrap_err();
            assert!(matches!(err, ScifError::ConnectionRefused { .. }));
        });
        sim.run_expect();
    }

    #[test]
    fn same_domain_connect_rejected() {
        let (mut sim, fabric) = setup();
        sim.spawn("p", move |ctx| {
            let err = fabric.connect(ctx, host(0), Domain::Host, 1).unwrap_err();
            assert_eq!(err, ScifError::CrossNode);
        });
        sim.run_expect();
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let (mut sim, fabric) = setup();
        let f1 = fabric.clone();
        sim.spawn("host-daemon", move |ctx| {
            let listener = f1.listen(host(0), 5);
            let ep = listener.accept(ctx);
            // Stay silent past the client's first deadline, then answer.
            ctx.sleep(SimDuration::from_micros(50));
            ep.send(ctx, b"late reply");
            let _ = ep.recv(ctx); // keep endpoint alive until client is done
        });
        let f2 = fabric.clone();
        sim.spawn("phi-client", move |ctx| {
            ctx.yield_now();
            let ep = f2.connect(ctx, phi(0), Domain::Host, 5).unwrap();
            let t0 = ctx.now();
            assert_eq!(ep.recv_timeout(ctx, SimDuration::from_micros(10)), None);
            assert_eq!(ctx.now() - t0, SimDuration::from_micros(10));
            let msg = ep.recv_timeout(ctx, SimDuration::from_micros(100));
            assert_eq!(msg.as_deref(), Some(&b"late reply"[..]));
            ep.send(ctx, b"bye");
        });
        sim.run_expect();
    }

    #[test]
    fn unlisten_refuses_new_connects() {
        let (mut sim, fabric) = setup();
        sim.spawn("p", move |ctx| {
            let listener = fabric.listen(host(0), 9);
            fabric.unlisten(host(0), 9);
            let err = fabric.connect(ctx, phi(0), Domain::Host, 9).unwrap_err();
            assert!(matches!(err, ScifError::ConnectionRefused { .. }));
            // Re-listen restores service on the same port.
            let listener2 = fabric.listen(host(0), 9);
            assert!(fabric.connect(ctx, phi(0), Domain::Host, 9).is_ok());
            let _ = (listener, listener2);
        });
        sim.run_expect();
    }

    #[test]
    fn rma_write_and_read_move_bytes() {
        let (mut sim, fabric) = setup();
        let f1 = fabric.clone();
        sim.spawn("host", move |ctx| {
            let listener = f1.listen(host(0), 7);
            let ep = listener.accept(ctx);
            // Wait for the phi side to tell us the RMA is done.
            let done = ep.recv(ctx);
            assert_eq!(done, b"written");
        });
        let f2 = fabric.clone();
        sim.spawn("phi", move |ctx| {
            ctx.yield_now();
            let cl = f2.cluster().clone();
            let ep = f2.connect(ctx, phi(0), Domain::Host, 7).unwrap();
            let src = cl.alloc_pages(phi(0), 8192).unwrap();
            let dst = cl.alloc_pages(host(0), 8192).unwrap();
            cl.write(&src, 0, &[9u8; 8192]);
            let end = ep.writeto_sync(ctx, &src, &dst);
            assert_eq!(ctx.now(), end);
            assert_eq!(cl.read_vec(&dst), vec![9u8; 8192]);
            // And read back.
            cl.write(&dst, 0, &[4u8; 8192]);
            ep.readfrom_sync(ctx, &src, &dst);
            assert_eq!(cl.read_vec(&src), vec![4u8; 8192]);
            ep.send(ctx, b"written");
        });
        sim.run_expect();
    }

    #[test]
    fn message_cost_scales_with_len() {
        let (mut sim, fabric) = setup();
        sim.spawn("p", move |ctx| {
            let f = fabric.clone();
            let listener = f.listen(host(0), 3);
            let _ = listener;
            let ep = f.connect(ctx, phi(0), Domain::Host, 3);
            // connect succeeded because we listen on the same process.
            let ep = ep.unwrap();
            assert!(ep.message_cost(1 << 20) > ep.message_cost(64));
        });
        sim.run_expect();
    }
}
