//! The Verbs-style user API: fabric-wide registry, per-process contexts,
//! memory regions and queue pairs.
//!
//! Semantics implemented (the subset DCFA-MPI relies on, per the paper):
//!
//! * Reliable-connected QPs; send-queue work requests execute in post
//!   order and their data transfers never overtake each other on a QP.
//! * Two-sided Send/Recv with SGE gather/scatter and FIFO receive matching;
//!   an inbound Send larger than the posted receive completes with
//!   `LocalLengthError` (the paper's §IV-B3 mis-prediction case relies on
//!   length checking).
//! * One-sided RDMA WRITE and RDMA READ against registered regions, with
//!   key and range validation. An RDMA WRITE delivers the payload in SGE
//!   order, so a receiver can poll the tail byte to detect arrival —
//!   exactly the eager-packet design of the paper ("it's ensured that the
//!   data payload of the receive buffer uses the same order as the SGEs
//!   defined in the sender request").

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, LinkFaultKind, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::{Ctx, Scheduler, SimEvent, SimTime};

use crate::cq::CompletionQueue;
use crate::types::{
    MrKey, QpNum, RecvWr, SendOpcode, SendWr, Sge, VerbsError, Wc, WcOpcode, WcStatus,
};

struct MrEntry {
    buffer: Buffer,
    write_event: SimEvent,
}

struct QpShared {
    qpn: QpNum,
    node: NodeId,
    state: Mutex<QpState>,
}

struct QpState {
    remote: Option<(NodeId, QpNum)>,
    /// The QP is in the error state (owner fail-stopped): every posted
    /// or in-flight WR targeting it completes with `WrFlushErr` and no
    /// data moves. Monotone — an errored QP never recovers.
    dead: bool,
    /// End time of the last transfer posted on the send queue (RC ordering).
    sq_busy: SimTime,
    rq: std::collections::VecDeque<RecvWr>,
    /// Sends that arrived before a receive was posted (RNR-style holding).
    backlog: std::collections::VecDeque<InboundSend>,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    /// Shared receive queue this QP draws receives from instead of `rq`.
    srq: Option<Arc<SrqShared>>,
}

struct InboundSend {
    data: Vec<u8>,
    src: (NodeId, QpNum),
}

struct SrqState {
    rq: std::collections::VecDeque<RecvWr>,
    /// Sends held RNR-style while the pool is empty, remembering the recv
    /// CQ of the QP each arrived on so a later post completes there.
    backlog: std::collections::VecDeque<(InboundSend, CompletionQueue)>,
}

struct SrqShared {
    state: Mutex<SrqState>,
}

/// A shared receive queue (`ibv_srq` analogue): one pool of receive work
/// requests consumed, in post order, by every QP attached to it. An
/// inbound Send on an attached QP pops the SRQ instead of the QP's own
/// receive queue; its completion still surfaces on that QP's recv CQ,
/// carrying `src` so the consumer can tell peers apart.
pub struct SharedReceiveQueue {
    fabric: Arc<IbFabric>,
    shared: Arc<SrqShared>,
    domain: Domain,
}

impl SharedReceiveQueue {
    /// Post a receive work request to the shared pool. If a Send is being
    /// held RNR-style (the pool ran dry when it arrived), it is delivered
    /// into this receive immediately, completing on the recv CQ of the QP
    /// it arrived on.
    pub fn post_recv(&self, ctx: &mut Ctx, wr: RecvWr) -> Result<(), VerbsError> {
        for sge in &wr.sges {
            self.fabric.resolve_sge(sge)?;
        }
        let cost = &self.fabric.cluster().config().cost;
        ctx.sleep(cost.cpu_op(self.domain));
        let sched = ctx.scheduler();
        let mut st = self.shared.state.lock();
        if let Some((inbound, recv_cq)) = st.backlog.pop_front() {
            drop(st);
            scatter_into(
                &self.fabric,
                self.fabric.cluster(),
                &inbound.data,
                &wr,
                inbound.src,
                &recv_cq,
                &sched,
            );
            return Ok(());
        }
        st.rq.push_back(wr);
        Ok(())
    }
}

struct FaultSpec {
    remaining: u64,
    status: WcStatus,
}

/// A filtered fault plan: fires (once) on the `after_matches`-th posted
/// data operation that satisfies every filter. Unset filters match
/// everything; only matching operations tick the skip counter — unlike the
/// global [`IbFabric::inject_fault`] FIFO, which counts every posted op.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub status: WcStatus,
    pub after_matches: u64,
    /// Restrict to one operation kind (e.g. only RDMA READs).
    pub op: Option<SendOpcode>,
    /// Restrict to operations posted by this node's HCA.
    pub initiator: Option<NodeId>,
    /// Restrict to operations targeting this node.
    pub target: Option<NodeId>,
    /// Restrict to operations moving at least this many bytes (isolates
    /// large rendezvous transfers from small ring writes).
    pub min_bytes: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            status: WcStatus::RemoteAccessError,
            after_matches: 0,
            op: None,
            initiator: None,
            target: None,
            min_bytes: 0,
        }
    }
}

impl FaultPlan {
    fn matches(&self, op: SendOpcode, initiator: NodeId, target: NodeId, bytes: u64) -> bool {
        self.op.is_none_or(|o| o == op)
            && self.initiator.is_none_or(|n| n == initiator)
            && self.target.is_none_or(|n| n == target)
            && bytes >= self.min_bytes
    }
}

struct FabState {
    next_qpn: u32,
    next_key: u32,
    mrs: HashMap<u32, MrEntry>,
    qps: HashMap<(NodeId, u32), Arc<QpShared>>,
    faults: std::collections::VecDeque<FaultSpec>,
    fault_plans: Vec<FaultPlan>,
}

/// The fabric-wide InfiniBand software state: key and QP registries layered
/// over the hardware [`Cluster`]. One per simulation.
pub struct IbFabric {
    cluster: Arc<Cluster>,
    state: Mutex<FabState>,
}

impl IbFabric {
    pub fn new(cluster: Arc<Cluster>) -> Arc<IbFabric> {
        Arc::new(IbFabric {
            cluster,
            state: Mutex::new(FabState {
                next_qpn: 1,
                next_key: 1,
                mrs: HashMap::new(),
                qps: HashMap::new(),
                faults: std::collections::VecDeque::new(),
                fault_plans: Vec::new(),
            }),
        })
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Fault injection: make the data-path operation posted `after_ops`
    /// send-queue posts from now complete with `status` instead of
    /// executing (models HCA/link failures for error-path testing).
    pub fn inject_fault(&self, after_ops: u64, status: WcStatus) {
        self.state.lock().faults.push_back(FaultSpec {
            remaining: after_ops,
            status,
        });
    }

    /// Arm a filtered fault plan (see [`FaultPlan`]). Filtered plans tick
    /// only on matching operations, so a test can target, say, the third
    /// RDMA READ posted by node 2 without counting unrelated traffic.
    pub fn inject_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().fault_plans.push(plan);
    }

    /// One fault-plan tick per posted data operation. Consults, in order:
    /// the global FIFO (every op ticks it), the filtered plans (matching
    /// ops tick each of them), then the cluster's per-link plans.
    fn take_fault(
        &self,
        op: SendOpcode,
        initiator: NodeId,
        target: NodeId,
        bytes: u64,
    ) -> Option<WcStatus> {
        {
            let mut st = self.state.lock();
            if let Some(front) = st.faults.front_mut() {
                if front.remaining == 0 {
                    let f = st.faults.pop_front().expect("front exists");
                    return Some(f.status);
                }
                front.remaining -= 1;
            }
            let mut fired = None;
            st.fault_plans.retain_mut(|p| {
                if !p.matches(op, initiator, target, bytes) {
                    return true;
                }
                if p.after_matches > 0 {
                    p.after_matches -= 1;
                    return true;
                }
                if fired.is_none() {
                    fired = Some(p.status);
                    return false;
                }
                true
            });
            if fired.is_some() {
                return fired;
            }
        }
        self.cluster
            .take_link_fault(initiator, target)
            .map(|k| match k {
                LinkFaultKind::Rnr => WcStatus::RnrRetryExceeded,
                LinkFaultKind::Retry => WcStatus::TransportRetryExceeded,
                LinkFaultKind::Fatal => WcStatus::RemoteAccessError,
            })
    }

    fn resolve_mr(&self, key: MrKey) -> Option<(Buffer, SimEvent)> {
        let st = self.state.lock();
        st.mrs
            .get(&key.0)
            .map(|e| (e.buffer.clone(), e.write_event.clone()))
    }

    /// Transition every QP owned by `node` to the error state (fail-stop
    /// teardown): subsequent deliveries on them — in either direction —
    /// flush with [`WcStatus::WrFlushErr`] and move no data. In the
    /// simulated cluster ranks map 1:1 onto nodes, so this is the verbs
    /// half of killing a rank.
    pub fn kill_node(&self, node: NodeId) {
        let st = self.state.lock();
        for qp in st.qps.values() {
            if qp.node == node {
                qp.state.lock().dead = true;
            }
        }
    }

    /// Is the QP registered as `(node, qpn)` in the error state (or
    /// gone entirely)?
    fn qp_dead(&self, node: NodeId, qpn: QpNum) -> bool {
        let st = self.state.lock();
        match st.qps.get(&(node, qpn.0)) {
            Some(qp) => qp.state.lock().dead,
            None => true,
        }
    }

    /// Rebuild a [`MemoryRegion`] handle from its key (used by the DCFA
    /// command client after the host daemon performed the registration).
    pub fn mr_handle(&self, key: MrKey) -> Option<MemoryRegion> {
        self.resolve_mr(key)
            .map(|(buffer, write_event)| MemoryRegion {
                key,
                buffer,
                write_event,
            })
    }

    /// Replace the write-notification event of a registered region and
    /// return the refreshed handle. Lets a region registered through the
    /// DCFA daemon participate in a process's multiplexed progress event.
    pub fn set_write_event(&self, key: MrKey, event: SimEvent) -> Option<MemoryRegion> {
        let mut st = self.state.lock();
        let entry = st.mrs.get_mut(&key.0)?;
        entry.write_event = event.clone();
        Some(MemoryRegion {
            key,
            buffer: entry.buffer.clone(),
            write_event: event,
        })
    }

    /// Resolve an SGE to a concrete buffer slice, validating key and range.
    fn resolve_sge(&self, sge: &Sge) -> Result<Buffer, VerbsError> {
        let (buf, _ev) = self
            .resolve_mr(sge.lkey)
            .ok_or(VerbsError::InvalidLKey(sge.lkey))?;
        let end = sge
            .addr
            .checked_add(sge.len)
            .ok_or(VerbsError::SgeOutOfRange {
                addr: sge.addr,
                len: sge.len,
            })?;
        if sge.addr < buf.addr || end > buf.addr + buf.len {
            return Err(VerbsError::SgeOutOfRange {
                addr: sge.addr,
                len: sge.len,
            });
        }
        Ok(buf.slice(sge.addr - buf.addr, sge.len))
    }

    fn resolve_remote(&self, rkey: MrKey, addr: u64, len: u64) -> Option<(Buffer, SimEvent)> {
        let (buf, ev) = self.resolve_mr(rkey)?;
        if addr < buf.addr || addr + len > buf.addr + buf.len {
            return None;
        }
        Some((buf.slice(addr - buf.addr, len), ev))
    }
}

/// Per-process device context (`ibv_open_device` analogue). `domain` is
/// where the calling software runs: it determines per-operation CPU costs
/// and where SGE content lives.
pub struct VerbsContext {
    fabric: Arc<IbFabric>,
    node: NodeId,
    domain: Domain,
}

impl VerbsContext {
    pub fn open(fabric: Arc<IbFabric>, node: NodeId, domain: Domain) -> Self {
        VerbsContext {
            fabric,
            node,
            domain,
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn domain(&self) -> Domain {
        self.domain
    }

    pub fn mem_ref(&self) -> MemRef {
        MemRef {
            node: self.node,
            domain: self.domain,
        }
    }

    pub fn fabric(&self) -> &Arc<IbFabric> {
        &self.fabric
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        self.fabric.cluster()
    }

    /// Register a memory region, charging the host-side registration cost
    /// (pin pages + HCA translation-table update). The DCFA layer wraps
    /// this with its command round trip for Phi-resident callers.
    pub fn reg_mr(&self, ctx: &mut Ctx, buffer: Buffer) -> MemoryRegion {
        let cost = &self.cluster().config().cost;
        let d = cost.host_mr_reg_base + cost.host_mr_reg_per_page * buffer.pages();
        ctx.sleep(d);
        self.reg_mr_uncharged(buffer)
    }

    /// Register without charging time (the caller models the cost, e.g. the
    /// DCFA command server which charges the full offload round trip).
    pub fn reg_mr_uncharged(&self, buffer: Buffer) -> MemoryRegion {
        self.reg_mr_with_event(buffer, SimEvent::new())
    }

    /// Register (uncharged) with an externally supplied write event, so
    /// inbound RDMA writes into this region wake a multiplexed waiter.
    pub fn reg_mr_with_event(&self, buffer: Buffer, write_event: SimEvent) -> MemoryRegion {
        let mut st = self.fabric.state.lock();
        let key = MrKey(st.next_key);
        st.next_key += 1;
        st.mrs.insert(
            key.0,
            MrEntry {
                buffer: buffer.clone(),
                write_event: write_event.clone(),
            },
        );
        MemoryRegion {
            key,
            buffer,
            write_event,
        }
    }

    /// Deregister a memory region.
    pub fn dereg_mr(&self, mr: &MemoryRegion) {
        self.fabric.state.lock().mrs.remove(&mr.key.0);
    }

    /// Create a completion queue.
    pub fn create_cq(&self) -> CompletionQueue {
        CompletionQueue::new()
    }

    /// Create a reliable-connected queue pair.
    pub fn create_qp(&self, send_cq: &CompletionQueue, recv_cq: &CompletionQueue) -> QueuePair {
        self.create_qp_inner(send_cq, recv_cq, None)
    }

    /// Create a shared receive queue.
    pub fn create_srq(&self) -> SharedReceiveQueue {
        SharedReceiveQueue {
            fabric: self.fabric.clone(),
            shared: Arc::new(SrqShared {
                state: Mutex::new(SrqState {
                    rq: Default::default(),
                    backlog: Default::default(),
                }),
            }),
            domain: self.domain,
        }
    }

    /// Create a reliable-connected queue pair attached to a shared receive
    /// queue: inbound Sends consume SRQ entries, never per-QP receives.
    pub fn create_qp_with_srq(
        &self,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: &SharedReceiveQueue,
    ) -> QueuePair {
        self.create_qp_inner(send_cq, recv_cq, Some(srq.shared.clone()))
    }

    fn create_qp_inner(
        &self,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: Option<Arc<SrqShared>>,
    ) -> QueuePair {
        let mut st = self.fabric.state.lock();
        let qpn = QpNum(st.next_qpn);
        st.next_qpn += 1;
        let shared = Arc::new(QpShared {
            qpn,
            node: self.node,
            state: Mutex::new(QpState {
                remote: None,
                dead: false,
                sq_busy: SimTime::ZERO,
                rq: Default::default(),
                backlog: Default::default(),
                send_cq: send_cq.clone(),
                recv_cq: recv_cq.clone(),
                srq,
            }),
        });
        st.qps.insert((self.node, qpn.0), shared.clone());
        QueuePair {
            fabric: self.fabric.clone(),
            shared,
            domain: self.domain,
        }
    }
}

/// A registered memory region.
#[derive(Clone)]
pub struct MemoryRegion {
    key: MrKey,
    buffer: Buffer,
    write_event: SimEvent,
}

impl MemoryRegion {
    /// lkey == rkey in the simulated fabric.
    pub fn key(&self) -> MrKey {
        self.key
    }

    pub fn rkey(&self) -> MrKey {
        self.key
    }

    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// Base address of the region.
    pub fn addr(&self) -> u64 {
        self.buffer.addr
    }

    pub fn len(&self) -> u64 {
        self.buffer.len
    }

    pub fn is_empty(&self) -> bool {
        self.buffer.len == 0
    }

    /// An SGE covering `[offset, offset+len)` of the region.
    pub fn sge(&self, offset: u64, len: u64) -> Sge {
        assert!(offset + len <= self.buffer.len, "sge outside region");
        Sge {
            addr: self.buffer.addr + offset,
            len,
            lkey: self.key,
        }
    }

    /// Fires whenever an inbound RDMA WRITE lands anywhere in this region —
    /// the simulation's stand-in for polling a cache line.
    pub fn write_event(&self) -> &SimEvent {
        &self.write_event
    }
}

/// A reliable-connected queue pair.
pub struct QueuePair {
    fabric: Arc<IbFabric>,
    shared: Arc<QpShared>,
    domain: Domain,
}

impl QueuePair {
    pub fn qpn(&self) -> QpNum {
        self.shared.qpn
    }

    pub fn node(&self) -> NodeId {
        self.shared.node
    }

    /// Transition to RTR/RTS against a remote QP (both sides must connect).
    pub fn connect(&self, remote_node: NodeId, remote_qpn: QpNum) {
        self.shared.state.lock().remote = Some((remote_node, remote_qpn));
    }

    /// Transition this QP to the error state: deliveries flush with
    /// [`WcStatus::WrFlushErr`] from now on.
    pub fn set_error(&self) {
        self.shared.state.lock().dead = true;
    }

    /// Is this QP in the error state?
    pub fn is_error(&self) -> bool {
        self.shared.state.lock().dead
    }

    /// Convenience: wire two QPs to each other.
    pub fn connect_pair(a: &QueuePair, b: &QueuePair) {
        a.connect(b.node(), b.qpn());
        b.connect(a.node(), a.qpn());
    }

    /// Post a receive work request.
    pub fn post_recv(&self, ctx: &mut Ctx, wr: RecvWr) -> Result<(), VerbsError> {
        // Validate scatter list eagerly.
        for sge in &wr.sges {
            self.fabric.resolve_sge(sge)?;
        }
        let cost = &self.fabric.cluster().config().cost;
        ctx.sleep(cost.cpu_op(self.domain));
        let sched = ctx.scheduler();
        let mut st = self.shared.state.lock();
        debug_assert!(
            st.srq.is_none(),
            "post_recv on an SRQ-attached QP (post to the SRQ instead)"
        );
        if let Some(inbound) = st.backlog.pop_front() {
            // RNR-held send: deliver into this receive right away.
            let (recv_cq, node) = (st.recv_cq.clone(), self.shared.node);
            drop(st);
            self.deliver_send_into(&sched, node, inbound, wr, &recv_cq);
            return Ok(());
        }
        st.rq.push_back(wr);
        Ok(())
    }

    /// Post a send-queue work request (Send / RDMA WRITE / RDMA READ).
    pub fn post_send(&self, ctx: &mut Ctx, wr: SendWr) -> Result<(), VerbsError> {
        self.post_send_inner(ctx, wr, true)
    }

    /// Post a send WR whose doorbell rides on the previous post: real HCAs
    /// fetch WQEs in cache-line batches, so software that enqueues several
    /// WQEs and rings once pays the doorbell/WQE-fetch overhead only on the
    /// first. The engine uses this when flushing a backlog of queued
    /// control packets in one sweep.
    pub fn post_send_coalesced(&self, ctx: &mut Ctx, wr: SendWr) -> Result<(), VerbsError> {
        self.post_send_inner(ctx, wr, false)
    }

    fn post_send_inner(
        &self,
        ctx: &mut Ctx,
        wr: SendWr,
        ring_doorbell: bool,
    ) -> Result<(), VerbsError> {
        let cost = self.fabric.cluster().config().cost.clone();
        // Software post overhead + HCA doorbell/WQE fetch (the latter only
        // when this post rings its own doorbell).
        if ring_doorbell {
            ctx.sleep(cost.cpu_op(self.domain) + cost.hca_wqe_overhead);
        } else {
            ctx.sleep(cost.cpu_op(self.domain));
        }

        let remote = self
            .shared
            .state
            .lock()
            .remote
            .ok_or(VerbsError::QpNotConnected)?;

        // Resolve the local gather/scatter list now (errors are synchronous).
        let mut local_slices = Vec::with_capacity(wr.sges.len());
        for sge in &wr.sges {
            local_slices.push(self.fabric.resolve_sge(sge)?);
        }
        let bytes: u64 = wr.byte_len();
        let cluster = self.fabric.cluster().clone();

        // Where does the data stream run? Send/RdmaWrite: local -> remote.
        // RdmaRead: remote -> local (initiator is the destination node).
        // The local endpoint of the stream is wherever the registered SGE
        // memory actually lives — this is exactly what the offloading send
        // buffer exploits: a Phi-resident process posting from a host twin
        // sources the transfer at host DMA speed (§IV-B4).
        let local_mem = local_slices.first().map(|b| b.mem).unwrap_or(MemRef {
            node: self.shared.node,
            domain: self.domain,
        });
        // The remote side of RDMA ops is wherever the remote region lives;
        // for Send it is wherever the matched receive's SGEs live. We take
        // the remote memory domain from the registered region / remote QP's
        // context at delivery time; for path costing we resolve it now.
        let remote_mem = match wr.opcode {
            SendOpcode::Send => {
                // Cost with the remote QP's receive buffers; approximated by
                // the domain of the first backing region at delivery. For
                // path costing use the remote node with the same domain as
                // the registered RQ entries — resolved at delivery; assume
                // the common case (same domain as the remote QP's first
                // posted buffer is unknowable now) and cost conservatively
                // against the slower Phi write only if the remote node's QP
                // was created from Phi. We look that up via the registry.
                let rdomain = self.remote_qp_domain(remote).unwrap_or(Domain::Host);
                MemRef {
                    node: remote.0,
                    domain: rdomain,
                }
            }
            SendOpcode::RdmaWrite | SendOpcode::RdmaRead => {
                let (rbuf, _) = self
                    .fabric
                    .resolve_remote(wr.rkey, wr.remote_addr, bytes)
                    .ok_or(VerbsError::MissingRemote)?;
                rbuf.mem
            }
            SendOpcode::FetchAdd | SendOpcode::CompareSwap => {
                assert_eq!(bytes, 8, "IB atomics operate on one 8-byte word");
                let (rbuf, _) = self
                    .fabric
                    .resolve_remote(wr.rkey, wr.remote_addr, 8)
                    .ok_or(VerbsError::MissingRemote)?;
                rbuf.mem
            }
        };

        let after = {
            let st = self.shared.state.lock();
            st.sq_busy.max(ctx.now())
        };

        let (src_mem, dst_mem) = match wr.opcode {
            SendOpcode::Send | SendOpcode::RdmaWrite => (local_mem, remote_mem),
            // Reads and atomics: the payload flows back to the initiator
            // (atomics additionally pay the request hop, like reads).
            SendOpcode::RdmaRead | SendOpcode::FetchAdd | SendOpcode::CompareSwap => {
                (remote_mem, local_mem)
            }
        };
        let (_start, end) =
            cluster.reserve_ib_path(src_mem, dst_mem, bytes.max(1), self.shared.node, after);
        self.shared.state.lock().sq_busy = end;

        // Fault plan: a planned failure completes with an error WC at the
        // would-be completion time and moves no data.
        if let Some(status) = self
            .fabric
            .take_fault(wr.opcode, self.shared.node, remote.0, bytes)
        {
            let shared = self.shared.clone();
            let (wr_id, opcode) = (wr.wr_id, wc_opcode_for(wr.opcode));
            cluster.call_at(end, move |s| {
                let send_cq = shared.state.lock().send_cq.clone();
                send_cq.push(
                    s,
                    Wc {
                        wr_id,
                        status,
                        opcode,
                        byte_len: bytes,
                        src: None,
                    },
                );
            });
            return Ok(());
        }

        // Schedule the delivery.
        let fabric = self.fabric.clone();
        let shared = self.shared.clone();
        let wr2 = wr;
        let domain = self.domain;
        cluster.call_at(end, move |s| {
            deliver(
                &fabric,
                &shared,
                domain,
                wr2,
                local_slices,
                remote,
                bytes,
                s,
            );
        });
        Ok(())
    }

    fn remote_qp_domain(&self, remote: (NodeId, QpNum)) -> Option<Domain> {
        // The receive buffers of a Phi-resident process live in Phi memory.
        // We infer the domain from the remote QP's posted receives if any;
        // otherwise default to Host. This only affects path *costing* of
        // two-sided sends (DCFA-MPI uses RDMA for all data movement).
        let st = self.fabric.state.lock();
        let qp = st.qps.get(&(remote.0, remote.1 .0))?.clone();
        drop(st);
        let qst = qp.state.lock();
        let sge = match qst.srq.clone() {
            Some(srq) => {
                drop(qst);
                let sst = srq.state.lock();
                sst.rq.front().map(|wr| wr.sges[0])?
            }
            None => {
                let sge = qst.rq.front().map(|wr| wr.sges[0]);
                drop(qst);
                sge?
            }
        };
        let (buf, _) = self.fabric.resolve_mr(sge.lkey)?;
        Some(buf.mem.domain)
    }

    fn deliver_send_into(
        &self,
        sched: &Scheduler,
        _node: NodeId,
        inbound: InboundSend,
        rwr: RecvWr,
        recv_cq: &CompletionQueue,
    ) {
        let cluster = self.fabric.cluster();
        scatter_into(
            &self.fabric,
            cluster,
            &inbound.data,
            &rwr,
            inbound.src,
            recv_cq,
            sched,
        );
    }
}

/// Scatter `data` into a receive WR's SGEs and complete it.
fn scatter_into(
    fabric: &Arc<IbFabric>,
    cluster: &Arc<Cluster>,
    data: &[u8],
    rwr: &RecvWr,
    src: (NodeId, QpNum),
    recv_cq: &CompletionQueue,
    sched: &Scheduler,
) {
    if (data.len() as u64) > rwr.byte_len() {
        recv_cq.push(
            sched,
            Wc {
                wr_id: rwr.wr_id,
                status: WcStatus::LocalLengthError,
                opcode: WcOpcode::Recv,
                byte_len: data.len() as u64,
                src: Some(src),
            },
        );
        return;
    }
    let mut off = 0usize;
    for sge in &rwr.sges {
        if off >= data.len() {
            break;
        }
        let take = (sge.len as usize).min(data.len() - off);
        if let Ok(slice) = fabric.resolve_sge(&Sge {
            addr: sge.addr,
            len: take as u64,
            lkey: sge.lkey,
        }) {
            cluster.write(&slice, 0, &data[off..off + take]);
        }
        off += take;
    }
    recv_cq.push(
        sched,
        Wc {
            wr_id: rwr.wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Recv,
            byte_len: data.len() as u64,
            src: Some(src),
        },
    );
}

fn wc_opcode_for(op: SendOpcode) -> WcOpcode {
    match op {
        SendOpcode::Send => WcOpcode::Send,
        SendOpcode::RdmaWrite => WcOpcode::RdmaWrite,
        SendOpcode::RdmaRead => WcOpcode::RdmaRead,
        SendOpcode::FetchAdd => WcOpcode::FetchAdd,
        SendOpcode::CompareSwap => WcOpcode::CompareSwap,
    }
}

/// Executed at transfer end time, in engine context.
#[allow(clippy::too_many_arguments)]
fn deliver(
    fabric: &Arc<IbFabric>,
    shared: &Arc<QpShared>,
    _domain: Domain,
    wr: SendWr,
    local_slices: Vec<Buffer>,
    remote: (NodeId, QpNum),
    bytes: u64,
    sched: &Scheduler,
) {
    let cluster = fabric.cluster().clone();
    let push_local = |status: WcStatus, opcode: WcOpcode| {
        if wr.signaled {
            let send_cq = shared.state.lock().send_cq.clone();
            send_cq.push(
                sched,
                Wc {
                    wr_id: wr.wr_id,
                    status,
                    opcode,
                    byte_len: bytes,
                    src: None,
                },
            );
        }
    };

    // Fail-stop check at delivery time: if either endpoint QP has been
    // transitioned to the error state since this WR was posted, the WR
    // flushes — an error completion surfaces locally and no data moves.
    // This covers every opcode (RDMA ops resolve payload buffers by rkey
    // and would otherwise never consult the remote QP at all).
    if shared.state.lock().dead || fabric.qp_dead(remote.0, remote.1) {
        push_local(WcStatus::WrFlushErr, wc_opcode_for(wr.opcode));
        return;
    }

    match wr.opcode {
        SendOpcode::Send => {
            // Gather now (completion-time content).
            let mut data = Vec::with_capacity(bytes as usize);
            for s in &local_slices {
                data.extend_from_slice(&cluster.read_vec(s));
            }
            let rqp = {
                let st = fabric.state.lock();
                st.qps.get(&(remote.0, remote.1 .0)).cloned()
            };
            let Some(rqp) = rqp else {
                push_local(WcStatus::RemoteAccessError, WcOpcode::Send);
                return;
            };
            let mut rst = rqp.state.lock();
            if let Some(srq) = rst.srq.clone() {
                // SRQ-attached QP: consume from the shared pool; complete
                // on this QP's recv CQ.
                let recv_cq = rst.recv_cq.clone();
                drop(rst);
                let mut sst = srq.state.lock();
                if let Some(rwr) = sst.rq.pop_front() {
                    drop(sst);
                    scatter_into(
                        fabric,
                        &cluster,
                        &data,
                        &rwr,
                        (shared.node, shared.qpn),
                        &recv_cq,
                        sched,
                    );
                } else {
                    sst.backlog.push_back((
                        InboundSend {
                            data,
                            src: (shared.node, shared.qpn),
                        },
                        recv_cq,
                    ));
                }
            } else if let Some(rwr) = rst.rq.pop_front() {
                let recv_cq = rst.recv_cq.clone();
                drop(rst);
                scatter_into(
                    fabric,
                    &cluster,
                    &data,
                    &rwr,
                    (shared.node, shared.qpn),
                    &recv_cq,
                    sched,
                );
            } else {
                rst.backlog.push_back(InboundSend {
                    data,
                    src: (shared.node, shared.qpn),
                });
            }
            push_local(WcStatus::Success, WcOpcode::Send);
        }
        SendOpcode::RdmaWrite => {
            let Some((rbuf, wev)) = fabric.resolve_remote(wr.rkey, wr.remote_addr, bytes) else {
                push_local(WcStatus::RemoteAccessError, WcOpcode::RdmaWrite);
                return;
            };
            // Deliver payload in SGE order (tail lands last — pollable).
            let mut off = 0u64;
            for s in &local_slices {
                let data = cluster.read_vec(s);
                cluster.write(&rbuf.slice(off, s.len), 0, &data);
                off += s.len;
            }
            wev.notify_all(sched);
            push_local(WcStatus::Success, WcOpcode::RdmaWrite);
        }
        SendOpcode::RdmaRead => {
            let Some((rbuf, _wev)) = fabric.resolve_remote(wr.rkey, wr.remote_addr, bytes) else {
                push_local(WcStatus::RemoteAccessError, WcOpcode::RdmaRead);
                return;
            };
            let data = cluster.read_vec(&rbuf);
            let mut off = 0usize;
            for s in &local_slices {
                cluster.write(s, 0, &data[off..off + s.len as usize]);
                off += s.len as usize;
            }
            push_local(WcStatus::Success, WcOpcode::RdmaRead);
        }
        SendOpcode::FetchAdd | SendOpcode::CompareSwap => {
            let opcode = wc_opcode_for(wr.opcode);
            let Some((rbuf, wev)) = fabric.resolve_remote(wr.rkey, wr.remote_addr, 8) else {
                push_local(WcStatus::RemoteAccessError, opcode);
                return;
            };
            // The serialized engine makes the read-modify-write atomic by
            // construction (the HCA guarantee).
            let mut word = [0u8; 8];
            cluster.read(&rbuf, 0, &mut word);
            let original = u64::from_le_bytes(word);
            let new = match wr.opcode {
                SendOpcode::FetchAdd => Some(original.wrapping_add(wr.compare_add)),
                SendOpcode::CompareSwap => (original == wr.compare_add).then_some(wr.swap),
                _ => unreachable!(),
            };
            if let Some(v) = new {
                cluster.write(&rbuf, 0, &v.to_le_bytes());
                wev.notify_all(sched);
            }
            // Original value lands in the local result SGE.
            cluster.write(&local_slices[0], 0, &original.to_le_bytes());
            push_local(WcStatus::Success, opcode);
        }
    }
}
