//! # verbs — InfiniBand Verbs-style API over the simulated HCA
//!
//! The programming interface DCFA exposes on the Xeon Phi is "uniform with
//! the original host's InfiniBand Verbs library" (§I). This crate implements
//! that library for the simulation: protection-less contexts, memory-region
//! registration, reliable-connected queue pairs, completion queues,
//! two-sided Send/Recv and one-sided RDMA WRITE / RDMA READ with SGE
//! gather/scatter.
//!
//! Data transfers charge virtual time through [`fabric::Cluster`]'s path
//! model, which includes the paper's discovered bottleneck: the HCA's DMA
//! read from Xeon Phi memory.

mod api;
mod cq;
mod types;

pub use api::{FaultPlan, IbFabric, MemoryRegion, QueuePair, SharedReceiveQueue, VerbsContext};
pub use cq::CompletionQueue;
pub use types::{
    MrKey, QpNum, RecvWr, SendOpcode, SendWr, Sge, VerbsError, Wc, WcOpcode, WcStatus,
};
