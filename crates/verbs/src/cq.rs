//! Completion queues.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Ctx, Scheduler, SimEvent};

use crate::types::Wc;

struct CqInner {
    queue: VecDeque<Wc>,
}

/// A completion queue. Cloning yields another handle to the same queue.
///
/// Real HCAs are polled through cache traffic; the simulation additionally
/// exposes a [`SimEvent`] that fires whenever a CQE is pushed so blocked
/// processes wake exactly when a completion lands (standing in for the
/// memory-polling loop without spinning the event queue).
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<Mutex<CqInner>>,
    event: SimEvent,
}

impl Default for CompletionQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionQueue {
    pub fn new() -> Self {
        Self::with_event(SimEvent::new())
    }

    /// Create a CQ whose pushes notify an externally supplied event, so one
    /// process can multiplex-wait on several completion sources (CQs plus
    /// inbound-RDMA region events) — the `ibv_comp_channel` analogue.
    pub fn with_event(event: SimEvent) -> Self {
        CompletionQueue {
            inner: Arc::new(Mutex::new(CqInner {
                queue: VecDeque::new(),
            })),
            event,
        }
    }

    /// Non-blocking poll, like `ibv_poll_cq` with one entry.
    pub fn poll(&self) -> Option<Wc> {
        self.inner.lock().queue.pop_front()
    }

    /// Non-blocking batched poll, like `ibv_poll_cq` with `max` entries:
    /// drains up to `max` completions into `out` under a single lock
    /// acquisition and returns how many were appended. `out` is a
    /// caller-owned scratch buffer so a steady-state progress sweep does
    /// not allocate.
    pub fn poll_batch(&self, out: &mut Vec<Wc>, max: usize) -> usize {
        let mut inner = self.inner.lock();
        let n = max.min(inner.queue.len());
        out.extend(inner.queue.drain(..n));
        n
    }

    /// Blocking poll: parks the process until a CQE is available.
    pub fn wait(&self, ctx: &mut Ctx) -> Wc {
        loop {
            let seen = self.event.epoch();
            if let Some(wc) = self.poll() {
                return wc;
            }
            ctx.wait_event(&self.event, seen, "cq wait");
        }
    }

    /// Number of queued completions.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The notification event (for multiplexed waiting).
    pub fn event(&self) -> &SimEvent {
        &self.event
    }

    /// Device side: push a completion and wake pollers.
    pub(crate) fn push(&self, sched: &Scheduler, wc: Wc) {
        self.inner.lock().queue.push_back(wc);
        self.event.notify_all(sched);
    }
}
