//! Wire-level types of the Verbs-style API: scatter/gather elements, work
//! requests, work completions and errors.

use std::fmt;

use fabric::NodeId;

/// Queue-pair number, unique across the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpNum(pub u32);

impl fmt::Display for QpNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Memory-region key. The simulation uses one key namespace for local and
/// remote access (lkey == rkey), as many real stacks effectively do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MrKey(pub u32);

/// A scatter/gather element: a range of registered memory, addressed with
/// the same domain-local addresses the application sees.
#[derive(Debug, Clone, Copy)]
pub struct Sge {
    pub addr: u64,
    pub len: u64,
    pub lkey: MrKey,
}

/// An inline gather list: up to [`SgeList::MAX`] SGEs without a heap
/// allocation. Work requests are posted on the hot path of every eager
/// packet, so the gather list lives inside the WR (making [`SendWr`]
/// `Copy`) instead of in a per-post `Vec` — the paper's EAGER packet
/// needs at most three SGEs (header ‖ payload ‖ tail).
#[derive(Debug, Clone, Copy)]
pub struct SgeList {
    sges: [Sge; Self::MAX],
    len: u8,
}

impl SgeList {
    /// Maximum gather entries (header, payload, tail).
    pub const MAX: usize = 3;

    const EMPTY: Sge = Sge {
        addr: 0,
        len: 0,
        lkey: MrKey(0),
    };

    pub fn new() -> Self {
        SgeList {
            sges: [Self::EMPTY; Self::MAX],
            len: 0,
        }
    }

    pub fn push(&mut self, sge: Sge) {
        assert!(
            (self.len as usize) < Self::MAX,
            "SgeList overflow: at most {} SGEs",
            Self::MAX
        );
        self.sges[self.len as usize] = sge;
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Sge> {
        self.as_slice().iter()
    }

    pub fn as_slice(&self) -> &[Sge] {
        &self.sges[..self.len as usize]
    }
}

impl Default for SgeList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for SgeList {
    type Target = [Sge];
    fn deref(&self) -> &[Sge] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a SgeList {
    type Item = &'a Sge;
    type IntoIter = std::slice::Iter<'a, Sge>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Sge> for SgeList {
    fn from(sge: Sge) -> Self {
        let mut l = SgeList::new();
        l.push(sge);
        l
    }
}

impl<const N: usize> From<[Sge; N]> for SgeList {
    fn from(sges: [Sge; N]) -> Self {
        let mut l = SgeList::new();
        for s in sges {
            l.push(s);
        }
        l
    }
}

impl From<Vec<Sge>> for SgeList {
    fn from(sges: Vec<Sge>) -> Self {
        let mut l = SgeList::new();
        for s in sges {
            l.push(s);
        }
        l
    }
}

impl From<&[Sge]> for SgeList {
    fn from(sges: &[Sge]) -> Self {
        let mut l = SgeList::new();
        for &s in sges {
            l.push(s);
        }
        l
    }
}

/// Send-queue operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOpcode {
    /// Two-sided send; requires a posted receive at the remote QP.
    Send,
    /// One-sided write into `(remote_addr, rkey)`.
    RdmaWrite,
    /// One-sided read from `(remote_addr, rkey)` into the local SGEs.
    RdmaRead,
    /// Atomic fetch-and-add on an 8-byte remote word; the original value
    /// lands in the (8-byte) local SGE.
    FetchAdd,
    /// Atomic compare-and-swap on an 8-byte remote word; the original
    /// value lands in the local SGE.
    CompareSwap,
}

/// A send work request. `Copy` by design: the engine re-posts WRs on
/// retry and keeps them in an inflight table, and an inline gather list
/// keeps every such move allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct SendWr {
    pub wr_id: u64,
    pub opcode: SendOpcode,
    /// Local gather list (Send/RdmaWrite: source; RdmaRead/atomics:
    /// destination).
    pub sges: SgeList,
    /// Remote address for RDMA operations.
    pub remote_addr: u64,
    /// Remote key for RDMA operations.
    pub rkey: MrKey,
    /// FetchAdd: the addend. CompareSwap: the expected value.
    pub compare_add: u64,
    /// CompareSwap: the replacement value.
    pub swap: u64,
    /// Whether a work completion is generated on success.
    pub signaled: bool,
}

impl SendWr {
    fn base(wr_id: u64, opcode: SendOpcode, sges: SgeList, remote_addr: u64, rkey: MrKey) -> Self {
        SendWr {
            wr_id,
            opcode,
            sges,
            remote_addr,
            rkey,
            compare_add: 0,
            swap: 0,
            signaled: true,
        }
    }

    pub fn send(wr_id: u64, sges: impl Into<SgeList>) -> Self {
        Self::base(wr_id, SendOpcode::Send, sges.into(), 0, MrKey(0))
    }

    pub fn rdma_write(wr_id: u64, sges: impl Into<SgeList>, remote_addr: u64, rkey: MrKey) -> Self {
        Self::base(wr_id, SendOpcode::RdmaWrite, sges.into(), remote_addr, rkey)
    }

    pub fn rdma_read(wr_id: u64, sges: impl Into<SgeList>, remote_addr: u64, rkey: MrKey) -> Self {
        Self::base(wr_id, SendOpcode::RdmaRead, sges.into(), remote_addr, rkey)
    }

    /// Atomic fetch-and-add of `add` on the 8-byte word at
    /// `(remote_addr, rkey)`; `result_sge` (8 bytes) receives the
    /// original value.
    pub fn fetch_add(wr_id: u64, result_sge: Sge, remote_addr: u64, rkey: MrKey, add: u64) -> Self {
        let mut wr = Self::base(
            wr_id,
            SendOpcode::FetchAdd,
            result_sge.into(),
            remote_addr,
            rkey,
        );
        wr.compare_add = add;
        wr
    }

    /// Atomic compare-and-swap: if the remote word equals `compare`,
    /// replace it with `swap`; the original value lands in `result_sge`.
    pub fn compare_swap(
        wr_id: u64,
        result_sge: Sge,
        remote_addr: u64,
        rkey: MrKey,
        compare: u64,
        swap: u64,
    ) -> Self {
        let mut wr = Self::base(
            wr_id,
            SendOpcode::CompareSwap,
            result_sge.into(),
            remote_addr,
            rkey,
        );
        wr.compare_add = compare;
        wr.swap = swap;
        wr
    }

    pub fn unsignaled(mut self) -> Self {
        self.signaled = false;
        self
    }

    /// Total gather length.
    pub fn byte_len(&self) -> u64 {
        self.sges.iter().map(|s| s.len).sum()
    }
}

/// A receive work request (scatter list for an inbound Send).
#[derive(Debug, Clone)]
pub struct RecvWr {
    pub wr_id: u64,
    pub sges: Vec<Sge>,
}

impl RecvWr {
    pub fn new(wr_id: u64, sges: Vec<Sge>) -> Self {
        RecvWr { wr_id, sges }
    }

    pub fn byte_len(&self) -> u64 {
        self.sges.iter().map(|s| s.len).sum()
    }
}

/// Work-completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    Success,
    /// Inbound Send larger than the posted receive buffers.
    LocalLengthError,
    /// RDMA access outside the registered remote region / bad key.
    RemoteAccessError,
    /// Receiver-not-ready retry budget exhausted (IBV_WC_RNR_RETRY_EXC_ERR):
    /// the remote QP kept NAKing. Transient — the peer may drain.
    RnrRetryExceeded,
    /// Link-level retransmission budget exhausted
    /// (IBV_WC_RETRY_EXC_ERR): packets lost on the wire. Transient.
    TransportRetryExceeded,
    /// The local or remote QP is in the error state
    /// (IBV_WC_WR_FLUSH_ERR): a fail-stopped peer flushes every posted
    /// and in-flight WR with this status. Never transient — the QP
    /// never leaves the error state.
    WrFlushErr,
}

impl WcStatus {
    /// Whether a failed completion with this status is worth retrying
    /// (RNR / wire-retry exhaustion) as opposed to a permanent protection
    /// or length violation.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            WcStatus::RnrRetryExceeded | WcStatus::TransportRetryExceeded
        )
    }
}

/// Work-completion opcode (which operation finished).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcOpcode {
    Send,
    RdmaWrite,
    RdmaRead,
    FetchAdd,
    CompareSwap,
    Recv,
}

/// A work completion.
#[derive(Debug, Clone)]
pub struct Wc {
    pub wr_id: u64,
    pub status: WcStatus,
    pub opcode: WcOpcode,
    pub byte_len: u64,
    /// For Recv completions: the sending QP.
    pub src: Option<(NodeId, QpNum)>,
}

/// Errors detected synchronously at post time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    QpNotConnected,
    /// Unknown or deregistered local key.
    InvalidLKey(MrKey),
    /// SGE range outside its memory region.
    SgeOutOfRange {
        addr: u64,
        len: u64,
    },
    /// RDMA op without a remote key on an op that needs one.
    MissingRemote,
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::QpNotConnected => write!(f, "queue pair is not connected"),
            VerbsError::InvalidLKey(k) => write!(f, "invalid local key {k:?}"),
            VerbsError::SgeOutOfRange { addr, len } => {
                write!(f, "SGE [{addr:#x}, +{len}) outside its memory region")
            }
            VerbsError::MissingRemote => write!(f, "RDMA operation without remote address/key"),
        }
    }
}

impl std::error::Error for VerbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_wr_builders() {
        let sge = Sge {
            addr: 0x1000,
            len: 64,
            lkey: MrKey(7),
        };
        let wr = SendWr::send(1, vec![sge]);
        assert_eq!(wr.opcode, SendOpcode::Send);
        assert!(wr.signaled);
        assert_eq!(wr.byte_len(), 64);
        let wr = SendWr::rdma_write(2, vec![sge, sge], 0x2000, MrKey(9)).unsignaled();
        assert_eq!(wr.opcode, SendOpcode::RdmaWrite);
        assert!(!wr.signaled);
        assert_eq!(wr.byte_len(), 128);
        assert_eq!(wr.rkey, MrKey(9));
    }

    #[test]
    fn sge_list_conversions() {
        let sge = Sge {
            addr: 0x40,
            len: 8,
            lkey: MrKey(3),
        };
        let from_one: SgeList = sge.into();
        assert_eq!(from_one.len(), 1);
        assert_eq!(from_one[0].addr, 0x40);
        let from_arr: SgeList = [sge, sge, sge].into();
        assert_eq!(from_arr.len(), 3);
        assert_eq!(from_arr.iter().map(|s| s.len).sum::<u64>(), 24);
        let from_vec: SgeList = vec![sge, sge].into();
        assert_eq!(from_vec.as_slice().len(), 2);
        assert!(SgeList::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "SgeList overflow")]
    fn sge_list_overflow_panics() {
        let sge = Sge {
            addr: 0,
            len: 1,
            lkey: MrKey(0),
        };
        let mut l = SgeList::new();
        for _ in 0..=SgeList::MAX {
            l.push(sge);
        }
    }

    #[test]
    fn recv_wr_len() {
        let wr = RecvWr::new(
            3,
            vec![
                Sge {
                    addr: 0,
                    len: 10,
                    lkey: MrKey(1),
                },
                Sge {
                    addr: 16,
                    len: 22,
                    lkey: MrKey(1),
                },
            ],
        );
        assert_eq!(wr.byte_len(), 32);
    }

    #[test]
    fn error_display() {
        let e = VerbsError::SgeOutOfRange { addr: 0x10, len: 4 };
        assert!(e.to_string().contains("outside"));
    }

    #[test]
    fn transient_statuses_classified() {
        assert!(WcStatus::RnrRetryExceeded.is_transient());
        assert!(WcStatus::TransportRetryExceeded.is_transient());
        assert!(!WcStatus::Success.is_transient());
        assert!(!WcStatus::LocalLengthError.is_transient());
        assert!(!WcStatus::RemoteAccessError.is_transient());
        assert!(!WcStatus::WrFlushErr.is_transient());
    }
}
