//! Integration tests for the Verbs API: send/recv matching, RDMA read and
//! write semantics, SGE gather/scatter, ordering, error statuses and the
//! Phi-path bottleneck seen through verbs.

use std::sync::Arc;

use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::{SimTime, Simulation};
use verbs::{IbFabric, RecvWr, SendWr, VerbsContext, VerbsError, WcOpcode, WcStatus};

struct Rig {
    sim: Simulation,
    fabric: Arc<IbFabric>,
}

fn rig(nodes: usize) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let fabric = IbFabric::new(cluster);
    Rig { sim, fabric }
}

fn mem(node: usize, domain: Domain) -> MemRef {
    MemRef {
        node: NodeId(node),
        domain,
    }
}

#[test]
fn rdma_write_moves_bytes_and_completes() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    type DoneCell = Arc<Mutex<Option<(u64, Vec<u8>)>>>;
    let done: DoneCell = Arc::new(Mutex::new(None));
    let done2 = done.clone();
    r.sim.spawn("writer", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);

        let src_buf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let dst_buf = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        cl.write(&src_buf, 0, &[0xAB; 4096]);

        let mr_src = ctx_a.reg_mr(ctx, src_buf);
        let mr_dst = ctx_b.reg_mr_uncharged(dst_buf.clone());

        let cq_a = ctx_a.create_cq();
        let cq_b = ctx_b.create_cq();
        let qp_a = ctx_a.create_qp(&cq_a, &cq_a);
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        qp_a.post_send(
            ctx,
            SendWr::rdma_write(7, vec![mr_src.sge(0, 4096)], mr_dst.addr(), mr_dst.rkey()),
        )
        .unwrap();
        let wc = cq_a.wait(ctx);
        assert_eq!(wc.status, WcStatus::Success);
        assert_eq!(wc.opcode, WcOpcode::RdmaWrite);
        *done2.lock() = Some((ctx.now().as_nanos(), cl.read_vec(&dst_buf)));
    });
    r.sim.run_expect();
    let (t, data) = done.lock().clone().unwrap();
    assert!(t > 0);
    assert_eq!(data, vec![0xAB; 4096]);
}

#[test]
fn send_recv_matches_fifo_and_scatters() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    type GotCell = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
    let got: GotCell = Arc::new(Mutex::new(Vec::new()));

    // Receiver pre-posts two receives, sender sends two distinct payloads.
    let f1 = fabric.clone();
    let got2 = got.clone();
    r.sim.spawn("receiver", move |ctx| {
        let cl = f1.cluster().clone();
        let vctx = VerbsContext::open(f1.clone(), NodeId(1), Domain::Host);
        let buf = cl.alloc_pages(mem(1, Domain::Host), 8192).unwrap();
        let mr = vctx.reg_mr(ctx, buf);
        let cq = vctx.create_cq();
        let qp = vctx.create_qp(&cq, &cq);
        qp.connect(NodeId(0), verbs::QpNum(2)); // sender's QP created second

        qp.post_recv(ctx, RecvWr::new(100, vec![mr.sge(0, 4096)]))
            .unwrap();
        qp.post_recv(ctx, RecvWr::new(101, vec![mr.sge(4096, 4096)]))
            .unwrap();
        for _ in 0..2 {
            let wc = cq.wait(ctx);
            assert_eq!(wc.status, WcStatus::Success);
            assert_eq!(wc.opcode, WcOpcode::Recv);
            let off = if wc.wr_id == 100 { 0 } else { 4096 };
            let mut out = vec![0u8; wc.byte_len as usize];
            cl.read(mr.buffer(), off, &mut out);
            got2.lock().push((wc.wr_id, out));
        }
    });

    let f2 = fabric.clone();
    r.sim.spawn("sender", move |ctx| {
        let cl = f2.cluster().clone();
        let vctx = VerbsContext::open(f2.clone(), NodeId(0), Domain::Host);
        let buf = cl.alloc_pages(mem(0, Domain::Host), 8192).unwrap();
        cl.write(&buf, 0, &[1u8; 4096]);
        cl.write(&buf, 4096, &[2u8; 4096]);
        let mr = vctx.reg_mr(ctx, buf);
        let cq = vctx.create_cq();
        let qp = vctx.create_qp(&cq, &cq);
        qp.connect(NodeId(1), verbs::QpNum(1)); // receiver's QP created first

        // Give the receiver a moment to post; FIFO order must hold anyway.
        ctx.sleep(simcore::SimDuration::from_micros(10));
        qp.post_send(ctx, SendWr::send(0, vec![mr.sge(0, 4096)]))
            .unwrap();
        qp.post_send(ctx, SendWr::send(1, vec![mr.sge(4096, 4096)]))
            .unwrap();
        for _ in 0..2 {
            let wc = cq.wait(ctx);
            assert_eq!(wc.status, WcStatus::Success);
        }
    });
    r.sim.run_expect();
    let got = got.lock().clone();
    assert_eq!(got.len(), 2);
    // First send matched first posted receive.
    assert_eq!(got[0].0, 100);
    assert_eq!(got[0].1, vec![1u8; 4096]);
    assert_eq!(got[1].0, 101);
    assert_eq!(got[1].1, vec![2u8; 4096]);
}

#[test]
fn rdma_read_pulls_remote_content() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("reader", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);

        let remote = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        cl.write(&remote, 0, b"rendezvous payload");
        let mr_remote = ctx_b.reg_mr_uncharged(remote);

        let local = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let mr_local = ctx_a.reg_mr(ctx, local.clone());

        let cq = ctx_a.create_cq();
        let qp_a = ctx_a.create_qp(&cq, &cq);
        let cq_b = ctx_b.create_cq();
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        qp_a.post_send(
            ctx,
            SendWr::rdma_read(
                9,
                vec![mr_local.sge(0, 18)],
                mr_remote.addr(),
                mr_remote.rkey(),
            ),
        )
        .unwrap();
        let wc = cq.wait(ctx);
        assert_eq!(wc.status, WcStatus::Success);
        assert_eq!(wc.opcode, WcOpcode::RdmaRead);
        let mut out = vec![0u8; 18];
        cl.read(&local, 0, &mut out);
        assert_eq!(&out, b"rendezvous payload");
    });
    r.sim.run_expect();
}

#[test]
fn rdma_write_sge_order_tail_polling() {
    // The eager packet: header SGE + data SGE + tail SGE, delivered in
    // order into a contiguous remote ring slot.
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("eager", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);

        let src = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        cl.write(&src, 0, &[0x11; 64]); // header
        cl.write(&src, 64, &[0x22; 256]); // data
        cl.write(&src, 320, &[0xEE; 8]); // tail
        let mr_src = ctx_a.reg_mr(ctx, src);

        let ring = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        let mr_ring = ctx_b.reg_mr_uncharged(ring.clone());

        let cq = ctx_a.create_cq();
        let qp_a = ctx_a.create_qp(&cq, &cq);
        let cq_b = ctx_b.create_cq();
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        let wr = SendWr::rdma_write(
            1,
            vec![mr_src.sge(0, 64), mr_src.sge(64, 256), mr_src.sge(320, 8)],
            mr_ring.addr(),
            mr_ring.rkey(),
        );
        qp_a.post_send(ctx, wr).unwrap();

        // Receiver side: wait for the region write event, then check tail.
        let seen = mr_ring.write_event().epoch();
        ctx.wait_event(mr_ring.write_event(), seen, "tail poll");
        let mut tail = [0u8; 8];
        cl.read(&ring, 320, &mut tail);
        assert_eq!(tail, [0xEE; 8]);
        let mut hdr = [0u8; 64];
        cl.read(&ring, 0, &mut hdr);
        assert_eq!(hdr, [0x11; 64]);
    });
    r.sim.run_expect();
}

#[test]
fn send_larger_than_recv_errors() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);
        let sbuf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let rbuf = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        let mr_s = ctx_a.reg_mr(ctx, sbuf);
        let mr_r = ctx_b.reg_mr_uncharged(rbuf);
        let cq_a = ctx_a.create_cq();
        let cq_b = ctx_b.create_cq();
        let qp_a = ctx_a.create_qp(&cq_a, &cq_a);
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        qp_b.post_recv(ctx, RecvWr::new(5, vec![mr_r.sge(0, 16)]))
            .unwrap();
        qp_a.post_send(ctx, SendWr::send(6, vec![mr_s.sge(0, 64)]))
            .unwrap();
        let wc = cq_b.wait(ctx);
        assert_eq!(wc.status, WcStatus::LocalLengthError);
        assert_eq!(wc.byte_len, 64);
    });
    r.sim.run_expect();
}

#[test]
fn send_before_recv_is_held_and_delivered() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);
        let sbuf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        cl.write(&sbuf, 0, b"late recv");
        let rbuf = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        let mr_s = ctx_a.reg_mr(ctx, sbuf);
        let mr_r = ctx_b.reg_mr_uncharged(rbuf.clone());
        let cq_a = ctx_a.create_cq();
        let cq_b = ctx_b.create_cq();
        let qp_a = ctx_a.create_qp(&cq_a, &cq_a);
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        qp_a.post_send(ctx, SendWr::send(1, vec![mr_s.sge(0, 9)]))
            .unwrap();
        // Wait long enough that the send has landed with no receive posted.
        ctx.sleep(simcore::SimDuration::from_millis(1));
        qp_b.post_recv(ctx, RecvWr::new(2, vec![mr_r.sge(0, 64)]))
            .unwrap();
        let wc = cq_b.wait(ctx);
        assert_eq!(wc.status, WcStatus::Success);
        let mut out = vec![0u8; 9];
        cl.read(&rbuf, 0, &mut out);
        assert_eq!(&out, b"late recv");
    });
    r.sim.run_expect();
}

#[test]
fn post_send_on_unconnected_qp_fails() {
    let mut r = rig(1);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let vctx = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let buf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let mr = vctx.reg_mr(ctx, buf);
        let cq = vctx.create_cq();
        let qp = vctx.create_qp(&cq, &cq);
        let err = qp
            .post_send(ctx, SendWr::send(1, vec![mr.sge(0, 8)]))
            .unwrap_err();
        assert_eq!(err, VerbsError::QpNotConnected);
    });
    r.sim.run_expect();
}

#[test]
fn invalid_lkey_and_out_of_range_sge_fail() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let vctx = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let buf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let mr = vctx.reg_mr(ctx, buf);
        let cq = vctx.create_cq();
        let qp = vctx.create_qp(&cq, &cq);
        qp.connect(NodeId(1), verbs::QpNum(999));

        let bad_key = SendWr::send(
            1,
            vec![verbs::Sge {
                addr: mr.addr(),
                len: 8,
                lkey: verbs::MrKey(4242),
            }],
        );
        assert!(matches!(
            qp.post_send(ctx, bad_key),
            Err(VerbsError::InvalidLKey(_))
        ));

        let oob = SendWr::send(
            2,
            vec![verbs::Sge {
                addr: mr.addr() + 4090,
                len: 100,
                lkey: mr.key(),
            }],
        );
        assert!(matches!(
            qp.post_send(ctx, oob),
            Err(VerbsError::SgeOutOfRange { .. })
        ));
    });
    r.sim.run_expect();
}

#[test]
fn dereg_mr_invalidates_rdma_target() {
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);
        let sbuf = cl.alloc_pages(mem(0, Domain::Host), 4096).unwrap();
        let rbuf = cl.alloc_pages(mem(1, Domain::Host), 4096).unwrap();
        let mr_s = ctx_a.reg_mr(ctx, sbuf);
        let mr_r = ctx_b.reg_mr_uncharged(rbuf);
        let cq_a = ctx_a.create_cq();
        let cq_b = ctx_b.create_cq();
        let qp_a = ctx_a.create_qp(&cq_a, &cq_a);
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        ctx_b.dereg_mr(&mr_r);
        qp_a.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr_s.sge(0, 64)], mr_r.addr(), mr_r.rkey()),
        )
        .unwrap_err();
    });
    r.sim.run_expect();
}

#[test]
fn sq_ordering_serializes_same_qp_transfers() {
    // Two back-to-back 1 MiB RDMA writes on one QP must not overlap.
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = times.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);
        let len = 1 << 20;
        let sbuf = cl.alloc_pages(mem(0, Domain::Host), len).unwrap();
        let rbuf = cl.alloc_pages(mem(1, Domain::Host), len).unwrap();
        let mr_s = ctx_a.reg_mr(ctx, sbuf);
        let mr_r = ctx_b.reg_mr_uncharged(rbuf);
        let cq = ctx_a.create_cq();
        let qp_a = ctx_a.create_qp(&cq, &cq);
        let cq_b = ctx_b.create_cq();
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);

        for id in 0..2 {
            qp_a.post_send(
                ctx,
                SendWr::rdma_write(id, vec![mr_s.sge(0, len)], mr_r.addr(), mr_r.rkey()),
            )
            .unwrap();
        }
        for _ in 0..2 {
            let _ = cq.wait(ctx);
            t2.lock().push(ctx.now().as_nanos());
        }
    });
    r.sim.run_expect();
    let times = times.lock().clone();
    let single = times[0] as f64;
    let both = times[1] as f64;
    assert!(both / single > 1.9, "transfers overlapped: {times:?}");
}

#[test]
fn phi_sourced_verbs_transfer_is_slow() {
    // Same check as the fabric-level test but through the full verbs stack,
    // with buffers in Phi memory (what DCFA-MPI without offload does).
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    let out: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let out2 = out.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let len = 1 << 20;
        let mut elapsed = [0u64; 2];
        for (i, dom) in [Domain::Phi, Domain::Host].iter().enumerate() {
            let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), *dom);
            let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), *dom);
            let sbuf = cl.alloc_pages(mem(0, *dom), len).unwrap();
            let rbuf = cl.alloc_pages(mem(1, *dom), len).unwrap();
            let mr_s = ctx_a.reg_mr_uncharged(sbuf);
            let mr_r = ctx_b.reg_mr_uncharged(rbuf);
            let cq = ctx_a.create_cq();
            let qp_a = ctx_a.create_qp(&cq, &cq);
            let cq_b = ctx_b.create_cq();
            let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
            verbs::QueuePair::connect_pair(&qp_a, &qp_b);
            let t0 = ctx.now();
            qp_a.post_send(
                ctx,
                SendWr::rdma_write(1, vec![mr_s.sge(0, len)], mr_r.addr(), mr_r.rkey()),
            )
            .unwrap();
            let _ = cq.wait(ctx);
            elapsed[i] = (ctx.now() - t0).as_nanos();
        }
        *out2.lock() = (elapsed[0], elapsed[1]);
    });
    r.sim.run_expect();
    let (phi_t, host_t) = *out.lock();
    assert!(
        phi_t as f64 / host_t as f64 > 4.0,
        "phi={phi_t} host={host_t}"
    );
}

#[test]
fn time_zero_never_regresses() {
    // Regression guard: posting at t=0 must produce start >= 0 and strictly
    // positive completion times.
    let mut r = rig(2);
    let fabric = r.fabric.clone();
    r.sim.spawn("p", move |ctx| {
        let cl = fabric.cluster().clone();
        let ctx_a = VerbsContext::open(fabric.clone(), NodeId(0), Domain::Host);
        let ctx_b = VerbsContext::open(fabric.clone(), NodeId(1), Domain::Host);
        let sbuf = cl.alloc_pages(mem(0, Domain::Host), 64).unwrap();
        let rbuf = cl.alloc_pages(mem(1, Domain::Host), 64).unwrap();
        let mr_s = ctx_a.reg_mr_uncharged(sbuf);
        let mr_r = ctx_b.reg_mr_uncharged(rbuf);
        let cq = ctx_a.create_cq();
        let qp_a = ctx_a.create_qp(&cq, &cq);
        let cq_b = ctx_b.create_cq();
        let qp_b = ctx_b.create_qp(&cq_b, &cq_b);
        verbs::QueuePair::connect_pair(&qp_a, &qp_b);
        qp_a.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr_s.sge(0, 64)], mr_r.addr(), mr_r.rkey()),
        )
        .unwrap();
        let _ = cq.wait(ctx);
        assert!(ctx.now() > SimTime::ZERO);
    });
    r.sim.run_expect();
}

#[test]
fn srq_pools_receives_across_qps_and_holds_backlog() {
    // Two senders feed one receiver through QPs attached to a single
    // shared receive queue. Pool entries are consumed in post order
    // regardless of which QP a Send arrives on; completions surface on
    // the arrival QP's recv CQ with the sender's (node, qpn); and a Send
    // arriving while the pool is dry is held RNR-style, delivered by the
    // next post_recv.
    let mut r = rig(3);
    let fabric = r.fabric.clone();
    type GotCell = Arc<Mutex<Vec<(u64, Vec<u8>, Option<(NodeId, verbs::QpNum)>)>>>;
    let got: GotCell = Arc::new(Mutex::new(Vec::new()));

    let f1 = fabric.clone();
    let got2 = got.clone();
    r.sim.spawn("receiver", move |ctx| {
        let cl = f1.cluster().clone();
        let vctx = VerbsContext::open(f1.clone(), NodeId(2), Domain::Host);
        let buf = cl.alloc_pages(mem(2, Domain::Host), 4 * 1024).unwrap();
        let mr = vctx.reg_mr(ctx, buf);
        let cq = vctx.create_cq();
        let srq = vctx.create_srq();
        let qp_a = vctx.create_qp_with_srq(&cq, &cq, &srq); // from node 0
        let qp_b = vctx.create_qp_with_srq(&cq, &cq, &srq); // from node 1
        qp_a.connect(NodeId(0), verbs::QpNum(3));
        qp_b.connect(NodeId(1), verbs::QpNum(4));
        // Two pool slots up front; the third message must be held until
        // the late post below.
        srq.post_recv(ctx, RecvWr::new(0, vec![mr.sge(0, 1024)]))
            .unwrap();
        srq.post_recv(ctx, RecvWr::new(1, vec![mr.sge(1024, 1024)]))
            .unwrap();
        for n in 0..3u64 {
            if n == 2 {
                // Pool ran dry; the third Send is backlogged. Posting
                // delivers it immediately.
                ctx.sleep(simcore::SimDuration::from_millis(1));
                srq.post_recv(ctx, RecvWr::new(2, vec![mr.sge(2048, 1024)]))
                    .unwrap();
            }
            let wc = cq.wait(ctx);
            assert_eq!(wc.status, WcStatus::Success);
            assert_eq!(wc.opcode, WcOpcode::Recv);
            let mut out = vec![0u8; wc.byte_len as usize];
            cl.read(mr.buffer(), wc.wr_id * 1024, &mut out);
            got2.lock().push((wc.wr_id, out, wc.src));
        }
    });

    for (node, delay_us) in [(0usize, 10u64), (1, 20)] {
        let f = fabric.clone();
        r.sim.spawn(format!("sender{node}"), move |ctx| {
            let cl = f.cluster().clone();
            let vctx = VerbsContext::open(f.clone(), NodeId(node), Domain::Host);
            let buf = cl.alloc_pages(mem(node, Domain::Host), 1024).unwrap();
            cl.write(&buf, 0, &vec![node as u8 + 1; 1024]);
            let mr = vctx.reg_mr(ctx, buf);
            let cq = vctx.create_cq();
            let qp = vctx.create_qp(&cq, &cq);
            qp.connect(NodeId(2), verbs::QpNum(node as u32 + 1));
            ctx.sleep(simcore::SimDuration::from_micros(delay_us));
            qp.post_send(ctx, SendWr::send(0, vec![mr.sge(0, 1024)]))
                .unwrap();
            if node == 0 {
                // Sender 0 also supplies the backlogged third message.
                ctx.sleep(simcore::SimDuration::from_micros(50));
                qp.post_send(ctx, SendWr::send(1, vec![mr.sge(0, 1024)]))
                    .unwrap();
            }
            let _ = cq.wait(ctx);
        });
    }
    r.sim.run_expect();
    let got = got.lock();
    assert_eq!(got.len(), 3);
    // Pool slots consumed in post order: 0 then 1 then the late 2.
    assert_eq!(
        got.iter().map(|(id, _, _)| *id).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    // First arrival is sender 0 (earlier delay) on qp_a, second sender 1
    // on qp_b, third the backlogged one from sender 0.
    assert_eq!(got[0].2.map(|(n, _)| n), Some(NodeId(0)));
    assert_eq!(got[0].1, vec![1u8; 1024]);
    assert_eq!(got[1].2.map(|(n, _)| n), Some(NodeId(1)));
    assert_eq!(got[1].1, vec![2u8; 1024]);
    assert_eq!(got[2].2.map(|(n, _)| n), Some(NodeId(0)));
    assert_eq!(got[2].1, vec![1u8; 1024]);
}
