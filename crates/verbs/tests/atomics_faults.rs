//! Tests for InfiniBand atomics (fetch-add, compare-and-swap) and the
//! fault-injection plan.

use std::sync::Arc;

use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::Simulation;
use verbs::{IbFabric, SendWr, VerbsContext, WcOpcode, WcStatus};

fn setup() -> (Simulation, Arc<IbFabric>) {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    (sim, IbFabric::new(cluster))
}

fn host(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Host,
    }
}

#[test]
fn fetch_add_returns_original_and_updates_remote() {
    let (mut sim, fabric) = setup();
    let f = fabric.clone();
    sim.spawn("p", move |ctx| {
        let cl = f.cluster().clone();
        let a = VerbsContext::open(f.clone(), NodeId(0), Domain::Host);
        let b = VerbsContext::open(f.clone(), NodeId(1), Domain::Host);
        let counter = cl.alloc_pages(host(1), 8).unwrap();
        cl.write(&counter, 0, &100u64.to_le_bytes());
        let mr_counter = b.reg_mr_uncharged(counter.clone());
        let result = cl.alloc_pages(host(0), 8).unwrap();
        let mr_result = a.reg_mr_uncharged(result.clone());
        let cq = a.create_cq();
        let qp = a.create_qp(&cq, &cq);
        let cqb = b.create_cq();
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qp, &qpb);

        for i in 0..3u64 {
            qp.post_send(
                ctx,
                SendWr::fetch_add(
                    i,
                    mr_result.sge(0, 8),
                    mr_counter.addr(),
                    mr_counter.rkey(),
                    5,
                ),
            )
            .unwrap();
            let wc = cq.wait(ctx);
            assert_eq!(wc.status, WcStatus::Success);
            assert_eq!(wc.opcode, WcOpcode::FetchAdd);
            let orig = u64::from_le_bytes(cl.read_vec(&result).try_into().unwrap());
            assert_eq!(orig, 100 + i * 5);
        }
        let final_v = u64::from_le_bytes(cl.read_vec(&counter).try_into().unwrap());
        assert_eq!(final_v, 115);
    });
    sim.run_expect();
}

#[test]
fn compare_swap_succeeds_and_fails_by_value() {
    let (mut sim, fabric) = setup();
    let f = fabric.clone();
    sim.spawn("p", move |ctx| {
        let cl = f.cluster().clone();
        let a = VerbsContext::open(f.clone(), NodeId(0), Domain::Host);
        let b = VerbsContext::open(f.clone(), NodeId(1), Domain::Host);
        let word = cl.alloc_pages(host(1), 8).unwrap();
        cl.write(&word, 0, &7u64.to_le_bytes());
        let mr_word = b.reg_mr_uncharged(word.clone());
        let result = cl.alloc_pages(host(0), 8).unwrap();
        let mr_result = a.reg_mr_uncharged(result.clone());
        let cq = a.create_cq();
        let qp = a.create_qp(&cq, &cq);
        let cqb = b.create_cq();
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qp, &qpb);

        // CAS(7 -> 42): succeeds, returns 7.
        qp.post_send(
            ctx,
            SendWr::compare_swap(
                1,
                mr_result.sge(0, 8),
                mr_word.addr(),
                mr_word.rkey(),
                7,
                42,
            ),
        )
        .unwrap();
        cq.wait(ctx);
        assert_eq!(
            u64::from_le_bytes(cl.read_vec(&result).try_into().unwrap()),
            7
        );
        assert_eq!(
            u64::from_le_bytes(cl.read_vec(&word).try_into().unwrap()),
            42
        );

        // CAS(7 -> 99): fails (word is 42), returns 42, word unchanged.
        qp.post_send(
            ctx,
            SendWr::compare_swap(
                2,
                mr_result.sge(0, 8),
                mr_word.addr(),
                mr_word.rkey(),
                7,
                99,
            ),
        )
        .unwrap();
        cq.wait(ctx);
        assert_eq!(
            u64::from_le_bytes(cl.read_vec(&result).try_into().unwrap()),
            42
        );
        assert_eq!(
            u64::from_le_bytes(cl.read_vec(&word).try_into().unwrap()),
            42
        );
    });
    sim.run_expect();
}

#[test]
fn atomics_pay_round_trip_latency() {
    let (mut sim, fabric) = setup();
    let f = fabric.clone();
    let times = Arc::new(Mutex::new((0u64, 0u64)));
    let t2 = times.clone();
    sim.spawn("p", move |ctx| {
        let cl = f.cluster().clone();
        let a = VerbsContext::open(f.clone(), NodeId(0), Domain::Host);
        let b = VerbsContext::open(f.clone(), NodeId(1), Domain::Host);
        let word = cl.alloc_pages(host(1), 8).unwrap();
        let mr_word = b.reg_mr_uncharged(word);
        let result = cl.alloc_pages(host(0), 8).unwrap();
        let mr_result = a.reg_mr_uncharged(result);
        let cq = a.create_cq();
        let qp = a.create_qp(&cq, &cq);
        let cqb = b.create_cq();
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qp, &qpb);

        let t0 = ctx.now();
        qp.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr_result.sge(0, 8)], mr_word.addr(), mr_word.rkey()),
        )
        .unwrap();
        cq.wait(ctx);
        let write_t = (ctx.now() - t0).as_nanos();

        let t1 = ctx.now();
        qp.post_send(
            ctx,
            SendWr::fetch_add(2, mr_result.sge(0, 8), mr_word.addr(), mr_word.rkey(), 1),
        )
        .unwrap();
        cq.wait(ctx);
        let atomic_t = (ctx.now() - t1).as_nanos();
        *t2.lock() = (write_t, atomic_t);
    });
    sim.run_expect();
    let (write_t, atomic_t) = *times.lock();
    let lat = ClusterConfig::paper().cost.ib_latency.as_nanos();
    assert_eq!(atomic_t - write_t, lat, "atomic pays one extra wire hop");
}

#[test]
fn injected_fault_fails_the_chosen_op_only() {
    let (mut sim, fabric) = setup();
    let f = fabric.clone();
    sim.spawn("p", move |ctx| {
        let cl = f.cluster().clone();
        let a = VerbsContext::open(f.clone(), NodeId(0), Domain::Host);
        let b = VerbsContext::open(f.clone(), NodeId(1), Domain::Host);
        let src = cl.alloc_pages(host(0), 4096).unwrap();
        cl.write(&src, 0, &[1u8; 4096]);
        let dst = cl.alloc_pages(host(1), 4096).unwrap();
        let mr_s = a.reg_mr_uncharged(src);
        let mr_d = b.reg_mr_uncharged(dst.clone());
        let cq = a.create_cq();
        let qp = a.create_qp(&cq, &cq);
        let cqb = b.create_cq();
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qp, &qpb);

        // Fail the SECOND op.
        f.inject_fault(1, WcStatus::RemoteAccessError);

        for i in 0..3u64 {
            qp.post_send(
                ctx,
                SendWr::rdma_write(i, vec![mr_s.sge(0, 4096)], mr_d.addr(), mr_d.rkey()),
            )
            .unwrap();
        }
        let mut statuses = Vec::new();
        for _ in 0..3 {
            let wc = cq.wait(ctx);
            statuses.push((wc.wr_id, wc.status));
        }
        statuses.sort_by_key(|s| s.0);
        assert_eq!(statuses[0].1, WcStatus::Success);
        assert_eq!(statuses[1].1, WcStatus::RemoteAccessError);
        assert_eq!(statuses[2].1, WcStatus::Success);
        // Data of successful ops arrived.
        assert_eq!(cl.read_vec(&dst), vec![1u8; 4096]);
    });
    sim.run_expect();
}

#[test]
fn faulted_op_moves_no_data() {
    let (mut sim, fabric) = setup();
    let f = fabric.clone();
    sim.spawn("p", move |ctx| {
        let cl = f.cluster().clone();
        let a = VerbsContext::open(f.clone(), NodeId(0), Domain::Host);
        let b = VerbsContext::open(f.clone(), NodeId(1), Domain::Host);
        let src = cl.alloc_pages(host(0), 64).unwrap();
        cl.write(&src, 0, &[9u8; 64]);
        let dst = cl.alloc_pages(host(1), 64).unwrap();
        let mr_s = a.reg_mr_uncharged(src);
        let mr_d = b.reg_mr_uncharged(dst.clone());
        let cq = a.create_cq();
        let qp = a.create_qp(&cq, &cq);
        let cqb = b.create_cq();
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qp, &qpb);

        f.inject_fault(0, WcStatus::RemoteAccessError);
        qp.post_send(
            ctx,
            SendWr::rdma_write(1, vec![mr_s.sge(0, 64)], mr_d.addr(), mr_d.rkey()),
        )
        .unwrap();
        let wc = cq.wait(ctx);
        assert_eq!(wc.status, WcStatus::RemoteAccessError);
        assert_eq!(cl.read_vec(&dst), vec![0u8; 64], "no bytes may land");
    });
    sim.run_expect();
}
