//! Seeded random-traffic workload generator: reproducible message
//! patterns for soak-testing an MPI implementation (sizes spanning all
//! protocol regimes, random peers and tags, content checksums).
//!
//! Every pattern is derived from a seed, so a failing soak run is exactly
//! replayable.

use dcfa_mpi::{Communicator, Src, TagSel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use simcore::Ctx;

/// One scripted message of a traffic pattern.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrafficMsg {
    pub from: usize,
    pub to: usize,
    pub tag: u32,
    pub size: u64,
    /// Content byte (payload is `size` copies — cheap to verify).
    pub salt: u8,
}

/// A reproducible random traffic pattern over `n` ranks.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficPattern {
    pub seed: u64,
    pub msgs: Vec<TrafficMsg>,
}

impl TrafficPattern {
    /// Generate `count` messages over `n` ranks from `seed`. Sizes are
    /// drawn log-uniformly over 4 B – `max_size` so every protocol regime
    /// (eager / rendezvous / offload) is exercised.
    pub fn generate(seed: u64, n: usize, count: usize, max_size: u64) -> TrafficPattern {
        assert!(n >= 2, "traffic needs at least two ranks");
        let mut rng = StdRng::seed_from_u64(seed);
        let max_pow = 64 - max_size.max(4).leading_zeros() as u64 - 1;
        let msgs = (0..count)
            .map(|_| {
                let from = rng.random_range(0..n);
                let mut to = rng.random_range(0..n - 1);
                if to >= from {
                    to += 1;
                }
                let pow = rng.random_range(2..=max_pow);
                let size = (1u64 << pow).min(max_size);
                TrafficMsg {
                    from,
                    to,
                    tag: rng.random_range(0..4),
                    size,
                    salt: rng.random(),
                }
            })
            .collect();
        TrafficPattern { seed, msgs }
    }

    /// Total bytes this pattern moves.
    pub fn total_bytes(&self) -> u64 {
        self.msgs.iter().map(|m| m.size).sum()
    }

    /// Messages sent by `rank`, in script order.
    pub fn sends_of(&self, rank: usize) -> impl Iterator<Item = &TrafficMsg> {
        self.msgs.iter().filter(move |m| m.from == rank)
    }

    /// Messages received by `rank`, in script order.
    pub fn recvs_of(&self, rank: usize) -> impl Iterator<Item = &TrafficMsg> {
        self.msgs.iter().filter(move |m| m.to == rank)
    }
}

/// Execute one rank's part of the pattern: post all receives, issue all
/// sends, wait for everything, verify every payload byte-for-byte.
/// Returns the number of messages this rank verified.
pub fn run_rank<C: Communicator>(ctx: &mut Ctx, comm: &mut C, pattern: &TrafficPattern) -> usize {
    let me = comm.rank();
    let mut reqs = Vec::new();
    let mut rbufs = Vec::new();
    // Receives first (message order per (src, tag) follows script order
    // because sends from each source are issued in script order too).
    for m in pattern.recvs_of(me) {
        let buf = comm.cluster().alloc_pages(comm.mem(), m.size).unwrap();
        reqs.push(
            comm.irecv(ctx, &buf, Src::Rank(m.from), TagSel::Tag(m.tag))
                .expect("irecv"),
        );
        rbufs.push((*m, buf));
    }
    let mut sbufs = Vec::new();
    for m in pattern.sends_of(me) {
        let buf = comm.cluster().alloc_pages(comm.mem(), m.size).unwrap();
        comm.cluster()
            .write(&buf, 0, &vec![m.salt; m.size as usize]);
        reqs.push(comm.isend(ctx, &buf, m.to, m.tag).expect("isend"));
        sbufs.push(buf);
    }
    comm.waitall(ctx, &reqs).expect("waitall");
    let mut verified = 0;
    for (m, buf) in &rbufs {
        let got = comm.cluster().read_vec(buf);
        assert_eq!(got.len() as u64, m.size);
        assert!(
            got.iter().all(|&b| b == m.salt),
            "payload corrupted: {m:?} (seed {})",
            pattern.seed
        );
        verified += 1;
        comm.cluster().free(buf);
    }
    for buf in &sbufs {
        comm.cluster().free(buf);
    }
    verified
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TrafficPattern::generate(42, 4, 50, 1 << 20);
        let b = TrafficPattern::generate(42, 4, 50, 1 << 20);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = TrafficPattern::generate(43, 4, 50, 1 << 20);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn no_self_sends_and_sizes_in_range() {
        let p = TrafficPattern::generate(7, 3, 200, 256 << 10);
        for m in &p.msgs {
            assert_ne!(m.from, m.to);
            assert!(m.from < 3 && m.to < 3);
            assert!(m.size >= 4 && m.size <= 256 << 10);
            assert!(m.tag < 4);
        }
        assert!(p.total_bytes() > 0);
    }

    #[test]
    fn send_recv_scripts_partition_the_pattern() {
        let p = TrafficPattern::generate(1, 4, 100, 1 << 16);
        let sends: usize = (0..4).map(|r| p.sends_of(r).count()).sum();
        let recvs: usize = (0..4).map(|r| p.recvs_of(r).count()).sum();
        assert_eq!(sends, 100);
        assert_eq!(recvs, 100);
    }
}
