//! Ping-pong microbenchmarks: the raw RDMA direction study (Fig. 5) and
//! the MPI round-trip / bandwidth sweeps (Figs. 7, 8, 9).

use std::sync::Arc;

use baselines::IntelPhiWorld;
use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use serde::Serialize;
use simcore::Simulation;
use verbs::IbFabric;

/// RDMA-write direction pairs of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    HostToHost,
    HostToPhi,
    PhiToHost,
    PhiToPhi,
}

impl Direction {
    pub const ALL: [Direction; 4] = [
        Direction::HostToPhi,
        Direction::PhiToHost,
        Direction::PhiToPhi,
        Direction::HostToHost,
    ];

    pub fn domains(self) -> (Domain, Domain) {
        match self {
            Direction::HostToHost => (Domain::Host, Domain::Host),
            Direction::HostToPhi => (Domain::Host, Domain::Phi),
            Direction::PhiToHost => (Domain::Phi, Domain::Host),
            Direction::PhiToPhi => (Domain::Phi, Domain::Phi),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Direction::HostToHost => "host -> host",
            Direction::HostToPhi => "host -> phi",
            Direction::PhiToHost => "phi -> host",
            Direction::PhiToPhi => "phi -> phi",
        }
    }
}

/// One ping-pong measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PingPong {
    pub size: u64,
    /// Mean round-trip (blocking) or exchange-iteration (non-blocking)
    /// time in microseconds.
    pub rtt_us: f64,
    /// Achieved bandwidth in GB/s (message bytes over one-way time).
    pub bw_gbs: f64,
}

/// Fig. 5: raw InfiniBand RDMA-write ping-pong between two nodes with the
/// four buffer-placement combinations.
pub fn rdma_direction(ccfg: &ClusterConfig, dir: Direction, size: u64, iters: u32) -> PingPong {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = IbFabric::new(cluster.clone());
    let out = Arc::new(Mutex::new(PingPong {
        size,
        rtt_us: 0.0,
        bw_gbs: 0.0,
    }));
    let out2 = out.clone();
    let (sd, dd) = dir.domains();
    sim.spawn("rdma-pingpong", move |ctx| {
        let cl = ib.cluster().clone();
        let a = verbs::VerbsContext::open(ib.clone(), NodeId(0), sd);
        let b = verbs::VerbsContext::open(ib.clone(), NodeId(1), dd);
        let abuf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(0),
                    domain: sd,
                },
                size,
            )
            .unwrap();
        let bbuf = cl
            .alloc_pages(
                MemRef {
                    node: NodeId(1),
                    domain: dd,
                },
                size,
            )
            .unwrap();
        let amr = a.reg_mr_uncharged(abuf);
        let bmr = b.reg_mr_uncharged(bbuf);
        let cqa = a.create_cq();
        let cqb = b.create_cq();
        let qpa = a.create_qp(&cqa, &cqa);
        let qpb = b.create_qp(&cqb, &cqb);
        verbs::QueuePair::connect_pair(&qpa, &qpb);
        let t0 = ctx.now();
        for i in 0..iters {
            // Ping: full-size a -> b write; pong: 8-byte ack b -> a, so
            // the measurement reflects the *forward* direction (this is
            // how Fig. 5 can show host->phi at host->host speed even
            // though phi->host is slow). A single driver process plays
            // both sides (raw verbs, no MPI semantics involved).
            qpa.post_send(
                ctx,
                verbs::SendWr::rdma_write(i as u64, vec![amr.sge(0, size)], bmr.addr(), bmr.rkey()),
            )
            .unwrap();
            cqa.wait(ctx);
            let ack = size.min(8);
            qpb.post_send(
                ctx,
                verbs::SendWr::rdma_write(i as u64, vec![bmr.sge(0, ack)], amr.addr(), amr.rkey()),
            )
            .unwrap();
            cqb.wait(ctx);
        }
        let rtt = (ctx.now() - t0).as_micros_f64() / iters as f64;
        *out2.lock() = PingPong {
            size,
            rtt_us: rtt,
            bw_gbs: size as f64 / (rtt * 1e-6) / 1e9,
        };
    });
    sim.run_expect();
    let r = *out.lock();
    r
}

/// Which MPI library plays the ping-pong.
#[derive(Debug, Clone)]
pub enum MpiRuntime {
    /// DCFA-MPI (or host YAMPII) with this configuration.
    Dcfa(MpiConfig),
    /// The Intel-MPI-on-Phi proxy-mode model.
    IntelPhi,
}

/// Blocking MPI ping-pong (Fig. 9 methodology: bandwidth from the round
/// trip latency of blocking communication, 2 ranks on 2 nodes).
pub fn mpi_pingpong_blocking(
    ccfg: &ClusterConfig,
    rt: &MpiRuntime,
    size: u64,
    iters: u32,
) -> PingPong {
    run_pingpong(ccfg, rt, size, iters, true)
}

/// Non-blocking exchange (Figs. 7/8 methodology: `MPI_Isend`+`MPI_Irecv`
/// both ways per iteration).
pub fn mpi_pingpong_nonblocking(
    ccfg: &ClusterConfig,
    rt: &MpiRuntime,
    size: u64,
    iters: u32,
) -> PingPong {
    run_pingpong(ccfg, rt, size, iters, false)
}

fn run_pingpong(
    ccfg: &ClusterConfig,
    rt: &MpiRuntime,
    size: u64,
    iters: u32,
    blocking: bool,
) -> PingPong {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let warmup = 4u32;

    match rt {
        MpiRuntime::Dcfa(cfg) => {
            let ib = IbFabric::new(cluster.clone());
            let scif = ScifFabric::new(cluster.clone());
            launch(
                &sim,
                &ib,
                &scif,
                cfg.clone(),
                2,
                LaunchOpts::default(),
                move |ctx, comm| {
                    let us = body(ctx, comm, size, iters, warmup, blocking);
                    if comm.rank() == 0 {
                        *out2.lock() = us;
                    }
                },
            );
        }
        MpiRuntime::IntelPhi => {
            let world = IntelPhiWorld::new(cluster.clone(), 2);
            world.launch(&sim, move |ctx, comm| {
                let us = body(ctx, comm, size, iters, warmup, blocking);
                if comm.rank() == 0 {
                    *out2.lock() = us;
                }
            });
        }
    }
    sim.run_expect();
    let rtt_us = *out.lock();
    let one_way = rtt_us / if blocking { 2.0 } else { 1.0 };
    PingPong {
        size,
        rtt_us,
        bw_gbs: size as f64 / (one_way * 1e-6) / 1e9,
    }
}

/// The measured loop, shared by both runtimes via the `Communicator`
/// abstraction. Returns the mean per-iteration time in microseconds
/// (only meaningful on rank 0).
fn body<C: Communicator>(
    ctx: &mut simcore::Ctx,
    comm: &mut C,
    size: u64,
    iters: u32,
    warmup: u32,
    blocking: bool,
) -> f64 {
    let sbuf = comm.cluster().alloc_pages(comm.mem(), size).unwrap();
    let rbuf = comm.cluster().alloc_pages(comm.mem(), size).unwrap();
    let me = comm.rank();
    let peer = 1 - me;
    let mut t0 = ctx.now();
    for i in 0..(warmup + iters) {
        if i == warmup {
            t0 = ctx.now();
        }
        if blocking {
            if me == 0 {
                comm.send(ctx, &sbuf, peer, 1).unwrap();
                comm.recv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(2))
                    .unwrap();
            } else {
                comm.recv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(1))
                    .unwrap();
                comm.send(ctx, &sbuf, peer, 2).unwrap();
            }
        } else {
            let rr = comm
                .irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(3))
                .unwrap();
            let sr = comm.isend(ctx, &sbuf, peer, 3).unwrap();
            comm.wait(ctx, sr).unwrap();
            comm.wait(ctx, rr).unwrap();
        }
    }
    (ctx.now() - t0).as_micros_f64() / iters as f64
}
