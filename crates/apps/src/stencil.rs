//! The five-point stencil application of the paper's third experiment
//! (Table III, Figs. 11 and 12): a Jacobi sweep over an `n × n` grid of
//! f64, row-partitioned across MPI processes, with OpenMP-modelled
//! parallel compute inside each rank and halo-row exchange between
//! neighbours (10 KB per boundary at n = 1282).
//!
//! The arithmetic is executed for real on the simulated memory contents,
//! so all three runtimes (DCFA-MPI, Intel-MPI-on-Phi, Xeon+offload) must
//! produce bit-identical checksums — a strong end-to-end correctness
//! check on every communication path.

use std::sync::Arc;

use baselines::{IntelPhiWorld, OffloadRuntime};
use dcfa_mpi::collectives;
use dcfa_mpi::{launch, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp, Src, TagSel};
use fabric::{Buffer, Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use serde::Serialize;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

use crate::omp::OmpModel;

/// Problem parameters. The paper uses n = 1282, 100 iterations, procs ∈
/// {1,2,4,8}, threads up to 56.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StencilParams {
    pub n: usize,
    pub iters: u32,
    pub procs: usize,
    pub threads: u32,
}

impl StencilParams {
    /// The paper's configuration (Table III): 1282² points ≈ 12 MB of f64.
    pub fn paper(procs: usize, threads: u32) -> Self {
        StencilParams {
            n: 1282,
            iters: 100,
            procs,
            threads,
        }
    }

    /// Bytes of one halo row (Table III: ~10 KB at n = 1282).
    pub fn halo_bytes(&self) -> u64 {
        (self.n * 8) as u64
    }

    /// Total grid bytes (Table III: ~12 MB at n = 1282).
    pub fn grid_bytes(&self) -> u64 {
        (self.n * self.n * 8) as u64
    }
}

/// One measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StencilResult {
    pub procs: usize,
    pub threads: u32,
    /// Mean per-iteration wall (virtual) time, microseconds.
    pub iter_us: f64,
    /// Whole-run time, milliseconds.
    pub total_ms: f64,
    /// Global interior checksum after the last iteration.
    pub checksum: f64,
}

/// The rank-local grid state and real arithmetic.
struct LocalGrid {
    n: usize,
    /// Owned rows.
    lr: usize,
    /// Global index of the first owned row.
    row0: usize,
    /// (lr + 2) × n, halo rows at local index 0 and lr+1.
    cur: Vec<f64>,
    next: Vec<f64>,
}

fn init_value(i: usize, j: usize) -> f64 {
    ((i * 7919 + j * 104_729) % 10_007) as f64 / 10_007.0
}

impl LocalGrid {
    fn new(p: &StencilParams, rank: usize) -> LocalGrid {
        let base = p.n / p.procs;
        let rem = p.n % p.procs;
        let lr = base + usize::from(rank < rem);
        let row0 = rank * base + rank.min(rem);
        let mut cur = vec![0.0; (lr + 2) * p.n];
        for li in 1..=lr {
            let gi = row0 + li - 1;
            for j in 0..p.n {
                cur[li * p.n + j] = init_value(gi, j);
            }
        }
        let next = cur.clone();
        LocalGrid {
            n: p.n,
            lr,
            row0,
            cur,
            next,
        }
    }

    fn points(&self) -> u64 {
        (self.lr * self.n) as u64
    }

    /// Serialize a local row (1..=lr are owned; 0 and lr+1 are halos).
    fn pack_row(&self, li: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n * 8);
        for j in 0..self.n {
            out.extend_from_slice(&self.cur[li * self.n + j].to_le_bytes());
        }
        out
    }

    fn unpack_row(&mut self, li: usize, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.n * 8);
        for j in 0..self.n {
            self.cur[li * self.n + j] =
                f64::from_le_bytes(bytes[j * 8..(j + 1) * 8].try_into().unwrap());
        }
    }

    /// One Jacobi sweep over the owned rows (real arithmetic).
    fn step(&mut self, total_rows: usize) {
        let n = self.n;
        for li in 1..=self.lr {
            let gi = self.row0 + li - 1;
            for j in 0..n {
                let idx = li * n + j;
                self.next[idx] = if gi == 0 || gi == total_rows - 1 || j == 0 || j == n - 1 {
                    self.cur[idx] // fixed global boundary
                } else {
                    0.2 * (self.cur[idx]
                        + self.cur[idx - n]
                        + self.cur[idx + n]
                        + self.cur[idx - 1]
                        + self.cur[idx + 1])
                };
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    fn checksum(&self) -> f64 {
        let mut s = 0.0;
        for li in 1..=self.lr {
            for j in 0..self.n {
                s += self.cur[li * self.n + j];
            }
        }
        s
    }
}

struct HaloBufs {
    send_up: Buffer,
    send_down: Buffer,
    recv_up: Buffer,
    recv_down: Buffer,
}

fn halo_bufs<C: Communicator>(comm: &C, p: &StencilParams) -> HaloBufs {
    let cl = comm.cluster();
    let mem = comm.mem();
    let hb = p.halo_bytes();
    HaloBufs {
        send_up: cl.alloc_pages(mem, hb).unwrap(),
        send_down: cl.alloc_pages(mem, hb).unwrap(),
        recv_up: cl.alloc_pages(mem, hb).unwrap(),
        recv_down: cl.alloc_pages(mem, hb).unwrap(),
    }
}

/// Exchange halos through simulated buffers: pack → MPI → unpack. Real
/// bytes travel, so numerics stay identical across runtimes.
fn exchange<C: Communicator>(
    ctx: &mut Ctx,
    comm: &mut C,
    p: &StencilParams,
    grid: &mut LocalGrid,
    bufs: &HaloBufs,
) {
    let me = comm.rank();
    let up = me.checked_sub(1);
    let down = (me + 1 < p.procs).then_some(me + 1);
    let cl = comm.cluster().clone();
    let mut reqs = Vec::with_capacity(4);
    if let Some(u) = up {
        cl.write(&bufs.send_up, 0, &grid.pack_row(1));
        reqs.push(
            comm.irecv(ctx, &bufs.recv_up, Src::Rank(u), TagSel::Tag(11))
                .unwrap(),
        );
        reqs.push(comm.isend(ctx, &bufs.send_up, u, 12).unwrap());
    }
    if let Some(d) = down {
        cl.write(&bufs.send_down, 0, &grid.pack_row(grid.lr));
        reqs.push(
            comm.irecv(ctx, &bufs.recv_down, Src::Rank(d), TagSel::Tag(12))
                .unwrap(),
        );
        reqs.push(comm.isend(ctx, &bufs.send_down, d, 11).unwrap());
    }
    comm.waitall(ctx, &reqs).unwrap();
    if up.is_some() {
        let lr0 = cl.read_vec(&bufs.recv_up);
        grid.unpack_row(0, &lr0);
    }
    if down.is_some() {
        let lrn = cl.read_vec(&bufs.recv_down);
        let last = grid.lr + 1;
        grid.unpack_row(last, &lrn);
    }
}

/// Shared measured loop for the two on-card runtimes (DCFA-MPI and
/// Intel-MPI-on-Phi): exchange, then an OpenMP-modelled compute region.
fn stencil_body<C: Communicator>(
    ctx: &mut Ctx,
    comm: &mut C,
    p: StencilParams,
    omp: &OmpModel,
) -> (f64, f64) {
    let mut grid = LocalGrid::new(&p, comm.rank());
    let bufs = halo_bufs(comm, &p);
    collectives::barrier(comm, ctx).unwrap();
    let t0 = ctx.now();
    for _ in 0..p.iters {
        if p.procs > 1 {
            exchange(ctx, comm, &p, &mut grid, &bufs);
        }
        ctx.sleep(omp.region_time(grid.points()));
        grid.step(p.n);
    }
    collectives::barrier(comm, ctx).unwrap();
    let total = ctx.now() - t0;
    // Global checksum (also validates the reduction path).
    let csbuf = comm.cluster().alloc_pages(comm.mem(), 8).unwrap();
    comm.cluster()
        .write(&csbuf, 0, &grid.checksum().to_le_bytes());
    collectives::allreduce(comm, ctx, &csbuf, Datatype::F64, ReduceOp::Sum).unwrap();
    let cs = f64::from_le_bytes(comm.cluster().read_vec(&csbuf).try_into().unwrap());
    (total.as_micros_f64(), cs)
}

/// DCFA-MPI (or, with `MpiConfig::host()`, plain host MPI) stencil.
pub fn stencil_dcfa(ccfg: &ClusterConfig, cfg: MpiConfig, p: StencilParams) -> StencilResult {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let omp = OmpModel::phi(&cluster.config().cost, p.threads);
    launch(
        &sim,
        &ib,
        &scif,
        cfg,
        p.procs,
        LaunchOpts::default(),
        move |ctx, comm| {
            let (us, cs) = stencil_body(ctx, comm, p, &omp);
            if comm.rank() == 0 {
                *out2.lock() = (us, cs);
            }
        },
    );
    sim.run_expect();
    let (total_us, checksum) = *out.lock();
    StencilResult {
        procs: p.procs,
        threads: p.threads,
        iter_us: total_us / p.iters as f64,
        total_ms: total_us / 1e3,
        checksum,
    }
}

/// Intel-MPI-on-Phi stencil (same compute model; proxy-path comm).
pub fn stencil_intel_phi(ccfg: &ClusterConfig, p: StencilParams) -> StencilResult {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let world = IntelPhiWorld::new(cluster.clone(), p.procs);
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let omp = OmpModel::phi(&cluster.config().cost, p.threads);
    world.launch(&sim, move |ctx, comm| {
        let (us, cs) = stencil_body(ctx, comm, p, &omp);
        if comm.rank() == 0 {
            *out2.lock() = (us, cs);
        }
    });
    sim.run_expect();
    let (total_us, checksum) = *out.lock();
    StencilResult {
        procs: p.procs,
        threads: p.threads,
        iter_us: total_us / p.iters as f64,
        total_ms: total_us / 1e3,
        checksum,
    }
}

/// Intel-MPI-on-Xeon + offload stencil: host MPI for the halo exchange;
/// every iteration pays the offload choreography of Table III — copy the
/// boundary rows out of the card, exchange on the host, copy the halos
/// back in, and dispatch the compute region to the card.
pub fn stencil_offload(ccfg: &ClusterConfig, p: StencilParams) -> StencilResult {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let omp = OmpModel::phi(&cluster.config().cost, p.threads);
    let cl = cluster.clone();
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::host(),
        p.procs,
        LaunchOpts::default(),
        move |ctx, comm| {
            let node = fabric::NodeId(comm.rank() % cl.num_nodes());
            let rt = OffloadRuntime::new(ctx, cl.clone(), node);
            let mut grid = LocalGrid::new(&p, comm.rank());
            let bufs = halo_bufs(comm, &p);
            // Persistent card-side halo staging (the rest of the grid never
            // leaves the card — paper: "all the other areas can persistently
            // be kept on the Xeon Phi co-processors"). Both boundary rows are
            // bundled into ONE offload transfer per direction, matching Table
            // III's "Copy In 10 KB + Copy Out 10 KB" per stage.
            let hb = p.halo_bytes();
            let card_stage = rt.alloc_phi(2 * hb).unwrap();
            let host_stage = comm.alloc(2 * hb).unwrap();
            collectives::barrier(comm, ctx).unwrap();
            let t0 = ctx.now();
            for _ in 0..p.iters {
                if p.procs > 1 {
                    let me = comm.rank();
                    let has_up = me > 0;
                    let has_down = me + 1 < p.procs;
                    // Copy Out: both boundary rows card → host in one bundled
                    // offload transfer (Table III).
                    let rows = u64::from(has_up) + u64::from(has_down);
                    let mut off = 0;
                    if has_up {
                        cl.write(&card_stage, 0, &grid.pack_row(1));
                        off += hb;
                    }
                    if has_down {
                        cl.write(&card_stage, off, &grid.pack_row(grid.lr));
                    }
                    rt.copy_out(
                        ctx,
                        &card_stage.slice(0, rows * hb),
                        &host_stage.slice(0, rows * hb),
                    );
                    // Scatter the staged rows into the MPI send buffers (host
                    // memcpy; negligible next to the PCIe hop).
                    let mut off = 0;
                    if has_up {
                        let row = cl.read_vec(&host_stage.slice(off, hb));
                        cl.write(&bufs.send_up, 0, &row);
                        off += hb;
                    }
                    if has_down {
                        let row = cl.read_vec(&host_stage.slice(off, hb));
                        cl.write(&bufs.send_down, 0, &row);
                    }
                    // Host MPI exchange.
                    let mut reqs = Vec::new();
                    if has_up {
                        reqs.push(
                            comm.irecv(ctx, &bufs.recv_up, Src::Rank(me - 1), TagSel::Tag(11))
                                .unwrap(),
                        );
                        reqs.push(comm.isend(ctx, &bufs.send_up, me - 1, 12).unwrap());
                    }
                    if has_down {
                        reqs.push(
                            comm.irecv(ctx, &bufs.recv_down, Src::Rank(me + 1), TagSel::Tag(12))
                                .unwrap(),
                        );
                        reqs.push(comm.isend(ctx, &bufs.send_down, me + 1, 11).unwrap());
                    }
                    comm.waitall(ctx, &reqs).unwrap();
                    // Copy In: both received halos host → card in one bundled
                    // transfer.
                    let mut off = 0;
                    if has_up {
                        let row = cl.read_vec(&bufs.recv_up);
                        cl.write(&host_stage, 0, &row);
                        off += hb;
                    }
                    if has_down {
                        let row = cl.read_vec(&bufs.recv_down);
                        cl.write(&host_stage, off, &row);
                    }
                    rt.copy_in(
                        ctx,
                        &host_stage.slice(0, rows * hb),
                        &card_stage.slice(0, rows * hb),
                    );
                    let mut off = 0;
                    if has_up {
                        let row = cl.read_vec(&card_stage.slice(off, hb));
                        grid.unpack_row(0, &row);
                        off += hb;
                    }
                    if has_down {
                        let row = cl.read_vec(&card_stage.slice(off, hb));
                        let last = grid.lr + 1;
                        grid.unpack_row(last, &row);
                    }
                }
                // Compute region dispatched to the card.
                let kernel = omp.region_time(grid.points());
                rt.offload_region(ctx, kernel, |_cl| grid.step(p.n));
            }
            collectives::barrier(comm, ctx).unwrap();
            let total = ctx.now() - t0;
            let csbuf = comm.cluster().alloc_pages(comm.mem(), 8).unwrap();
            comm.cluster()
                .write(&csbuf, 0, &grid.checksum().to_le_bytes());
            collectives::allreduce(comm, ctx, &csbuf, Datatype::F64, ReduceOp::Sum).unwrap();
            let cs = f64::from_le_bytes(comm.cluster().read_vec(&csbuf).try_into().unwrap());
            if comm.rank() == 0 {
                *out2.lock() = (total.as_micros_f64(), cs);
            }
        },
    );
    sim.run_expect();
    let (total_us, checksum) = *out.lock();
    StencilResult {
        procs: p.procs,
        threads: p.threads,
        iter_us: total_us / p.iters as f64,
        total_ms: total_us / 1e3,
        checksum,
    }
}

/// Serial reference: 1 process, 1 thread, no MPI — the Fig. 12 baseline.
pub fn stencil_serial(ccfg: &ClusterConfig, n: usize, iters: u32) -> StencilResult {
    stencil_dcfa(
        ccfg,
        MpiConfig::dcfa(),
        StencilParams {
            n,
            iters,
            procs: 1,
            threads: 1,
        },
    )
}
