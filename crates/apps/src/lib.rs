//! # apps — the paper's workloads, generic over the MPI runtime
//!
//! * [`pingpong`] — raw RDMA direction study (Fig. 5) and MPI round-trip /
//!   bandwidth sweeps (Figs. 7, 8, 9).
//! * [`commonly`] — the communication-only application (Table II,
//!   Fig. 10).
//! * [`stencil`] — the five-point stencil with MPI + OpenMP-model
//!   parallelization (Table III, Figs. 11, 12), computing real arithmetic
//!   on simulated memory so all runtimes must agree bit-for-bit.
//! * [`omp`] — the OpenMP fork/join compute model.
//!
//! Every experiment entry point builds its own fresh [`simcore::Simulation`]
//! and returns plain serializable data, so sweeps are deterministic and
//! embarrassingly parallel at the harness level.

pub mod commonly;
pub mod omp;
pub mod pingpong;
pub mod stencil;
pub mod traffic;

pub use commonly::{commonly_dcfa, commonly_offload, CommOnly};
pub use omp::OmpModel;
pub use pingpong::{
    mpi_pingpong_blocking, mpi_pingpong_nonblocking, rdma_direction, Direction, MpiRuntime,
    PingPong,
};
pub use stencil::{
    stencil_dcfa, stencil_intel_phi, stencil_offload, stencil_serial, StencilParams, StencilResult,
};
pub use traffic::{run_rank as run_traffic_rank, TrafficMsg, TrafficPattern};
