//! OpenMP-style fork/join compute model for the Xeon Phi.
//!
//! Time for one parallel region over `points` grid updates with `t`
//! threads:
//!
//! ```text
//! T(points, t) = fork_join + points * point_time / S(t)
//! S(t) = t / (1 + alpha * (t - 1))        (thread-scaling friction)
//! ```
//!
//! `alpha` captures the per-thread coordination/memory-bandwidth friction
//! that keeps a 56-thread KNC region well short of 56x; it is calibrated
//! so the Fig. 12 speed-up envelope lands near the paper's 117x at
//! 8 procs × 56 threads.

use fabric::CostModel;
use simcore::SimDuration;

/// Per-card compute model.
#[derive(Debug, Clone)]
pub struct OmpModel {
    /// Threads in the parallel region.
    pub threads: u32,
    /// Time for one point update on a single thread.
    pub point_time: SimDuration,
    /// Scaling friction (see module docs).
    pub alpha: f64,
    /// Fork/join overhead per region.
    pub fork_join: SimDuration,
}

impl OmpModel {
    /// Model for a Phi-resident region with `threads` threads.
    pub fn phi(cost: &CostModel, threads: u32) -> Self {
        OmpModel {
            threads: threads.max(1),
            point_time: cost.phi_point_update,
            alpha: cost.omp_alpha,
            fork_join: cost.omp_fork_join,
        }
    }

    /// Model for a host (Xeon) region.
    pub fn host(cost: &CostModel, threads: u32) -> Self {
        OmpModel {
            threads: threads.max(1),
            point_time: cost.host_point_update,
            alpha: cost.omp_alpha,
            fork_join: cost.omp_fork_join,
        }
    }

    /// Effective parallel speed-up of `t` threads.
    pub fn speedup(&self) -> f64 {
        let t = self.threads as f64;
        t / (1.0 + self.alpha * (t - 1.0))
    }

    /// Virtual time for one parallel region over `points` updates.
    pub fn region_time(&self, points: u64) -> SimDuration {
        if points == 0 {
            return SimDuration::ZERO;
        }
        let serial = self.point_time * points;
        let base = if self.threads == 1 {
            // No fork/join cost without a parallel region.
            return serial;
        } else {
            serial * (1.0 / self.speedup())
        };
        self.fork_join + base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(threads: u32) -> OmpModel {
        OmpModel::phi(&CostModel::paper(), threads)
    }

    #[test]
    fn single_thread_is_serial() {
        let m = model(1);
        assert_eq!(m.region_time(1000), m.point_time * 1000);
        assert!((m.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_is_monotone_but_sublinear() {
        let points = 1_000_000;
        let mut prev = model(1).region_time(points);
        for t in [2u32, 4, 8, 16, 28, 56] {
            let cur = model(t).region_time(points);
            assert!(cur < prev, "t={t} should be faster");
            // Sublinear: speedup below t.
            let m = model(t);
            assert!(m.speedup() < t as f64);
            assert!(m.speedup() > t as f64 * 0.3, "not absurdly bad at t={t}");
            prev = cur;
        }
    }

    #[test]
    fn zero_points_is_free() {
        assert_eq!(model(56).region_time(0), SimDuration::ZERO);
    }

    #[test]
    fn host_point_update_faster_than_phi_per_thread() {
        let cost = CostModel::paper();
        assert!(
            OmpModel::host(&cost, 1).region_time(1000) < OmpModel::phi(&cost, 1).region_time(1000)
        );
    }
}
