//! The communication-only application of the paper's second experiment
//! (Table II, Fig. 10): two MPI processes on different nodes exchange `X`
//! bytes per iteration with `MPI_Isend`/`MPI_Irecv`.
//!
//! * **DCFA-MPI**: computing data stays in Phi memory; the iteration is
//!   just the inter-node exchange.
//! * **Intel MPI on Xeon + offload**: ranks on the hosts; per iteration
//!   the data is copied out of the card before the exchange and the
//!   received data copied back in (Table II: Copy In X + Copy Out X on
//!   top of Send X + Receive X), with the paper's optimizations applied —
//!   persistent page-aligned buffers, hoisted offload init, and double
//!   buffering that overlaps the copy-in with the next iteration.

use std::sync::Arc;

use baselines::OffloadRuntime;
use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use serde::Serialize;
use simcore::Simulation;
use verbs::IbFabric;

/// One data point of Fig. 10.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommOnly {
    pub size: u64,
    /// Mean per-iteration time in microseconds.
    pub iter_us: f64,
}

/// DCFA-MPI variant: 2 Phi ranks, exchange X per iteration.
pub fn commonly_dcfa(ccfg: &ClusterConfig, cfg: MpiConfig, x: u64, iters: u32) -> CommOnly {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    launch(
        &sim,
        &ib,
        &scif,
        cfg,
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let sbuf = comm.alloc(x).unwrap();
            let rbuf = comm.alloc(x).unwrap();
            let peer = 1 - comm.rank();
            let warmup = 3u32;
            let mut t0 = ctx.now();
            for i in 0..(warmup + iters) {
                if i == warmup {
                    t0 = ctx.now();
                }
                let rr = comm
                    .irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(1))
                    .unwrap();
                let sr = comm.isend(ctx, &sbuf, peer, 1).unwrap();
                comm.wait(ctx, sr).unwrap();
                comm.wait(ctx, rr).unwrap();
            }
            if comm.rank() == 0 {
                *out2.lock() = (ctx.now() - t0).as_micros_f64() / iters as f64;
            }
        },
    );
    sim.run_expect();
    let iter_us = *out.lock();
    CommOnly { size: x, iter_us }
}

/// Intel-MPI-on-Xeon + offload variant: 2 host ranks, each driving a Phi
/// card whose data must cross PCIe every iteration.
pub fn commonly_offload(ccfg: &ClusterConfig, x: u64, iters: u32) -> CommOnly {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ccfg.clone());
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster.clone());
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let cl = cluster.clone();
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::host(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let node = fabric::NodeId(comm.rank() % cl.num_nodes());
            // Offload init hoisted out of the loop (paper optimization 1).
            let rt = OffloadRuntime::new(ctx, cl.clone(), node);
            // Persistent page-aligned buffers (optimizations 2 and 3).
            let card = rt.alloc_phi(x.max(1)).unwrap();
            let host_out = comm.alloc(x).unwrap();
            // Double buffering (optimization 4): two receive buffers alternate
            // so the copy-in of iteration i-1's data rides the offload stream
            // *behind* iteration i's copy-out and overlaps the MPI exchange.
            let host_in = [comm.alloc(x).unwrap(), comm.alloc(x).unwrap()];
            let peer = 1 - comm.rank();
            let warmup = 3u32;
            let mut t0 = ctx.now();
            let mut pending_in: Option<fabric::Transfer> = None;
            let mut prev_recv: Option<usize> = None;
            for i in 0..(warmup + iters) {
                if i == warmup {
                    t0 = ctx.now();
                }
                // Copy the data to send out of the card.
                let out_t = rt.copy_out_async(ctx, &card, &host_out);
                // Queue the previous iteration's copy-in right behind it; it
                // will overlap this iteration's MPI exchange.
                if let Some(slot) = prev_recv.take() {
                    pending_in = Some(rt.copy_in_async(ctx, &host_in[slot], &card));
                }
                ctx.wait_reason(&out_t.completion, "offload copy-out");
                // Exchange on the host.
                let slot = (i % 2) as usize;
                let rr = comm
                    .irecv(ctx, &host_in[slot], Src::Rank(peer), TagSel::Tag(1))
                    .unwrap();
                let sr = comm.isend(ctx, &host_out, peer, 1).unwrap();
                comm.wait(ctx, sr).unwrap();
                comm.wait(ctx, rr).unwrap();
                if let Some(prev) = pending_in.take() {
                    ctx.wait_reason(&prev.completion, "offload copy-in");
                }
                prev_recv = Some(slot);
            }
            if let Some(slot) = prev_recv.take() {
                let t = rt.copy_in_async(ctx, &host_in[slot], &card);
                ctx.wait_reason(&t.completion, "offload copy-in");
            }
            if comm.rank() == 0 {
                *out2.lock() = (ctx.now() - t0).as_micros_f64() / iters as f64;
            }
        },
    );
    sim.run_expect();
    let iter_us = *out.lock();
    CommOnly { size: x, iter_us }
}
