//! Workload tests: numerical parity across all three runtimes, and
//! paper-shape checks on the microbenchmarks (these are small/fast
//! variants; the full sweeps live in the bench harness).

use apps::{
    commonly_dcfa, commonly_offload, mpi_pingpong_blocking, mpi_pingpong_nonblocking,
    rdma_direction, stencil_dcfa, stencil_intel_phi, stencil_offload, stencil_serial, Direction,
    MpiRuntime, StencilParams,
};
use dcfa_mpi::MpiConfig;
use fabric::ClusterConfig;

fn ccfg() -> ClusterConfig {
    ClusterConfig::with_nodes(8)
}

// ---- Fig. 5 shape -----------------------------------------------------------

#[test]
fn fig5_direction_ordering() {
    let c = ccfg();
    let size = 1 << 20;
    let hh = rdma_direction(&c, Direction::HostToHost, size, 4);
    let hp = rdma_direction(&c, Direction::HostToPhi, size, 4);
    let ph = rdma_direction(&c, Direction::PhiToHost, size, 4);
    let pp = rdma_direction(&c, Direction::PhiToPhi, size, 4);
    // Host-sourced directions match each other; Phi-sourced are >4x slower.
    assert!((hh.bw_gbs / hp.bw_gbs) < 1.15);
    assert!(
        hh.bw_gbs / ph.bw_gbs > 4.0,
        "hh={} ph={}",
        hh.bw_gbs,
        ph.bw_gbs
    );
    assert!(hh.bw_gbs / pp.bw_gbs > 4.0);
    // And the Phi-sourced ones are within noise of each other.
    assert!((ph.bw_gbs / pp.bw_gbs - 1.0).abs() < 0.2);
}

// ---- Fig. 9 calibration ------------------------------------------------------

#[test]
fn fig9_small_message_latencies() {
    let c = ccfg();
    let dcfa = mpi_pingpong_blocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 4, 30);
    let intel = mpi_pingpong_blocking(&c, &MpiRuntime::IntelPhi, 4, 30);
    // Paper: 15us vs 28us for a 4-byte round trip.
    assert!(
        (10.0..20.0).contains(&dcfa.rtt_us),
        "DCFA 4B RTT = {:.1}us, expected ~15",
        dcfa.rtt_us
    );
    assert!(
        (22.0..36.0).contains(&intel.rtt_us),
        "Intel-Phi 4B RTT = {:.1}us, expected ~28",
        intel.rtt_us
    );
    assert!(intel.rtt_us / dcfa.rtt_us > 1.5);
}

#[test]
fn fig9_large_message_bandwidth_gap() {
    let c = ccfg();
    let size = 4 << 20;
    let dcfa = mpi_pingpong_blocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), size, 4);
    let intel = mpi_pingpong_blocking(&c, &MpiRuntime::IntelPhi, size, 4);
    // Paper: DCFA-MPI grows to 2.8 GB/s, Intel-Phi stays under 1 GB/s,
    // i.e. a ~3x gap after 1 MB.
    assert!(
        (2.2..3.2).contains(&dcfa.bw_gbs),
        "DCFA large bw = {:.2} GB/s, expected ~2.8",
        dcfa.bw_gbs
    );
    assert!(
        intel.bw_gbs < 1.05,
        "Intel-Phi bw = {:.2} GB/s, expected < 1",
        intel.bw_gbs
    );
    let ratio = dcfa.bw_gbs / intel.bw_gbs;
    assert!(
        (2.4..4.0).contains(&ratio),
        "ratio = {ratio:.2}, expected ~3x"
    );
}

// ---- Figs. 7/8 shape ---------------------------------------------------------

#[test]
fn fig7_offload_buffer_helps_large_messages_only() {
    let c = ccfg();
    let with = MpiRuntime::Dcfa(MpiConfig::dcfa());
    let without = MpiRuntime::Dcfa(MpiConfig::dcfa_no_offload());
    // Below the 8 KiB offload threshold: identical.
    let small_w = mpi_pingpong_nonblocking(&c, &with, 2048, 10);
    let small_wo = mpi_pingpong_nonblocking(&c, &without, 2048, 10);
    assert!((small_w.rtt_us - small_wo.rtt_us).abs() < 0.5);
    // At 1 MiB: the offloading send buffer wins big.
    let big_w = mpi_pingpong_nonblocking(&c, &with, 1 << 20, 6);
    let big_wo = mpi_pingpong_nonblocking(&c, &without, 1 << 20, 6);
    assert!(
        big_wo.rtt_us / big_w.rtt_us > 2.0,
        "with={:.0}us without={:.0}us",
        big_w.rtt_us,
        big_wo.rtt_us
    );
}

#[test]
fn fig7_dcfa_approaches_host_for_large_messages() {
    let c = ccfg();
    let host = mpi_pingpong_nonblocking(&c, &MpiRuntime::Dcfa(MpiConfig::host()), 1 << 20, 6);
    let dcfa = mpi_pingpong_nonblocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 1 << 20, 6);
    // Paper: "It is only 2 times slower than the host at 1Mbytes."
    let ratio = dcfa.rtt_us / host.rtt_us;
    assert!(
        (1.5..2.6).contains(&ratio),
        "DCFA/host at 1MB = {ratio:.2}, expected ~2"
    );
}

#[test]
fn fig8_peak_bandwidth_reaches_2_8() {
    let c = ccfg();
    let r = mpi_pingpong_nonblocking(&c, &MpiRuntime::Dcfa(MpiConfig::dcfa()), 8 << 20, 4);
    assert!(
        (2.5..3.1).contains(&r.bw_gbs),
        "DCFA-MPI non-blocking peak = {:.2} GB/s, expected ~2.8",
        r.bw_gbs
    );
}

// ---- Fig. 10 shape -----------------------------------------------------------

#[test]
fn fig10_small_messages_12x() {
    let c = ccfg();
    let x = 64;
    let dcfa = commonly_dcfa(&c, MpiConfig::dcfa(), x, 20);
    let off = commonly_offload(&c, x, 20);
    let ratio = off.iter_us / dcfa.iter_us;
    assert!(
        (8.0..16.0).contains(&ratio),
        "comm-only speedup at {x}B = {ratio:.1}, expected ~12"
    );
}

#[test]
fn fig10_large_messages_2x() {
    let c = ccfg();
    let x = 1 << 20;
    let dcfa = commonly_dcfa(&c, MpiConfig::dcfa(), x, 8);
    let off = commonly_offload(&c, x, 8);
    let ratio = off.iter_us / dcfa.iter_us;
    assert!(
        (1.6..3.0).contains(&ratio),
        "comm-only speedup at 1MB = {ratio:.1}, expected ~2"
    );
}

// ---- Stencil correctness and shape ------------------------------------------

#[test]
fn stencil_checksums_agree_across_runtimes() {
    // Small grid, all three runtimes + a different proc count must produce
    // the exact same arithmetic result.
    let c = ccfg();
    let p = StencilParams {
        n: 66,
        iters: 10,
        procs: 4,
        threads: 8,
    };
    let a = stencil_dcfa(&c, MpiConfig::dcfa(), p);
    let b = stencil_intel_phi(&c, p);
    let d = stencil_offload(&c, p);
    let serial = stencil_dcfa(&c, MpiConfig::dcfa(), StencilParams { procs: 1, ..p });
    // Same proc count, same partition, same reduction tree: bit-exact.
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "dcfa vs intel-phi"
    );
    assert_eq!(
        a.checksum.to_bits(),
        d.checksum.to_bits(),
        "dcfa vs offload"
    );
    // Different proc count changes the summation association: ULP-level
    // differences only.
    let rel = (a.checksum - serial.checksum).abs() / serial.checksum.abs();
    assert!(rel < 1e-12, "4 procs vs serial rel err = {rel:e}");
    assert!(a.checksum.is_finite() && a.checksum != 0.0);
}

#[test]
fn stencil_dcfa_beats_offload_mode() {
    let c = ccfg();
    let p = StencilParams {
        n: 258,
        iters: 6,
        procs: 4,
        threads: 16,
    };
    let dcfa = stencil_dcfa(&c, MpiConfig::dcfa(), p);
    let off = stencil_offload(&c, p);
    let ratio = off.iter_us / dcfa.iter_us;
    assert!(ratio > 1.5, "offload/dcfa = {ratio:.2}, expected > 1.5");
}

#[test]
fn stencil_dcfa_and_intelphi_close() {
    // Paper: "The results of DCFA-MPI and 'Intel MPI on Xeon Phi' mode do
    // not show a big difference."
    let c = ccfg();
    let p = StencilParams {
        n: 258,
        iters: 6,
        procs: 4,
        threads: 16,
    };
    let dcfa = stencil_dcfa(&c, MpiConfig::dcfa(), p);
    let ip = stencil_intel_phi(&c, p);
    let ratio = ip.iter_us / dcfa.iter_us;
    assert!((0.8..1.6).contains(&ratio), "intelphi/dcfa = {ratio:.2}");
}

#[test]
fn stencil_scales_with_procs_and_threads() {
    let c = ccfg();
    let base = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n: 258,
            iters: 4,
            procs: 1,
            threads: 1,
        },
    );
    let threaded = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n: 258,
            iters: 4,
            procs: 1,
            threads: 16,
        },
    );
    let parallel = stencil_dcfa(
        &c,
        MpiConfig::dcfa(),
        StencilParams {
            n: 258,
            iters: 4,
            procs: 4,
            threads: 16,
        },
    );
    assert!(threaded.iter_us < base.iter_us / 4.0);
    // At this small grid the halo exchange is a large fraction of the
    // iteration, so expect a modest (not linear) multi-process win.
    assert!(parallel.iter_us < threaded.iter_us / 1.2);
}

#[test]
fn stencil_serial_matches_compute_model() {
    let c = ccfg();
    let r = stencil_serial(&c, 130, 4);
    // Serial: no MPI, 1 thread: iter time == points * point_update.
    let expected_us = (130.0 * 130.0) * c.cost.phi_point_update.as_nanos() as f64 / 1e3;
    assert!(
        (r.iter_us - expected_us).abs() / expected_us < 0.05,
        "serial iter = {:.1}us, model = {:.1}us",
        r.iter_us,
        expected_us
    );
}
