//! Soak tests: seeded random traffic patterns over DCFA-MPI and the
//! Intel-Phi baseline — every payload byte verified, every seed
//! replayable.

use std::sync::Arc;

use apps::{run_traffic_rank, TrafficPattern};
use baselines::IntelPhiWorld;
use dcfa_mpi::{launch, LaunchOpts, MpiConfig, Placement};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::Simulation;
use verbs::IbFabric;

fn soak_dcfa(seed: u64, n: usize, count: usize, cfg: MpiConfig) -> usize {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    let pattern = Arc::new(TrafficPattern::generate(seed, n, count, 1 << 20));
    let verified = Arc::new(Mutex::new(0usize));
    let v2 = verified.clone();
    let p2 = pattern.clone();
    launch(
        &sim,
        &ib,
        &scif,
        cfg,
        n,
        LaunchOpts::default(),
        move |ctx, comm| {
            let k = run_traffic_rank(ctx, comm, &p2);
            *v2.lock() += k;
        },
    );
    sim.run_expect();
    let v = *verified.lock();
    assert_eq!(v, count, "every message verified exactly once");
    v
}

#[test]
fn soak_two_ranks_hundred_messages() {
    soak_dcfa(1001, 2, 100, MpiConfig::dcfa());
}

#[test]
fn soak_four_ranks_mixed_sizes() {
    soak_dcfa(2002, 4, 120, MpiConfig::dcfa());
}

#[test]
fn soak_eight_ranks() {
    soak_dcfa(3003, 8, 160, MpiConfig::dcfa());
}

#[test]
fn soak_without_offload_or_cache() {
    let cfg = MpiConfig {
        offload_threshold: None,
        mr_cache_capacity: 0,
        ..MpiConfig::dcfa()
    };
    soak_dcfa(4004, 4, 80, cfg);
}

#[test]
fn soak_host_placement() {
    soak_dcfa(5005, 4, 100, MpiConfig::host());
}

#[test]
fn soak_symmetric_placement() {
    let n = 4;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    let pattern = Arc::new(TrafficPattern::generate(6006, n, 100, 1 << 20));
    let verified = Arc::new(Mutex::new(0usize));
    let v2 = verified.clone();
    let p2 = pattern.clone();
    let opts = LaunchOpts {
        placements: Some(vec![
            Placement::Phi,
            Placement::Host,
            Placement::Phi,
            Placement::Host,
        ]),
        ..Default::default()
    };
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        n,
        opts,
        move |ctx, comm| {
            *v2.lock() += run_traffic_rank(ctx, comm, &p2);
        },
    );
    sim.run_expect();
    assert_eq!(*verified.lock(), 100);
}

#[test]
fn soak_intel_phi_baseline() {
    let n = 4;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
    let world = IntelPhiWorld::new(cluster.clone(), n);
    let pattern = Arc::new(TrafficPattern::generate(7007, n, 80, 1 << 20));
    let verified = Arc::new(Mutex::new(0usize));
    let v2 = verified.clone();
    let p2 = pattern.clone();
    world.launch(&sim, move |ctx, comm| {
        *v2.lock() += run_traffic_rank(ctx, comm, &p2);
    });
    sim.run_expect();
    assert_eq!(*verified.lock(), 80);
}

#[test]
fn soak_is_deterministic_in_virtual_time() {
    fn run(seed: u64) -> u64 {
        let n = 3;
        let mut sim = Simulation::new();
        let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
        let ib = IbFabric::new(cluster.clone());
        let scif = ScifFabric::new(cluster);
        let pattern = Arc::new(TrafficPattern::generate(seed, n, 60, 1 << 18));
        let p2 = pattern.clone();
        launch(
            &sim,
            &ib,
            &scif,
            MpiConfig::dcfa(),
            n,
            LaunchOpts::default(),
            move |ctx, comm| {
                run_traffic_rank(ctx, comm, &p2);
            },
        );
        sim.run_expect().final_time.as_nanos()
    }
    assert_eq!(run(8008), run(8008));
    assert_ne!(run(8008), run(8009));
}
