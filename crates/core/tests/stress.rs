//! Protocol stress tests: tiny rings (aggressive wraparound + credit
//! pressure), wildcard combinations, no-cache configurations, and mixed
//! protocol storms.

use std::sync::Arc;

use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_cfg<F>(cfg: MpiConfig, nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(&sim, &ib, &scif, cfg, nprocs, LaunchOpts::default(), f);
    sim.run_expect();
}

fn tiny_ring() -> MpiConfig {
    MpiConfig {
        ring_slots: 4, // window of 2 → constant credit pressure
        eager_threshold: 1 << 10,
        ring_slot_payload: 1 << 10,
        ..MpiConfig::dcfa()
    }
}

#[test]
fn tiny_ring_survives_long_stream() {
    let count = Arc::new(Mutex::new(0u32));
    let c2 = count.clone();
    run_cfg(tiny_ring(), 2, move |ctx, comm| {
        let n = 200u32;
        if comm.rank() == 0 {
            let buf = comm.alloc(256).unwrap();
            for i in 0..n {
                comm.write(&buf, 0, &[(i % 256) as u8; 256]);
                comm.send(ctx, &buf, 1, 0).unwrap();
            }
        } else {
            let buf = comm.alloc(256).unwrap();
            for i in 0..n {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(0)).unwrap();
                assert_eq!(comm.read_vec(&buf)[0], (i % 256) as u8);
                *c2.lock() += 1;
            }
        }
    });
    assert_eq!(*count.lock(), 200);
}

#[test]
fn tiny_ring_bidirectional_storm() {
    run_cfg(tiny_ring(), 2, move |ctx, comm| {
        let peer = 1 - comm.rank();
        let sbuf = comm.alloc(512).unwrap();
        let rbuf = comm.alloc(512).unwrap();
        let mut reqs = Vec::new();
        for k in 0..120u32 {
            reqs.push(
                comm.irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(k))
                    .unwrap(),
            );
            reqs.push(comm.isend(ctx, &sbuf, peer, k).unwrap());
        }
        comm.waitall(ctx, &reqs).unwrap();
    });
}

#[test]
fn tiny_ring_mixed_eager_and_rendezvous() {
    // Alternating small (eager) and large (rendezvous) keeps control
    // packets and data packets interleaved in a 4-slot ring.
    run_cfg(tiny_ring(), 2, move |ctx, comm| {
        let small = comm.alloc(128).unwrap();
        let large = comm.alloc(64 << 10).unwrap();
        if comm.rank() == 0 {
            for i in 0..20 {
                if i % 2 == 0 {
                    comm.write(&small, 0, &[i as u8; 128]);
                    comm.send(ctx, &small, 1, 1).unwrap();
                } else {
                    comm.write(&large, 0, &[i as u8; 1024]);
                    comm.send(ctx, &large, 1, 1).unwrap();
                }
            }
        } else {
            for i in 0..20 {
                if i % 2 == 0 {
                    comm.recv(ctx, &small, Src::Rank(0), TagSel::Tag(1))
                        .unwrap();
                    assert_eq!(comm.read_vec(&small)[0], i as u8);
                } else {
                    comm.recv(ctx, &large, Src::Rank(0), TagSel::Tag(1))
                        .unwrap();
                    assert_eq!(comm.read_vec(&large)[0], i as u8);
                }
            }
        }
    });
}

#[test]
fn any_source_any_tag_drains_everything() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    run_cfg(MpiConfig::dcfa(), 4, move |ctx, comm| {
        if comm.rank() < 3 {
            let buf = comm.alloc(64).unwrap();
            for k in 0..5u32 {
                comm.write(&buf, 0, &[comm.rank() as u8 * 10 + k as u8; 64]);
                comm.send(ctx, &buf, 3, 100 + k).unwrap();
            }
        } else {
            let buf = comm.alloc(64).unwrap();
            for _ in 0..15 {
                let st = comm.recv(ctx, &buf, Src::Any, TagSel::Any).unwrap();
                s2.lock().push((st.source, st.tag, comm.read_vec(&buf)[0]));
            }
        }
    });
    let seen = seen.lock().clone();
    assert_eq!(seen.len(), 15);
    // Per-source FIFO: tags from each source arrive in ascending order and
    // payloads match the envelope.
    for src in 0..3usize {
        let tags: Vec<u32> = seen
            .iter()
            .filter(|(s, _, _)| *s == src)
            .map(|(_, t, _)| *t)
            .collect();
        assert_eq!(tags, vec![100, 101, 102, 103, 104], "source {src}");
    }
    for (s, t, payload) in seen {
        assert_eq!(payload, s as u8 * 10 + (t - 100) as u8);
    }
}

#[test]
fn no_mr_cache_no_offload_still_correct() {
    let cfg = MpiConfig {
        mr_cache_capacity: 0,
        offload_threshold: None,
        ..MpiConfig::dcfa()
    };
    run_cfg(cfg, 2, move |ctx, comm| {
        let buf = comm.alloc(256 << 10).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &[0x3C; 4096]);
            for _ in 0..5 {
                comm.send(ctx, &buf, 1, 1).unwrap();
            }
            let (hits, misses) = comm.mr_cache_stats();
            assert_eq!(hits, 0, "cache disabled must never hit");
            assert!(misses >= 5);
        } else {
            for _ in 0..5 {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            }
            assert_eq!(comm.read_vec(&buf)[..4096], [0x3C; 4096][..]);
        }
    });
}

#[test]
fn interleaved_tags_with_wildcard_receiver() {
    // Wildcard and specific receives interleave; everything must complete
    // with matching payloads.
    run_cfg(MpiConfig::dcfa(), 2, move |ctx, comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(64).unwrap();
            for k in 0..12u32 {
                comm.write(&buf, 0, &[k as u8; 64]);
                comm.send(ctx, &buf, 1, k % 3).unwrap();
            }
        } else {
            let buf = comm.alloc(64).unwrap();
            let mut got = Vec::new();
            for i in 0..12 {
                let tag = if i % 4 == 0 {
                    TagSel::Any
                } else {
                    TagSel::Tag(i as u32 % 3)
                };
                let st = comm.recv(ctx, &buf, Src::Rank(0), tag).unwrap();
                got.push((st.tag, comm.read_vec(&buf)[0]));
            }
            // Each received payload k must carry tag k % 3.
            for (tag, k) in got {
                assert_eq!(tag, k as u32 % 3);
            }
        }
    });
}

#[test]
fn eight_ranks_tiny_ring_allgather_style() {
    run_cfg(tiny_ring(), 8, move |ctx, comm| {
        let n = comm.size();
        let me = comm.rank();
        // Everyone sends its badge to everyone (n*(n-1) messages through
        // 4-slot rings).
        let mut reqs = Vec::new();
        let rbufs: Vec<_> = (0..n).map(|_| comm.alloc(32).unwrap()).collect();
        for (p, rbuf) in rbufs.iter().enumerate() {
            if p != me {
                reqs.push(comm.irecv(ctx, rbuf, Src::Rank(p), TagSel::Tag(5)).unwrap());
            }
        }
        let sbuf = comm.alloc(32).unwrap();
        comm.write(&sbuf, 0, &[me as u8 + 1; 32]);
        for p in 0..n {
            if p != me {
                reqs.push(comm.isend(ctx, &sbuf, p, 5).unwrap());
            }
        }
        comm.waitall(ctx, &reqs).unwrap();
        for (p, rbuf) in rbufs.iter().enumerate() {
            if p != me {
                assert_eq!(comm.read_vec(rbuf), vec![p as u8 + 1; 32]);
            }
        }
    });
}
