//! Allocation regression test for the zero-allocation hot path.
//!
//! A counting global allocator attributes every heap allocation made
//! while `dcfa_mpi::hotpath::armed()` is true — i.e. on a simulated
//! rank thread inside `isend`/`irecv`/`test`/`wait`/`progress`, and
//! not paused for a device-model excursion — to the MPI library's hot
//! path. After a warmup phase (which is allowed to allocate: slab
//! slots, ring scratch, metric keys and scheduler heaps all grow to
//! steady-state capacity once), a long eager ping-pong must perform
//! **zero** hot-path allocations. This turns the tentpole's central
//! claim into an enforced invariant rather than an assertion in prose.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use parking_lot::Mutex;

struct HotCounting;

static HOT_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for HotCounting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if dcfa_mpi::hotpath::armed() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(l)
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        if dcfa_mpi::hotpath::armed() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(l)
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if dcfa_mpi::hotpath::armed() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(p, l, new_size)
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static ALLOC: HotCounting = HotCounting;

/// Rounds allowed to allocate (fills slabs, scratch buffers, metric
/// keys and event-queue capacity).
const WARMUP_ROUNDS: usize = 64;
/// Measured rounds: two eager ops each (one send + one recv per rank).
const MEASURED_ROUNDS: usize = 1000;
/// Well under the eager threshold so every op takes the eager path.
const MSG: u64 = 256;

#[test]
fn steady_state_eager_ops_do_not_allocate() {
    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), fabric::ClusterConfig::with_nodes(2));
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster);
    let measured = Arc::new(Mutex::new(None::<u64>));
    let measured2 = measured.clone();
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let buf = comm.alloc(MSG).unwrap();
            let me = comm.rank();
            let peer = 1 - me;
            let round = |ctx: &mut simcore::Ctx, comm: &mut dcfa_mpi::Comm| {
                if me == 0 {
                    comm.send(ctx, &buf, peer, 7).unwrap();
                    comm.recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(7))
                        .unwrap();
                } else {
                    comm.recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(7))
                        .unwrap();
                    comm.send(ctx, &buf, peer, 7).unwrap();
                }
            };
            for _ in 0..WARMUP_ROUNDS {
                round(ctx, comm);
            }
            let before = HOT_ALLOCS.load(Ordering::Relaxed);
            // The harness must be live: warmup itself allocates (slabs
            // and scratch growing to steady-state capacity), so a zero
            // here would mean arming is broken, not that the code is
            // allocation-free.
            if me == 0 {
                assert!(
                    before > 0,
                    "counting allocator never saw an armed allocation; \
                     hot-path instrumentation is not wired up"
                );
            }
            for _ in 0..MEASURED_ROUNDS {
                round(ctx, comm);
            }
            let after = HOT_ALLOCS.load(Ordering::Relaxed);
            if me == 0 {
                *measured2.lock() = Some(after - before);
            }
        },
    );
    sim.run_expect();
    let hot = measured
        .lock()
        .take()
        .expect("rank 0 recorded a measurement");
    assert_eq!(
        hot, 0,
        "steady-state eager ping-pong performed {hot} hot-path heap \
         allocations over {MEASURED_ROUNDS} rounds (expected zero)"
    );
}
