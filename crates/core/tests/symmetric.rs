//! Symmetric-mode tests (the third execution mode of §III-B): ranks on
//! both host processors and Xeon Phi co-processors in one job, "messages
//! can be transferred to/from any core".

use std::sync::Arc;

use dcfa_mpi::collectives;
use dcfa_mpi::{
    launch, Comm, Communicator, Datatype, LaunchOpts, MpiConfig, Placement, ReduceOp, Src, TagSel,
};
use fabric::{Cluster, ClusterConfig, Domain};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_symmetric<F>(placements: Vec<Placement>, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let n = placements.len();
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    let opts = LaunchOpts {
        placements: Some(placements),
        ..Default::default()
    };
    launch(&sim, &ib, &scif, MpiConfig::dcfa(), n, opts, f);
    sim.run_expect();
}

#[test]
fn host_and_phi_ranks_exchange_messages() {
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_symmetric(vec![Placement::Phi, Placement::Host], move |ctx, comm| {
        // Rank 0 on a card, rank 1 on a host.
        let expect_domain = if comm.rank() == 0 {
            Domain::Phi
        } else {
            Domain::Host
        };
        assert_eq!(comm.mem().domain, expect_domain);
        let peer = 1 - comm.rank();
        let sbuf = comm.alloc(32 << 10).unwrap();
        let rbuf = comm.alloc(32 << 10).unwrap();
        comm.write(&sbuf, 0, &[comm.rank() as u8 + 7; 32 << 10]);
        let rr = comm
            .irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(1))
            .unwrap();
        let sr = comm.isend(ctx, &sbuf, peer, 1).unwrap();
        comm.wait(ctx, sr).unwrap();
        comm.wait(ctx, rr).unwrap();
        assert_eq!(comm.read_vec(&rbuf), vec![peer as u8 + 7; 32 << 10]);
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 2);
}

#[test]
fn phi_rank_uses_offload_host_rank_does_not() {
    let stats = Arc::new(Mutex::new(Vec::new()));
    let s2 = stats.clone();
    run_symmetric(vec![Placement::Phi, Placement::Host], move |ctx, comm| {
        let peer = 1 - comm.rank();
        let buf = comm.alloc(256 << 10).unwrap();
        // Both directions: each rank sends one large message.
        let rr = comm
            .irecv(ctx, &buf, Src::Rank(peer), TagSel::Tag(2))
            .unwrap();
        let sbuf = comm.alloc(256 << 10).unwrap();
        let sr = comm.isend(ctx, &sbuf, peer, 2).unwrap();
        comm.wait(ctx, sr).unwrap();
        comm.wait(ctx, rr).unwrap();
        s2.lock().push((comm.rank(), comm.stats()));
    });
    let stats = stats.lock().clone();
    for (rank, st) in stats {
        assert_eq!(st.rndv_sends, 1, "rank {rank}");
        if rank == 0 {
            assert_eq!(st.offload_syncs, 1, "Phi rank stages through the twin");
        } else {
            assert_eq!(st.offload_syncs, 0, "host rank sends directly");
        }
    }
}

#[test]
fn mixed_four_rank_collectives() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_symmetric(
        vec![
            Placement::Host,
            Placement::Phi,
            Placement::Host,
            Placement::Phi,
        ],
        move |ctx, comm| {
            let buf = comm.alloc(8).unwrap();
            comm.write(&buf, 0, &((comm.rank() + 1) as f64).to_le_bytes());
            collectives::allreduce(comm, ctx, &buf, Datatype::F64, ReduceOp::Sum).unwrap();
            let v = f64::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
            g2.lock().push(v);
            collectives::barrier(comm, ctx).unwrap();
        },
    );
    assert_eq!(*got.lock(), vec![10.0; 4]);
}

#[test]
fn symmetric_stencil_like_ring() {
    // A ring over alternating placements (the symmetric-mode shape a
    // host+card-per-node job would use).
    run_symmetric(
        vec![
            Placement::Host,
            Placement::Phi,
            Placement::Host,
            Placement::Phi,
        ],
        move |ctx, comm| {
            let n = comm.size();
            let me = comm.rank();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let sbuf = comm.alloc(10 << 10).unwrap();
            let rbuf = comm.alloc(10 << 10).unwrap();
            comm.write(&sbuf, 0, &[me as u8 * 3 + 1; 10 << 10]);
            for _ in 0..5 {
                let rr = comm
                    .irecv(ctx, &rbuf, Src::Rank(left), TagSel::Tag(4))
                    .unwrap();
                let sr = comm.isend(ctx, &sbuf, right, 4).unwrap();
                comm.wait(ctx, sr).unwrap();
                comm.wait(ctx, rr).unwrap();
                assert_eq!(comm.read_vec(&rbuf)[0], left as u8 * 3 + 1);
            }
        },
    );
}
