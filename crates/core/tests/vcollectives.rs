//! Variable-count collective tests: gatherv, scatterv, alltoallv with
//! uneven (including zero) block sizes.

use std::sync::Arc;

use dcfa_mpi::collectives::{alltoallv, gatherv, scatterv};
use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn gatherv_uneven_blocks() {
    let counts: Vec<u64> = vec![100, 0, 4096, 33];
    let gathered = Arc::new(Mutex::new(Vec::new()));
    let g2 = gathered.clone();
    let counts2 = counts.clone();
    run_mpi(4, move |ctx, comm| {
        let me = comm.rank();
        let send = comm.alloc(counts2[me].max(1)).unwrap();
        comm.write(&send, 0, &vec![me as u8 + 1; counts2[me] as usize]);
        if me == 0 {
            let total: u64 = counts2.iter().sum();
            let recv = comm.alloc(total).unwrap();
            gatherv(comm, ctx, &send, Some(&recv), &counts2, 0).unwrap();
            *g2.lock() = comm.read_vec(&recv);
        } else {
            gatherv(comm, ctx, &send, None, &counts2, 0).unwrap();
        }
    });
    let g = gathered.lock().clone();
    let mut off = 0usize;
    for (p, &cnt) in counts.iter().enumerate() {
        assert!(
            g[off..off + cnt as usize].iter().all(|&b| b == p as u8 + 1),
            "block from rank {p}"
        );
        off += cnt as usize;
    }
}

#[test]
fn scatterv_uneven_blocks() {
    let counts: Vec<u64> = vec![8, 2048, 0, 500];
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    let counts2 = counts.clone();
    run_mpi(4, move |ctx, comm| {
        let me = comm.rank();
        let recv = comm.alloc(counts2[me].max(1)).unwrap();
        if me == 1 {
            let total: u64 = counts2.iter().sum();
            let send = comm.alloc(total).unwrap();
            let mut off = 0u64;
            for (p, &cnt) in counts2.iter().enumerate() {
                comm.write(&send, off, &vec![p as u8 * 7 + 1; cnt as usize]);
                off += cnt;
            }
            scatterv(comm, ctx, Some(&send), &recv, &counts2, 1).unwrap();
        } else {
            scatterv(comm, ctx, None, &recv, &counts2, 1).unwrap();
        }
        let got = comm.read_vec(&recv.slice(0, counts2[me]));
        assert!(got.iter().all(|&b| b == me as u8 * 7 + 1), "rank {me}");
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 4);
}

#[test]
fn alltoallv_triangular_pattern() {
    // Rank i sends (i + j + 1) * 16 bytes to rank j: a fully uneven matrix.
    let n = 4usize;
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(n, move |ctx, comm| {
        let me = comm.rank();
        let count = |from: usize, to: usize| ((from + to + 1) * 16) as u64;
        let send_counts: Vec<u64> = (0..n).map(|j| count(me, j)).collect();
        let recv_counts: Vec<u64> = (0..n).map(|j| count(j, me)).collect();
        let mut send_offs = vec![0u64; n];
        let mut recv_offs = vec![0u64; n];
        for j in 1..n {
            send_offs[j] = send_offs[j - 1] + send_counts[j - 1];
            recv_offs[j] = recv_offs[j - 1] + recv_counts[j - 1];
        }
        let send = comm.alloc(send_counts.iter().sum::<u64>()).unwrap();
        let recv = comm.alloc(recv_counts.iter().sum::<u64>()).unwrap();
        for j in 0..n {
            comm.write(
                &send,
                send_offs[j],
                &vec![(me * 10 + j) as u8; send_counts[j] as usize],
            );
        }
        alltoallv(
            comm,
            ctx,
            &send,
            &send_counts,
            &send_offs,
            &recv,
            &recv_counts,
            &recv_offs,
        )
        .unwrap();
        for j in 0..n {
            let got = comm.read_vec(&recv.slice(recv_offs[j], recv_counts[j]));
            assert!(
                got.iter().all(|&b| b == (j * 10 + me) as u8),
                "rank {me} block from {j}"
            );
        }
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), n);
}

#[test]
fn alltoallv_with_large_blocks_uses_rendezvous() {
    // Mixed small/large: one pair exchanges 128 KiB (rendezvous), the
    // rest a few bytes.
    let n = 3usize;
    run_mpi(n, move |ctx, comm| {
        let me = comm.rank();
        let count = |from: usize, to: usize| {
            if from == 0 && to == 2 {
                128 << 10
            } else {
                32u64
            }
        };
        let send_counts: Vec<u64> = (0..n).map(|j| count(me, j)).collect();
        let recv_counts: Vec<u64> = (0..n).map(|j| count(j, me)).collect();
        let mut send_offs = vec![0u64; n];
        let mut recv_offs = vec![0u64; n];
        for j in 1..n {
            send_offs[j] = send_offs[j - 1] + send_counts[j - 1];
            recv_offs[j] = recv_offs[j - 1] + recv_counts[j - 1];
        }
        let send = comm.alloc(send_counts.iter().sum::<u64>()).unwrap();
        let recv = comm.alloc(recv_counts.iter().sum::<u64>()).unwrap();
        for j in 0..n {
            comm.write(
                &send,
                send_offs[j],
                &vec![0xA0 + j as u8; send_counts[j] as usize],
            );
        }
        alltoallv(
            comm,
            ctx,
            &send,
            &send_counts,
            &send_offs,
            &recv,
            &recv_counts,
            &recv_offs,
        )
        .unwrap();
        for j in 0..n {
            let got = comm.read_vec(&recv.slice(recv_offs[j], recv_counts[j]));
            assert!(
                got.iter().all(|&b| b == 0xA0 + me as u8),
                "rank {me} from {j}"
            );
        }
    });
}
