//! Collective-operation tests across 2–8 ranks on the Phi placement.

use std::sync::Arc;

use dcfa_mpi::collectives;
use dcfa_mpi::{launch, Comm, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn barrier_synchronizes() {
    for n in [2usize, 3, 4, 8] {
        let max_before = Arc::new(Mutex::new(0u64));
        let min_after = Arc::new(Mutex::new(u64::MAX));
        let (b2, a2) = (max_before.clone(), min_after.clone());
        run_mpi(n, move |ctx, comm| {
            // Stagger arrival times.
            ctx.sleep(simcore::SimDuration::from_micros(100 * comm.rank() as u64));
            {
                let mut b = b2.lock();
                *b = (*b).max(ctx.now().as_nanos());
            }
            collectives::barrier(comm, ctx).unwrap();
            {
                let mut a = a2.lock();
                *a = (*a).min(ctx.now().as_nanos());
            }
        });
        // Nobody leaves the barrier before the last arrival.
        assert!(
            *min_after.lock() >= *max_before.lock(),
            "barrier violated for n={n}"
        );
    }
}

#[test]
fn bcast_from_each_root() {
    for root in 0..4usize {
        let ok = Arc::new(Mutex::new(0usize));
        let ok2 = ok.clone();
        run_mpi(4, move |ctx, comm| {
            let buf = comm.alloc(4096).unwrap();
            if comm.rank() == root {
                comm.write(&buf, 0, &[root as u8 + 42; 4096]);
            }
            collectives::bcast(comm, ctx, &buf, root).unwrap();
            assert_eq!(comm.read_vec(&buf), vec![root as u8 + 42; 4096]);
            *ok2.lock() += 1;
        });
        assert_eq!(*ok.lock(), 4);
    }
}

#[test]
fn bcast_large_message() {
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(4, move |ctx, comm| {
        let buf = comm.alloc(1 << 20).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &vec![7u8; 1 << 20]);
        }
        collectives::bcast(comm, ctx, &buf, 0).unwrap();
        assert_eq!(comm.read_vec(&buf), vec![7u8; 1 << 20]);
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 4);
}

#[test]
fn reduce_sum_f64() {
    let result = Arc::new(Mutex::new(Vec::new()));
    let r2 = result.clone();
    run_mpi(4, move |ctx, comm| {
        let n_elems = 128usize;
        let buf = comm.alloc((n_elems * 8) as u64).unwrap();
        let mut bytes = Vec::new();
        for i in 0..n_elems {
            bytes.extend_from_slice(&((comm.rank() + i) as f64).to_le_bytes());
        }
        comm.write(&buf, 0, &bytes);
        collectives::reduce(comm, ctx, &buf, Datatype::F64, ReduceOp::Sum, 0).unwrap();
        if comm.rank() == 0 {
            *r2.lock() = comm.read_vec(&buf);
        }
    });
    let bytes = result.lock().clone();
    for i in 0..128usize {
        let v = f64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        // sum over ranks r of (r + i) = 6 + 4i
        assert_eq!(v, (6 + 4 * i) as f64);
    }
}

#[test]
fn allreduce_max_i32() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    run_mpi(5, move |ctx, comm| {
        let buf = comm.alloc(4).unwrap();
        comm.write(&buf, 0, &((comm.rank() as i32) * 10).to_le_bytes());
        collectives::allreduce(comm, ctx, &buf, Datatype::I32, ReduceOp::Max).unwrap();
        let v = i32::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
        r2.lock().push(v);
    });
    assert_eq!(*results.lock(), vec![40; 5]);
}

#[test]
fn gather_collects_blocks() {
    let gathered = Arc::new(Mutex::new(Vec::new()));
    let g2 = gathered.clone();
    run_mpi(4, move |ctx, comm| {
        let send = comm.alloc(256).unwrap();
        comm.write(&send, 0, &[comm.rank() as u8; 256]);
        if comm.rank() == 1 {
            let recv = comm.alloc(1024).unwrap();
            collectives::gather(comm, ctx, &send, Some(&recv), 1).unwrap();
            *g2.lock() = comm.read_vec(&recv);
        } else {
            collectives::gather(comm, ctx, &send, None, 1).unwrap();
        }
    });
    let g = gathered.lock().clone();
    for p in 0..4usize {
        assert!(
            g[p * 256..(p + 1) * 256].iter().all(|&b| b == p as u8),
            "block {p}"
        );
    }
}

#[test]
fn scatter_distributes_blocks() {
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(4, move |ctx, comm| {
        let recv = comm.alloc(128).unwrap();
        if comm.rank() == 0 {
            let send = comm.alloc(512).unwrap();
            for p in 0..4u64 {
                comm.write(&send, p * 128, &[p as u8 + 1; 128]);
            }
            collectives::scatter(comm, ctx, Some(&send), &recv, 0).unwrap();
        } else {
            collectives::scatter(comm, ctx, None, &recv, 0).unwrap();
        }
        assert_eq!(comm.read_vec(&recv), vec![comm.rank() as u8 + 1; 128]);
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 4);
}

#[test]
fn allgather_ring() {
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(6, move |ctx, comm| {
        let n = comm.size();
        let send = comm.alloc(64).unwrap();
        comm.write(&send, 0, &[comm.rank() as u8 * 3; 64]);
        let recv = comm.alloc(64 * n as u64).unwrap();
        collectives::allgather(comm, ctx, &send, &recv).unwrap();
        let all = comm.read_vec(&recv);
        for p in 0..n {
            assert!(
                all[p * 64..(p + 1) * 64].iter().all(|&b| b == p as u8 * 3),
                "rank {} block {p}",
                comm.rank()
            );
        }
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 6);
}

#[test]
fn alltoall_pairwise() {
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(4, move |ctx, comm| {
        let n = comm.size();
        let blk = 128u64;
        let send = comm.alloc(blk * n as u64).unwrap();
        let recv = comm.alloc(blk * n as u64).unwrap();
        // Block for destination p is filled with (me*16 + p).
        for p in 0..n as u64 {
            comm.write(&send, p * blk, &[(comm.rank() as u8) * 16 + p as u8; 128]);
        }
        collectives::alltoall(comm, ctx, &send, &recv, blk).unwrap();
        let all = comm.read_vec(&recv);
        for p in 0..n {
            let expect = (p as u8) * 16 + comm.rank() as u8;
            assert!(
                all[p * 128..(p + 1) * 128].iter().all(|&b| b == expect),
                "rank {} from {p}",
                comm.rank()
            );
        }
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 4);
}

#[test]
fn collectives_on_single_rank_are_noops() {
    run_mpi(1, move |ctx, comm| {
        let buf = comm.alloc(64).unwrap();
        collectives::barrier(comm, ctx).unwrap();
        collectives::bcast(comm, ctx, &buf, 0).unwrap();
        collectives::reduce(comm, ctx, &buf, Datatype::U8, ReduceOp::Sum, 0).unwrap();
        collectives::allreduce(comm, ctx, &buf, Datatype::U8, ReduceOp::Sum).unwrap();
    });
}
