//! Sub-communicator tests: split semantics, key ordering, concurrent
//! groups, MPI_UNDEFINED, and collectives inside sub-groups.

use std::sync::Arc;

use dcfa_mpi::subcomm::split;
use dcfa_mpi::{
    collectives, launch, Comm, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp, Src, TagSel,
};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn even_odd_split_ranks_and_sizes() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(6, move |ctx, comm| {
        let me = comm.rank();
        let color = (me % 2) as u32;
        let mut sub = split(comm, ctx, color, 0).unwrap().unwrap();
        g2.lock().push((
            me,
            color,
            sub.rank(),
            sub.size(),
            sub.parent_rank(sub.rank()),
        ));
        // Within-group ring exchange proves isolation.
        let n = sub.size();
        let buf = sub.cluster().alloc_pages(sub.mem(), 64).unwrap();
        sub.cluster().write(&buf, 0, &[sub.rank() as u8; 64]);
        let right = (sub.rank() + 1) % n;
        let left = (sub.rank() + n - 1) % n;
        let rbuf = sub.cluster().alloc_pages(sub.mem(), 64).unwrap();
        let rr = sub
            .irecv(ctx, &rbuf, Src::Rank(left), TagSel::Tag(1))
            .unwrap();
        let sr = sub.isend(ctx, &buf, right, 1).unwrap();
        sub.wait(ctx, sr).unwrap();
        let st = sub.wait(ctx, rr).unwrap();
        assert_eq!(st.source, left);
        assert_eq!(st.tag, 1);
        assert_eq!(sub.cluster().read_vec(&rbuf), vec![left as u8; 64]);
    });
    let mut got = got.lock().clone();
    got.sort();
    // Evens: parent 0,2,4 -> sub 0,1,2 of size 3; odds likewise.
    assert_eq!(
        got,
        vec![
            (0, 0, 0, 3, 0),
            (1, 1, 0, 3, 1),
            (2, 0, 1, 3, 2),
            (3, 1, 1, 3, 3),
            (4, 0, 2, 3, 4),
            (5, 1, 2, 3, 5),
        ]
    );
}

#[test]
fn key_reverses_order() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(4, move |ctx, comm| {
        let me = comm.rank();
        // Same color, key descending with rank => sub ranks reversed.
        let sub = split(comm, ctx, 0, -(me as i32)).unwrap().unwrap();
        g2.lock().push((me, sub.rank()));
    });
    let mut got = got.lock().clone();
    got.sort();
    assert_eq!(got, vec![(0, 3), (1, 2), (2, 1), (3, 0)]);
}

#[test]
fn undefined_color_gets_none() {
    let count = Arc::new(Mutex::new(0usize));
    let c2 = count.clone();
    run_mpi(4, move |ctx, comm| {
        let me = comm.rank();
        let color = if me == 3 { u32::MAX } else { 0 };
        let sub = split(comm, ctx, color, 0).unwrap();
        if me == 3 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(sub.size(), 3);
            *c2.lock() += 1;
        }
    });
    assert_eq!(*count.lock(), 3);
}

#[test]
fn collectives_inside_subgroups_run_concurrently() {
    let sums = Arc::new(Mutex::new(Vec::new()));
    let s2 = sums.clone();
    run_mpi(8, move |ctx, comm| {
        let me = comm.rank();
        let color = (me / 4) as u32; // two groups of 4
        let mut sub = split(comm, ctx, color, 0).unwrap().unwrap();
        let buf = sub.cluster().alloc_pages(sub.mem(), 8).unwrap();
        sub.cluster()
            .write(&buf, 0, &((me + 1) as f64).to_le_bytes());
        collectives::allreduce(&mut sub, ctx, &buf, Datatype::F64, ReduceOp::Sum).unwrap();
        let v = f64::from_le_bytes(sub.cluster().read_vec(&buf).try_into().unwrap());
        s2.lock().push((color, v));
    });
    let sums = sums.lock().clone();
    // Group 0: ranks 0..3 => 1+2+3+4 = 10. Group 1: 5+6+7+8 = 26.
    for (color, v) in sums {
        assert_eq!(v, if color == 0 { 10.0 } else { 26.0 });
    }
}

#[test]
fn sub_traffic_does_not_cross_groups() {
    // Both groups exchange on the SAME application tag simultaneously;
    // payload verification proves no cross-group matching happened.
    run_mpi(4, move |ctx, comm| {
        let me = comm.rank();
        let color = (me % 2) as u32;
        let mut sub = split(comm, ctx, color, 0).unwrap().unwrap();
        let peer = 1 - sub.rank();
        let sbuf = sub.cluster().alloc_pages(sub.mem(), 128).unwrap();
        sub.cluster()
            .write(&sbuf, 0, &[(color as u8 + 1) * 10 + sub.rank() as u8; 128]);
        let rbuf = sub.cluster().alloc_pages(sub.mem(), 128).unwrap();
        let rr = sub
            .irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(9))
            .unwrap();
        let sr = sub.isend(ctx, &sbuf, peer, 9).unwrap();
        sub.wait(ctx, sr).unwrap();
        sub.wait(ctx, rr).unwrap();
        let expect = (color as u8 + 1) * 10 + peer as u8;
        assert!(sub.cluster().read_vec(&rbuf).iter().all(|&b| b == expect));
    });
}
