//! Persistent-request (`MPI_Send_init`/`MPI_Start`) and `MPI_Scan` tests.

use std::sync::Arc;

use dcfa_mpi::collectives::scan;
use dcfa_mpi::{
    launch, Comm, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp, Src, TagSel,
};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn persistent_halo_exchange_loop() {
    // The canonical persistent-request pattern: set up once, start every
    // iteration.
    let sums = Arc::new(Mutex::new(Vec::new()));
    let s2 = sums.clone();
    run_mpi(2, move |ctx, comm| {
        let me = comm.rank();
        let peer = 1 - me;
        let sbuf = comm.alloc(1024).unwrap();
        let rbuf = comm.alloc(1024).unwrap();
        let psend = comm.send_init(&sbuf, peer, 4);
        let precv = comm.recv_init(&rbuf, Src::Rank(peer), TagSel::Tag(4));
        let mut acc = 0u64;
        for iter in 0..10u8 {
            comm.write(&sbuf, 0, &[iter * 2 + me as u8; 1024]);
            let reqs = comm.startall(ctx, &[&precv, &psend]).unwrap();
            comm.waitall(ctx, &reqs).unwrap();
            acc += comm.read_vec(&rbuf)[0] as u64;
        }
        s2.lock().push((me, acc));
    });
    let mut sums = sums.lock().clone();
    sums.sort();
    // Rank 0 receives iter*2+1 each iteration: sum = 2*(0+..+9) + 10 = 100.
    // Rank 1 receives iter*2+0: sum = 90.
    assert_eq!(sums, vec![(0, 100), (1, 90)]);
}

#[test]
fn persistent_request_can_restart_after_wait() {
    run_mpi(2, move |ctx, comm| {
        let me = comm.rank();
        let buf = comm.alloc(64).unwrap();
        if me == 0 {
            let p = comm.send_init(&buf, 1, 1);
            for _ in 0..3 {
                let r = comm.start(ctx, &p).unwrap();
                comm.wait(ctx, r).unwrap();
            }
        } else {
            let p = comm.recv_init(&buf, Src::Rank(0), TagSel::Tag(1));
            for _ in 0..3 {
                let r = comm.start(ctx, &p).unwrap();
                comm.wait(ctx, r).unwrap();
            }
        }
    });
}

#[test]
fn scan_computes_inclusive_prefix_sums() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(5, move |ctx, comm| {
        let buf = comm.alloc(8).unwrap();
        comm.write(&buf, 0, &((comm.rank() + 1) as i64).to_le_bytes());
        scan(comm, ctx, &buf, Datatype::I64, ReduceOp::Sum).unwrap();
        let v = i64::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
        g2.lock().push((comm.rank(), v));
    });
    let mut got = got.lock().clone();
    got.sort();
    // Prefix sums of 1,2,3,4,5.
    assert_eq!(got, vec![(0, 1), (1, 3), (2, 6), (3, 10), (4, 15)]);
}

#[test]
fn scan_max_vector() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(4, move |ctx, comm| {
        // Element 0 rises with rank, element 1 falls.
        let buf = comm.alloc(16).unwrap();
        let mut bytes = (comm.rank() as i64).to_le_bytes().to_vec();
        bytes.extend_from_slice(&(10 - comm.rank() as i64).to_le_bytes());
        comm.write(&buf, 0, &bytes);
        scan(comm, ctx, &buf, Datatype::I64, ReduceOp::Max).unwrap();
        let out = comm.read_vec(&buf);
        let a = i64::from_le_bytes(out[..8].try_into().unwrap());
        let b = i64::from_le_bytes(out[8..].try_into().unwrap());
        g2.lock().push((comm.rank(), a, b));
    });
    let mut got = got.lock().clone();
    got.sort();
    for (r, a, b) in got {
        assert_eq!(a, r as i64, "rising element: running max is own value");
        assert_eq!(b, 10, "falling element: running max is rank 0's 10");
    }
}
