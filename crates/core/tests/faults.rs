//! Fault-injection tests for the fault-tolerant data path: transient
//! faults must heal invisibly through retry/backoff, fatal faults must
//! fail exactly the owning request (NACKing the peer) while every other
//! transfer completes, and the protocol auditor must stay clean through
//! recovery — no rank ever panics.

use std::sync::Arc;

use dcfa_mpi::{
    launch, Comm, Communicator, LaunchOpts, MpiConfig, MpiError, Src, StatsReport, TagSel,
    TraceBuf, TraceEvent, TransportOp,
};
use fabric::{Cluster, ClusterConfig, LinkFault, LinkFaultKind, NodeId};
use parking_lot::Mutex;
use proptest::prelude::*;
use scif::ScifFabric;
use simcore::{Ctx, SimDuration, Simulation};
use verbs::{FaultPlan, IbFabric, SendOpcode, WcStatus};

/// Run `nprocs` ranks with the given device fault plans and link faults
/// armed before launch; returns the audited protocol event stream.
fn run_faulted<F>(
    cfg: MpiConfig,
    nprocs: usize,
    plans: Vec<FaultPlan>,
    links: Vec<LinkFault>,
    f: F,
) -> Vec<TraceEvent>
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    for lf in links {
        cluster.inject_link_fault(lf);
    }
    let ib = IbFabric::new(cluster.clone());
    for p in plans {
        ib.inject_fault_plan(p);
    }
    let scif = ScifFabric::new(cluster);
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    };
    launch(&sim, &ib, &scif, cfg, nprocs, opts, f);
    sim.run_expect();
    tracer.snapshot()
}

fn assert_audit_clean(events: &[TraceEvent]) -> dcfa_mpi::AuditReport {
    match dcfa_mpi::audit(events) {
        Ok(r) => r,
        Err(errs) => panic!("auditor found {} violations: {errs:#?}", errs.len()),
    }
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

fn report_slot() -> Arc<Mutex<Vec<StatsReport>>> {
    Arc::new(Mutex::new(Vec::new()))
}

// ---- eager path ------------------------------------------------------------

#[test]
fn eager_transient_fault_recovers_invisibly() {
    // First ring write by rank 0 completes with RNR-retry-exceeded; the
    // engine must re-post it and the message must arrive intact.
    let reports = report_slot();
    let r2 = reports.clone();
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RnrRetryExceeded,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(0)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(1024).unwrap();
            if comm.rank() == 0 {
                for i in 0..4u8 {
                    comm.write(&buf, 0, &pattern(1024, i));
                    comm.send(ctx, &buf, 1, 10).unwrap();
                }
                r2.lock().push(comm.dump());
            } else {
                for i in 0..4u8 {
                    let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(10)).unwrap();
                    assert_eq!(st.len, 1024);
                    assert_eq!(comm.read_vec(&buf), pattern(1024, i));
                }
            }
        },
    );
    let reports = reports.lock();
    let c = &reports[0].comm;
    assert!(c.wr_faults >= 1, "fault must be observed: {c:?}");
    assert!(c.wr_retries >= 1, "transient fault must be retried: {c:?}");
    assert_eq!(c.transport_failures, 0, "nothing may fail: {c:?}");
    let report = assert_audit_clean(&events);
    assert!(report.wr_retries >= 1);
}

#[test]
fn eager_fatal_fault_fails_only_the_owning_request() {
    // The first eager write (tag 1) dies permanently. The sender's wait
    // must return Transport, the receiver's matching recv RemoteTransport,
    // and the follow-up message (tag 2) must sail through untouched.
    let outcomes: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = outcomes.clone();
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RemoteAccessError,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(0)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(512).unwrap();
            if comm.rank() == 0 {
                comm.write(&buf, 0, &pattern(512, 1));
                let err = comm.send(ctx, &buf, 1, 1).unwrap_err();
                assert!(
                    matches!(
                        err,
                        MpiError::Transport {
                            op: TransportOp::EagerWrite,
                            ..
                        }
                    ),
                    "sender error: {err:?}"
                );
                o2.lock().push(format!("send1 {err}"));
                comm.write(&buf, 0, &pattern(512, 2));
                comm.send(ctx, &buf, 1, 2).unwrap();
                o2.lock().push("send2 ok".into());
            } else {
                let err = comm
                    .recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1))
                    .unwrap_err();
                assert!(
                    matches!(err, MpiError::RemoteTransport { peer: 0, .. }),
                    "receiver error: {err:?}"
                );
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(2)).unwrap();
                assert_eq!(comm.read_vec(&buf), pattern(512, 2));
            }
        },
    );
    assert_eq!(outcomes.lock().len(), 2);
    let report = assert_audit_clean(&events);
    assert!(report.transport_failures >= 1);
    assert!(report.nacks >= 1, "the dead slot must carry a NACK");
}

// ---- rendezvous RDMA READ (sender-first) -----------------------------------

#[test]
fn rndv_read_fatal_fails_both_ends_then_heals() {
    // The receiver's RDMA READ dies permanently: the receive fails with
    // Transport{RndvRead}, the sender is NACKed into RemoteTransport, and
    // the next transfer over the same pair succeeds.
    let len: u64 = 256 << 10;
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RemoteAccessError,
            op: Some(SendOpcode::RdmaRead),
            initiator: Some(NodeId(1)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(len).unwrap();
            if comm.rank() == 0 {
                comm.write(&buf, 0, &pattern(len as usize, 7));
                let err = comm.send(ctx, &buf, 1, 1).unwrap_err();
                assert!(
                    matches!(err, MpiError::RemoteTransport { peer: 1, .. }),
                    "sender error: {err:?}"
                );
                comm.send(ctx, &buf, 1, 2).unwrap();
            } else {
                // Arrive late so the sender-first (RTS → RDMA READ) path runs.
                ctx.sleep(SimDuration::from_millis(1));
                let err = comm
                    .recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1))
                    .unwrap_err();
                assert!(
                    matches!(
                        err,
                        MpiError::Transport {
                            op: TransportOp::RndvRead,
                            ..
                        }
                    ),
                    "receiver error: {err:?}"
                );
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(2)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 7));
            }
        },
    );
    let report = assert_audit_clean(&events);
    assert!(report.transport_failures >= 1);
    assert!(report.nacks >= 1);
}

// ---- rendezvous RDMA WRITE (receiver-first) --------------------------------

#[test]
fn rndv_write_fatal_fails_both_ends_then_heals() {
    // min_bytes isolates the 64 KiB rendezvous WRITE from the ~8 KiB ring
    // writes. The sender fails with Transport{RndvWrite}; the receiver is
    // NACK-WRITEd into RemoteTransport; the retry transfer succeeds.
    let len: u64 = 64 << 10;
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RemoteAccessError,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(0)),
            min_bytes: 32 << 10,
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(len).unwrap();
            if comm.rank() == 0 {
                // Arrive late so the receiver-first (RTR → RDMA WRITE) path
                // runs; the probes pump progress so the arrived RTR is
                // stashed before isend decides (otherwise the send would go
                // RTS-first and resolve as a simultaneous rendezvous). Two
                // beats: the first serves the receiver's lazy connect
                // request (only then can its queued RTR transmit), the
                // second processes the RTR itself.
                ctx.sleep(SimDuration::from_millis(2));
                let _ = comm.iprobe(ctx, Src::Rank(1), TagSel::Tag(999));
                ctx.sleep(SimDuration::from_millis(1));
                let _ = comm.iprobe(ctx, Src::Rank(1), TagSel::Tag(999));
                comm.write(&buf, 0, &pattern(len as usize, 3));
                let err = comm.send(ctx, &buf, 1, 1).unwrap_err();
                assert!(
                    matches!(
                        err,
                        MpiError::Transport {
                            op: TransportOp::RndvWrite,
                            ..
                        }
                    ),
                    "sender error: {err:?}"
                );
                comm.send(ctx, &buf, 1, 2).unwrap();
            } else {
                let err = comm
                    .recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1))
                    .unwrap_err();
                assert!(
                    matches!(err, MpiError::RemoteTransport { peer: 0, .. }),
                    "receiver error: {err:?}"
                );
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(2)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 3));
            }
        },
    );
    let report = assert_audit_clean(&events);
    assert!(report.transport_failures >= 1);
    assert!(report.nacks >= 1);
}

// ---- control packets (RTR handshake, completion packets) -------------------

#[test]
fn rtr_transient_fault_recovers_invisibly() {
    // The receiver's first ring write is its RTR; fault it transiently.
    let reports = report_slot();
    let r2 = reports.clone();
    let len: u64 = 128 << 10;
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::TransportRetryExceeded,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(1)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(len).unwrap();
            if comm.rank() == 0 {
                ctx.sleep(SimDuration::from_millis(2));
                comm.write(&buf, 0, &pattern(len as usize, 5));
                comm.send(ctx, &buf, 1, 1).unwrap();
            } else {
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 5));
                r2.lock().push(comm.dump());
            }
        },
    );
    let reports = reports.lock();
    let c = &reports[0].comm;
    assert!(c.wr_retries >= 1, "RTR must be retried: {c:?}");
    assert_eq!(c.transport_failures, 0, "nothing may fail: {c:?}");
    assert_audit_clean(&events);
}

#[test]
fn rtr_fatal_fault_fails_the_receive_and_nacks_the_late_sender() {
    // The receiver's RTR dies permanently: its receive fails locally with
    // Transport{CtrlWrite}; when the late sender's RTS for the same pair
    // sequence arrives, it is NACKed into RemoteTransport. The pair stays
    // healthy for the follow-up transfer.
    let len: u64 = 128 << 10;
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RemoteAccessError,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(1)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(len).unwrap();
            if comm.rank() == 0 {
                ctx.sleep(SimDuration::from_millis(2));
                let err = comm.send(ctx, &buf, 1, 1).unwrap_err();
                assert!(
                    matches!(err, MpiError::RemoteTransport { peer: 1, .. }),
                    "sender error: {err:?}"
                );
                comm.write(&buf, 0, &pattern(len as usize, 8));
                comm.send(ctx, &buf, 1, 2).unwrap();
            } else {
                let err = comm
                    .recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1))
                    .unwrap_err();
                assert!(
                    matches!(
                        err,
                        MpiError::Transport {
                            op: TransportOp::CtrlWrite,
                            ..
                        }
                    ),
                    "receiver error: {err:?}"
                );
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(2)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 8));
            }
        },
    );
    let report = assert_audit_clean(&events);
    assert!(report.transport_failures >= 1);
}

#[test]
fn fatal_fault_on_completion_packet_is_retried_not_swallowed() {
    // Regression for the old `CTRL_WR` early return, which silently
    // swallowed every control-write completion error. A faulted DONE (an
    // ownerless completion packet) must be re-posted — dropping it would
    // wedge the sender forever — and the transfer must still complete.
    let reports = report_slot();
    let r2 = reports.clone();
    let len: u64 = 256 << 10;
    let events = run_faulted(
        MpiConfig::dcfa(),
        2,
        vec![FaultPlan {
            status: WcStatus::RemoteAccessError,
            op: Some(SendOpcode::RdmaWrite),
            initiator: Some(NodeId(1)),
            ..Default::default()
        }],
        vec![],
        move |ctx, comm| {
            let buf = comm.alloc(len).unwrap();
            let flush = comm.alloc(64).unwrap();
            if comm.rank() == 0 {
                comm.write(&buf, 0, &pattern(len as usize, 6));
                // This only completes once the receiver's (faulted, then
                // re-posted) DONE arrives.
                comm.send(ctx, &buf, 1, 1).unwrap();
                comm.send(ctx, &flush, 1, 2).unwrap();
            } else {
                // Arrive late: sender-first path, so the receiver's first
                // ring write is its DONE after the RDMA READ. The probe
                // blocks until the sender's RTS is actually here (with
                // lazy connections the pair only establishes once this
                // rank pumps progress, so a fixed sleep no longer
                // guarantees arrival).
                ctx.sleep(SimDuration::from_millis(1));
                comm.probe(ctx, Src::Rank(0), TagSel::Tag(1));
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 6));
                // The local receive completes at RDMA-READ time, before the
                // DONE's error completion even arrives; waiting for the
                // sender's flush keeps the engine progressing through the
                // fault + retry so the counters below are in the snapshot.
                comm.recv(ctx, &flush, Src::Rank(0), TagSel::Tag(2))
                    .unwrap();
                r2.lock().push(comm.dump());
            }
        },
    );
    let reports = reports.lock();
    let c = &reports[0].comm;
    assert!(c.wr_faults >= 1, "the ctrl fault must be observed: {c:?}");
    assert!(
        c.wr_retries >= 1,
        "the ctrl packet must be re-posted: {c:?}"
    );
    assert_eq!(c.transport_failures, 0, "no request may fail: {c:?}");
    assert_audit_clean(&events);
}

// ---- rendezvous handshake watchdog -----------------------------------------

#[test]
fn handshake_timeout_reissues_rts_until_answered() {
    // Shrink the watchdog so it fires while the receiver dawdles. The
    // re-issued RTS copies are deduplicated by pair sequence id and the
    // auditor accepts them via the recorded retransmissions.
    let cfg = MpiConfig {
        rndv_timeout: Some(SimDuration::from_micros(50)),
        ..MpiConfig::dcfa()
    };
    let reports = report_slot();
    let r2 = reports.clone();
    let len: u64 = 64 << 10;
    let events = run_faulted(cfg, 2, vec![], vec![], move |ctx, comm| {
        let buf = comm.alloc(len).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &pattern(len as usize, 4));
            comm.send(ctx, &buf, 1, 1).unwrap();
            r2.lock().push(comm.dump());
        } else {
            ctx.sleep(SimDuration::from_micros(400));
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            assert_eq!(st.len, len);
            assert_eq!(comm.read_vec(&buf), pattern(len as usize, 4));
        }
    });
    let reports = reports.lock();
    let c = &reports[0].comm;
    assert!(
        c.handshake_reissues >= 1,
        "watchdog must have re-issued the RTS: {c:?}"
    );
    let report = assert_audit_clean(&events);
    assert!(report.retransmissions >= 1);
}

// ---- multi-rank soak -------------------------------------------------------

#[test]
fn four_rank_mixed_workload_heals_transient_link_faults() {
    // Several transient link faults sprayed across the fabric during a
    // 4-rank mixed eager + rendezvous + ANY_SOURCE workload: every
    // operation must succeed and the auditor must stay clean.
    let reports = report_slot();
    let r2 = reports.clone();
    let links = vec![
        LinkFault {
            after_ops: 0,
            kind: LinkFaultKind::Rnr,
            from: None,
            to: None,
        },
        LinkFault {
            after_ops: 5,
            kind: LinkFaultKind::Retry,
            from: Some(NodeId(1)),
            to: None,
        },
        LinkFault {
            after_ops: 3,
            kind: LinkFaultKind::Rnr,
            from: None,
            to: Some(NodeId(0)),
        },
    ];
    let events = run_faulted(MpiConfig::dcfa(), 4, vec![], links, move |ctx, comm| {
        let (r, n) = (comm.rank(), comm.size());
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let small = comm.alloc(512).unwrap();
        let srx = comm.alloc(512).unwrap();
        let big = comm.alloc(64 << 10).unwrap();
        for _ in 0..6 {
            let rr = comm
                .irecv(ctx, &srx, Src::Rank(prev), TagSel::Tag(10))
                .unwrap();
            let sr = comm.isend(ctx, &small, next, 10).unwrap();
            comm.waitall(ctx, &[sr, rr]).unwrap();
        }
        let peer = r ^ 1;
        if r % 2 == 0 {
            comm.send(ctx, &big, peer, 20).unwrap();
        } else {
            comm.recv(ctx, &big, Src::Rank(peer), TagSel::Tag(20))
                .unwrap();
        }
        if r == 0 {
            for _ in 1..n {
                comm.recv(ctx, &srx, Src::Any, TagSel::Any).unwrap();
            }
        } else {
            comm.send(ctx, &small, 0, 30).unwrap();
        }
        r2.lock().push(comm.dump());
    });
    let reports = reports.lock();
    assert_eq!(reports.len(), 4);
    let retries: u64 = reports.iter().map(|r| r.comm.wr_retries).sum();
    let failures: u64 = reports.iter().map(|r| r.comm.transport_failures).sum();
    assert!(retries >= 1, "link faults must surface as retries");
    assert_eq!(failures, 0, "transient faults may not fail any request");
    assert_audit_clean(&events);
}

// ---- waitall / waitany regressions -----------------------------------------

#[test]
fn waitall_completes_every_request_despite_an_early_error() {
    // Regression: `waitall` used to `?`-abandon the remaining requests on
    // the first error, leaking their protocol state. A truncated receive
    // in the middle must not stop the healthy ones on either side.
    let done = Arc::new(Mutex::new(false));
    let d2 = done.clone();
    let events = run_faulted(MpiConfig::dcfa(), 2, vec![], vec![], move |ctx, comm| {
        if comm.rank() == 0 {
            let small = comm.alloc(512).unwrap();
            let big = comm.alloc(128 << 10).unwrap();
            comm.write(&small, 0, &pattern(512, 1));
            comm.send(ctx, &small, 1, 1).unwrap();
            comm.send(ctx, &big, 1, 2).unwrap();
            comm.write(&small, 0, &pattern(512, 3));
            comm.send(ctx, &small, 1, 3).unwrap();
            // The engine must not be wedged afterwards.
            comm.recv(ctx, &small, Src::Rank(1), TagSel::Tag(4))
                .unwrap();
        } else {
            let b1 = comm.alloc(512).unwrap();
            let tiny = comm.alloc(4 << 10).unwrap(); // truncates the 128 KiB send
            let b3 = comm.alloc(512).unwrap();
            let r1 = comm.irecv(ctx, &b1, Src::Rank(0), TagSel::Tag(1)).unwrap();
            let r2 = comm
                .irecv(ctx, &tiny, Src::Rank(0), TagSel::Tag(2))
                .unwrap();
            let r3 = comm.irecv(ctx, &b3, Src::Rank(0), TagSel::Tag(3)).unwrap();
            let err = comm.waitall(ctx, &[r1, r2, r3]).unwrap_err();
            assert!(
                matches!(err, MpiError::Truncated { got, capacity }
                    if got == 128 << 10 && capacity == 4 << 10),
                "unexpected waitall error: {err:?}"
            );
            // The healthy requests were driven to completion: their data
            // landed even though waitall reported the truncation.
            assert_eq!(comm.read_vec(&b1), pattern(512, 1));
            assert_eq!(comm.read_vec(&b3), pattern(512, 3));
            comm.send(ctx, &b3, 0, 4).unwrap();
            *d2.lock() = true;
        }
    });
    assert!(*done.lock());
    assert_audit_clean(&events);
}

#[test]
fn waitany_skips_consumed_requests_without_masking_completions() {
    // Regression: request ids absent from the table (already consumed)
    // used to mask real completions. After consuming one request, passing
    // the stale id alongside a live one must still surface the live
    // completion — and an all-consumed set is a `BadRequest` error.
    let done = Arc::new(Mutex::new(false));
    let d2 = done.clone();
    let events = run_faulted(MpiConfig::dcfa(), 2, vec![], vec![], move |ctx, comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(256).unwrap();
            comm.write(&buf, 0, &pattern(256, 2));
            comm.send(ctx, &buf, 1, 2).unwrap();
            ctx.sleep(SimDuration::from_micros(200));
            comm.write(&buf, 0, &pattern(256, 1));
            comm.send(ctx, &buf, 1, 1).unwrap();
        } else {
            let b1 = comm.alloc(256).unwrap();
            let b2 = comm.alloc(256).unwrap();
            let r1 = comm.irecv(ctx, &b1, Src::Rank(0), TagSel::Tag(1)).unwrap();
            let r2 = comm.irecv(ctx, &b2, Src::Rank(0), TagSel::Tag(2)).unwrap();
            // Tag 2 arrives first.
            let (idx, st) = comm.waitany(ctx, &[r1, r2]);
            assert_eq!(idx, 1);
            assert_eq!(st.unwrap().tag, 2);
            // r2 is now consumed; its stale id must not mask r1.
            let (idx, st) = comm.waitany(ctx, &[r1, r2]);
            assert_eq!(idx, 0);
            assert_eq!(st.unwrap().tag, 1);
            assert_eq!(comm.read_vec(&b1), pattern(256, 1));
            // Every id consumed: error, not a hang.
            let (_, st) = comm.waitany(ctx, &[r1, r2]);
            assert!(matches!(st.unwrap_err(), MpiError::BadRequest));
            *d2.lock() = true;
        }
    });
    assert!(*done.lock());
    assert_audit_clean(&events);
}

// ---- property: random transient fault plans never corrupt the stream -------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_transient_faults_never_violate_seq_order(
        faults in proptest::collection::vec(
            (0u64..24, prop_oneof![Just(LinkFaultKind::Rnr), Just(LinkFaultKind::Retry)]),
            1..6,
        )
    ) {
        // A generous retry budget so stacked fault plans draining onto one
        // re-posted WR can never exhaust it (each plan is one-shot).
        let cfg = MpiConfig { retry_limit: 16, ..MpiConfig::dcfa() };
        let links = faults
            .iter()
            .map(|&(after_ops, kind)| LinkFault { after_ops, kind, from: None, to: None })
            .collect();
        let events = run_faulted(cfg, 2, vec![], links, move |ctx, comm| {
            let peer = 1 - comm.rank();
            let small = comm.alloc(512).unwrap();
            let srx = comm.alloc(512).unwrap();
            let big = comm.alloc(32 << 10).unwrap();
            let brx = comm.alloc(32 << 10).unwrap();
            for tag in 0..5u32 {
                let rr = comm.irecv(ctx, &srx, Src::Rank(peer), TagSel::Tag(tag)).unwrap();
                let sr = comm.isend(ctx, &small, peer, tag).unwrap();
                comm.waitall(ctx, &[sr, rr]).unwrap();
            }
            let rr = comm.irecv(ctx, &brx, Src::Rank(peer), TagSel::Tag(99)).unwrap();
            let sr = comm.isend(ctx, &big, peer, 99).unwrap();
            comm.waitall(ctx, &[sr, rr]).unwrap();
        });
        // run_expect already proved termination; the audit proves per-pair
        // sequence monotonicity and exactly-once delivery under retry.
        match dcfa_mpi::audit(&events) {
            Ok(_) => {}
            Err(errs) => prop_assert!(false, "audit violations: {errs:#?}"),
        }
    }
}
