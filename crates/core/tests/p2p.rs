//! Point-to-point protocol tests: eager, all three rendezvous flavours,
//! sequence ids, ANY_SOURCE locking, mis-predictions, ordering, and the
//! offloading send buffer — on both Phi (DCFA-MPI) and Host (YAMPII)
//! placements.

use std::sync::Arc;

use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, MpiError, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, SimDuration, Simulation};
use verbs::IbFabric;

struct Rig {
    sim: Simulation,
    ib: Arc<IbFabric>,
    scif: Arc<ScifFabric>,
}

fn rig(nodes: usize) -> Rig {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nodes));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    Rig { sim, ib, scif }
}

fn run_mpi<F>(cfg: MpiConfig, nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut r = rig(nprocs.max(2));
    launch(
        &r.sim,
        &r.ib,
        &r.scif,
        cfg,
        nprocs,
        LaunchOpts::default(),
        f,
    );
    r.sim.run_expect();
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// Send sizes crossing the eager, offload and rendezvous regimes.
fn roundtrip_size(cfg: MpiConfig, len: u64) {
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    run_mpi(cfg, 2, move |ctx, comm| {
        let buf = comm.alloc(len).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &pattern(len as usize, 3));
            comm.send(ctx, &buf, 1, 42).unwrap();
        } else {
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(42)).unwrap();
            assert_eq!(st.len, len);
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 42);
            assert_eq!(comm.read_vec(&buf), pattern(len as usize, 3));
            *ok2.lock() = true;
        }
    });
    assert!(*ok.lock());
}

#[test]
fn eager_roundtrip_phi() {
    roundtrip_size(MpiConfig::dcfa(), 4);
    roundtrip_size(MpiConfig::dcfa(), 1024);
    roundtrip_size(MpiConfig::dcfa(), 16 << 10); // exactly at threshold
}

#[test]
fn rndv_roundtrip_phi() {
    roundtrip_size(MpiConfig::dcfa(), (16 << 10) + 1);
    roundtrip_size(MpiConfig::dcfa(), 1 << 20);
}

#[test]
fn rndv_roundtrip_phi_no_offload() {
    roundtrip_size(MpiConfig::dcfa_no_offload(), 1 << 20);
}

#[test]
fn roundtrips_host_placement() {
    roundtrip_size(MpiConfig::host(), 4);
    roundtrip_size(MpiConfig::host(), 1 << 20);
}

#[test]
fn receiver_first_rendezvous() {
    // Receiver posts early (RTR path): sender arrives late, RDMA-writes.
    let done = Arc::new(Mutex::new(false));
    let d2 = done.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let len = 256 << 10;
        let buf = comm.alloc(len).unwrap();
        if comm.rank() == 0 {
            // Late sender.
            ctx.sleep(SimDuration::from_millis(2));
            comm.write(&buf, 0, &pattern(len as usize, 9));
            comm.send(ctx, &buf, 1, 5).unwrap();
        } else {
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(5)).unwrap();
            assert_eq!(st.len, len);
            assert_eq!(comm.read_vec(&buf), pattern(len as usize, 9));
            *d2.lock() = true;
        }
    });
    assert!(*done.lock());
}

#[test]
fn sender_first_rendezvous() {
    // Sender posts early (RTS sits unexpected), receiver arrives late and
    // RDMA-reads.
    let done = Arc::new(Mutex::new(false));
    let d2 = done.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let len = 256 << 10;
        let buf = comm.alloc(len).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &pattern(len as usize, 11));
            comm.send(ctx, &buf, 1, 5).unwrap();
        } else {
            ctx.sleep(SimDuration::from_millis(2));
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(5)).unwrap();
            assert_eq!(st.len, len);
            assert_eq!(comm.read_vec(&buf), pattern(len as usize, 11));
            *d2.lock() = true;
        }
    });
    assert!(*done.lock());
}

#[test]
fn simultaneous_rendezvous() {
    // Both sides send large messages to each other at the same instant via
    // non-blocking ops; both RTS and RTR cross on the wire.
    let done = Arc::new(Mutex::new(0u32));
    let d2 = done.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let len = 512 << 10;
        let sbuf = comm.alloc(len).unwrap();
        let rbuf = comm.alloc(len).unwrap();
        let me = comm.rank();
        let peer = 1 - me;
        comm.write(&sbuf, 0, &pattern(len as usize, me as u8));
        let rr = comm
            .irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Tag(1))
            .unwrap();
        let sr = comm.isend(ctx, &sbuf, peer, 1).unwrap();
        comm.wait(ctx, sr).unwrap();
        let st = comm.wait(ctx, rr).unwrap();
        assert_eq!(st.len, len);
        assert_eq!(comm.read_vec(&rbuf), pattern(len as usize, peer as u8));
        *d2.lock() += 1;
    });
    assert_eq!(*done.lock(), 2);
}

#[test]
fn message_ordering_same_tag() {
    // MPI guarantees order between a pair for the same tag.
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let n = 20;
        if comm.rank() == 0 {
            for i in 0..n {
                let buf = comm.alloc(64).unwrap();
                comm.write(&buf, 0, &[i as u8; 64]);
                comm.send(ctx, &buf, 1, 9).unwrap();
            }
        } else {
            for _ in 0..n {
                let buf = comm.alloc(64).unwrap();
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(9)).unwrap();
                g2.lock().push(comm.read_vec(&buf)[0]);
            }
        }
    });
    assert_eq!(*got.lock(), (0..20u8).collect::<Vec<_>>());
}

#[test]
fn tag_selective_matching_eager() {
    // Two eager messages with different tags; receiver takes tag 2 first.
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        if comm.rank() == 0 {
            for tag in [1u32, 2u32] {
                let buf = comm.alloc(8).unwrap();
                comm.write(&buf, 0, &[tag as u8; 8]);
                comm.send(ctx, &buf, 1, tag).unwrap();
            }
        } else {
            // Let both arrive into the unexpected queue.
            ctx.sleep(SimDuration::from_millis(1));
            let buf = comm.alloc(8).unwrap();
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(2)).unwrap();
            g2.lock().push((st.tag, comm.read_vec(&buf)[0]));
            let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            g2.lock().push((st.tag, comm.read_vec(&buf)[0]));
        }
    });
    assert_eq!(*got.lock(), vec![(2, 2), (1, 1)]);
}

#[test]
fn any_source_receives() {
    // Rank 2 receives from both peers with ANY_SOURCE.
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(MpiConfig::dcfa(), 3, move |ctx, comm| {
        if comm.rank() < 2 {
            let buf = comm.alloc(32).unwrap();
            comm.write(&buf, 0, &[comm.rank() as u8 + 1; 32]);
            comm.send(ctx, &buf, 2, 4).unwrap();
        } else {
            for _ in 0..2 {
                let buf = comm.alloc(32).unwrap();
                let st = comm.recv(ctx, &buf, Src::Any, TagSel::Tag(4)).unwrap();
                g2.lock().push((st.source, comm.read_vec(&buf)[0]));
            }
        }
    });
    let mut got = got.lock().clone();
    got.sort();
    assert_eq!(got, vec![(0, 1), (1, 2)]);
}

#[test]
fn any_source_locks_later_receives() {
    // Paper §IV-B3: an unmatched ANY_SOURCE receive blocks sequence
    // assignment; once it matches, the locked receives proceed.
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(MpiConfig::dcfa(), 3, move |ctx, comm| {
        match comm.rank() {
            0 => {
                // Wait, then satisfy the ANY recv.
                ctx.sleep(SimDuration::from_millis(3));
                let buf = comm.alloc(16).unwrap();
                comm.write(&buf, 0, &[0xAA; 16]);
                comm.send(ctx, &buf, 2, 7).unwrap();
            }
            1 => {
                // This arrives while the ANY recv is still unmatched; the
                // specific recv for it is locked behind the ANY.
                ctx.sleep(SimDuration::from_millis(1));
                let buf = comm.alloc(16).unwrap();
                comm.write(&buf, 0, &[0xBB; 16]);
                comm.send(ctx, &buf, 2, 8).unwrap();
            }
            _ => {
                let b1 = comm.alloc(16).unwrap();
                let b2 = comm.alloc(16).unwrap();
                let any = comm.irecv(ctx, &b1, Src::Any, TagSel::Tag(7)).unwrap();
                let specific = comm.irecv(ctx, &b2, Src::Rank(1), TagSel::Tag(8)).unwrap();
                let st1 = comm.wait(ctx, any).unwrap();
                let st2 = comm.wait(ctx, specific).unwrap();
                g2.lock().push((st1.source, comm.read_vec(&b1)[0]));
                g2.lock().push((st2.source, comm.read_vec(&b2)[0]));
            }
        }
    });
    assert_eq!(*got.lock(), vec![(0, 0xAA), (1, 0xBB)]);
}

#[test]
fn truncation_is_an_error() {
    // Rendezvous message bigger than the receive buffer => MPI error on
    // the receiver (paper's sender-rendezvous / receiver-eager case).
    let saw_error = Arc::new(Mutex::new(false));
    let s2 = saw_error.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(128 << 10).unwrap();
            comm.send(ctx, &buf, 1, 3).unwrap();
        } else {
            let small = comm.alloc(4 << 10).unwrap();
            let err = comm
                .recv(ctx, &small, Src::Rank(0), TagSel::Tag(3))
                .unwrap_err();
            assert!(matches!(err, MpiError::Truncated { got, capacity }
                if got == 128 << 10 && capacity == 4 << 10));
            *s2.lock() = true;
        }
    });
    assert!(*saw_error.lock());
}

#[test]
fn eager_mispredict_receiver_expected_rendezvous() {
    // Receiver posts a LARGE buffer (sends RTR); sender sends a SMALL
    // (eager) message. Receiver must complete from the eager packet and
    // the sender must drop the stale RTR.
    let done = Arc::new(Mutex::new(false));
    let d2 = done.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        if comm.rank() == 0 {
            ctx.sleep(SimDuration::from_millis(1)); // let the RTR arrive first
            let buf = comm.alloc(64).unwrap();
            comm.write(&buf, 0, &pattern(64, 5));
            comm.send(ctx, &buf, 1, 6).unwrap();
            // Follow-up message proves the engine isn't wedged by the
            // stale RTR.
            comm.send(ctx, &buf, 1, 7).unwrap();
        } else {
            let big = comm.alloc(256 << 10).unwrap();
            let st = comm.recv(ctx, &big, Src::Rank(0), TagSel::Tag(6)).unwrap();
            assert_eq!(st.len, 64);
            assert_eq!(comm.read_vec(&big)[..64], pattern(64, 5)[..]);
            let buf = comm.alloc(64).unwrap();
            comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(7)).unwrap();
            *d2.lock() = true;
        }
    });
    assert!(*done.lock());
}

#[test]
fn many_outstanding_isends_flow_control() {
    // More eager messages in flight than ring slots: the credit protocol
    // must keep things moving.
    let count = Arc::new(Mutex::new(0u32));
    let c2 = count.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let n = 300usize; // >> 64 ring slots
        if comm.rank() == 0 {
            let buf = comm.alloc(512).unwrap();
            let mut reqs = Vec::new();
            for i in 0..n {
                comm.write(&buf, 0, &[(i % 251) as u8; 512]);
                reqs.push(comm.isend(ctx, &buf, 1, 1).unwrap());
            }
            comm.waitall(ctx, &reqs).unwrap();
        } else {
            let buf = comm.alloc(512).unwrap();
            for _ in 0..n {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                *c2.lock() += 1;
            }
        }
    });
    assert_eq!(*count.lock(), 300);
}

#[test]
fn bidirectional_flood_no_deadlock() {
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let n = 150usize;
        let peer = 1 - comm.rank();
        let sbuf = comm.alloc(1024).unwrap();
        let rbuf = comm.alloc(1024).unwrap();
        let mut reqs = Vec::new();
        for _ in 0..n {
            reqs.push(
                comm.irecv(ctx, &rbuf, Src::Rank(peer), TagSel::Any)
                    .unwrap(),
            );
            reqs.push(comm.isend(ctx, &sbuf, peer, 2).unwrap());
        }
        comm.waitall(ctx, &reqs).unwrap();
    });
}

#[test]
fn sendrecv_exchange() {
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let me = comm.rank();
        let peer = 1 - me;
        let sbuf = comm.alloc(10 << 10).unwrap();
        let rbuf = comm.alloc(10 << 10).unwrap();
        comm.write(&sbuf, 0, &pattern(10 << 10, me as u8));
        comm.sendrecv(ctx, &sbuf, peer, &rbuf, peer, 77).unwrap();
        assert_eq!(comm.read_vec(&rbuf), pattern(10 << 10, peer as u8));
    });
}

#[test]
fn deterministic_virtual_times() {
    // The same program must produce bit-identical completion times.
    fn run_once() -> u64 {
        let out = Arc::new(Mutex::new(0u64));
        let o2 = out.clone();
        run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
            let buf = comm.alloc(32 << 10).unwrap();
            if comm.rank() == 0 {
                comm.send(ctx, &buf, 1, 1).unwrap();
            } else {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
                *o2.lock() = ctx.now().as_nanos();
            }
        });
        let v = *out.lock();
        v
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn eight_rank_ring_pass() {
    // Token passes around an 8-node ring (the paper's cluster size).
    let sum = Arc::new(Mutex::new(0u64));
    let s2 = sum.clone();
    run_mpi(MpiConfig::dcfa(), 8, move |ctx, comm| {
        let me = comm.rank();
        let n = comm.size();
        let buf = comm.alloc(8).unwrap();
        if me == 0 {
            comm.write(&buf, 0, &1u64.to_le_bytes());
            comm.send(ctx, &buf, 1, 0).unwrap();
            comm.recv(ctx, &buf, Src::Rank(n - 1), TagSel::Tag(0))
                .unwrap();
            let v = u64::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
            *s2.lock() = v;
        } else {
            comm.recv(ctx, &buf, Src::Rank(me - 1), TagSel::Tag(0))
                .unwrap();
            let mut v = u64::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
            v += me as u64;
            comm.write(&buf, 0, &v.to_le_bytes());
            comm.send(ctx, &buf, (me + 1) % n, 0).unwrap();
        }
    });
    assert_eq!(*sum.lock(), 1 + (1..8u64).sum::<u64>());
}

#[test]
fn mr_cache_hits_on_reuse() {
    let stats = Arc::new(Mutex::new((0u64, 0u64)));
    let s2 = stats.clone();
    run_mpi(MpiConfig::dcfa_no_offload(), 2, move |ctx, comm| {
        let buf = comm.alloc(1 << 20).unwrap();
        if comm.rank() == 0 {
            for _ in 0..10 {
                comm.send(ctx, &buf, 1, 1).unwrap();
            }
            *s2.lock() = comm.mr_cache_stats();
        } else {
            for _ in 0..10 {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            }
        }
    });
    let (hits, _misses) = *stats.lock();
    assert!(
        hits >= 9,
        "reused buffer should hit the MR cache: {stats:?}"
    );
}

#[test]
fn offload_cache_hits_on_reuse() {
    let stats = Arc::new(Mutex::new((0u64, 0u64)));
    let s2 = stats.clone();
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let buf = comm.alloc(1 << 20).unwrap();
        if comm.rank() == 0 {
            for _ in 0..5 {
                comm.send(ctx, &buf, 1, 1).unwrap();
            }
            *s2.lock() = comm.offload_cache_stats();
        } else {
            for _ in 0..5 {
                comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            }
        }
    });
    let (hits, misses) = *stats.lock();
    assert_eq!(misses, 1);
    assert!(hits >= 4);
}

#[test]
fn self_and_out_of_range_ranks_rejected() {
    run_mpi(MpiConfig::dcfa(), 2, move |ctx, comm| {
        let buf = comm.alloc(8).unwrap();
        assert!(matches!(
            comm.isend(ctx, &buf, comm.rank(), 0),
            Err(MpiError::BadRank(_))
        ));
        assert!(matches!(
            comm.isend(ctx, &buf, 99, 0),
            Err(MpiError::BadRank(99))
        ));
        assert!(matches!(
            comm.irecv(ctx, &buf, Src::Rank(99), TagSel::Any),
            Err(MpiError::BadRank(99))
        ));
    });
}
