//! Property tests for the latency-histogram math in `metrics`: merging
//! two snapshots must behave like pooling their samples — counts and sums
//! add, min/max combine, and every percentile of the merge is bracketed by
//! the element-wise min/max of the parts' percentiles (the merged CDF is a
//! count-weighted mixture of the parts' CDFs, so its inverse cannot escape
//! the envelope of the two inverses).
//!
//! One refinement: `percentile` clamps its interpolation to each
//! snapshot's observed `[min, max]` (a percentile of real samples can
//! never escape them — see the hardening notes on
//! `HistogramSnapshot::percentile`). The clamp bound is data-dependent,
//! so when it engages for one of the three snapshots at some `p` the
//! pure-mixture envelope no longer applies at that point; the tests below
//! fall back to the clamp's own guarantee — the merged percentile stays
//! inside the merged observed range — and assert the strict envelope
//! whenever no clamp was active.

use dcfa_mpi::HistogramSnapshot;
use proptest::prelude::*;

/// Latencies spanning several log2 buckets, biased toward the small end
/// the way real span durations are.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![1u64..64, 64u64..4096, 4096u64..1_048_576,]
}

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(sample_strategy(), 1..200)
}

const EPS: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_percentiles_bracketed_by_parts(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let sa = HistogramSnapshot::from_samples(&a);
        let sb = HistogramSnapshot::from_samples(&b);
        let merged = sa.merge(&sb);

        prop_assert_eq!(merged.count, sa.count + sb.count);
        prop_assert_eq!(merged.sum, sa.sum + sb.sum);
        prop_assert_eq!(merged.min, sa.min.min(sb.min));
        prop_assert_eq!(merged.max, sa.max.max(sb.max));

        let clamped = |s: &HistogramSnapshot, v: f64| {
            (v - s.min as f64).abs() < EPS || (v - s.max as f64).abs() < EPS
        };
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let pa = sa.percentile(p);
            let pb = sb.percentile(p);
            let pm = merged.percentile(p);
            // The clamp's guarantee holds unconditionally: the merged
            // percentile never escapes the merged observed range.
            prop_assert!(
                pm >= merged.min as f64 - EPS && pm <= merged.max as f64 + EPS,
                "p{:.0}: merged {} outside observed [{}, {}]",
                p, pm, merged.min, merged.max
            );
            // The mixture envelope holds whenever no snapshot's clamp was
            // active at this p (a value sitting exactly on its snapshot's
            // min/max may have been clamped there, shrinking the parts'
            // envelope below what the raw mixture argument covers).
            if clamped(&sa, pa) || clamped(&sb, pb) || clamped(&merged, pm) {
                continue;
            }
            let lo = pa.min(pb);
            let hi = pa.max(pb);
            prop_assert!(
                pm >= lo - EPS && pm <= hi + EPS,
                "p{:.0}: merged {} outside [{}, {}]",
                p, pm, lo, hi
            );
        }
    }

    #[test]
    fn merge_is_commutative(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let sa = HistogramSnapshot::from_samples(&a);
        let sb = HistogramSnapshot::from_samples(&b);
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_with_empty_is_identity(a in samples_strategy()) {
        let sa = HistogramSnapshot::from_samples(&a);
        let empty = HistogramSnapshot::from_samples(&[]);
        prop_assert_eq!(sa.merge(&empty), sa);
    }

    #[test]
    fn percentiles_are_monotone_in_p(a in samples_strategy()) {
        let s = HistogramSnapshot::from_samples(&a);
        let qs: Vec<f64> = (0..=20).map(|i| s.percentile(i as f64 * 5.0)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[1] >= w[0] - EPS, "percentile not monotone: {:?}", w);
        }
    }
}
