//! Tests for the extended request-management API (probe/iprobe, waitany)
//! and the protocol telemetry counters.

use std::sync::Arc;

use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, SimDuration, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn probe_reports_envelope_without_consuming() {
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    run_mpi(2, move |ctx, comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(300).unwrap();
            comm.write(&buf, 0, &[7u8; 300]);
            comm.send(ctx, &buf, 1, 9).unwrap();
        } else {
            // Blocking probe sees the message before any receive is posted.
            let st = comm.probe(ctx, Src::Rank(0), TagSel::Tag(9));
            assert_eq!(st.len, 300);
            assert_eq!(st.source, 0);
            assert_eq!(st.tag, 9);
            // Probe again: still there (not consumed).
            assert!(comm.iprobe(ctx, Src::Rank(0), TagSel::Tag(9)).is_some());
            // Allocate exactly the probed size, then receive.
            let buf = comm.alloc(st.len).unwrap();
            let st2 = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(9)).unwrap();
            assert_eq!(st2.len, 300);
            // Now it's gone.
            assert!(comm.iprobe(ctx, Src::Rank(0), TagSel::Tag(9)).is_none());
            *ok2.lock() = true;
        }
    });
    assert!(*ok.lock());
}

#[test]
fn iprobe_none_when_nothing_pending() {
    run_mpi(2, move |ctx, comm| {
        if comm.rank() == 1 {
            assert!(comm.iprobe(ctx, Src::Any, TagSel::Any).is_none());
        }
    });
}

#[test]
fn probe_sees_rendezvous_rts_envelope() {
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    run_mpi(2, move |ctx, comm| {
        let len = 256 << 10;
        if comm.rank() == 0 {
            let buf = comm.alloc(len).unwrap();
            comm.send(ctx, &buf, 1, 3).unwrap();
        } else {
            let st = comm.probe(ctx, Src::Any, TagSel::Any);
            assert_eq!(st.len, len);
            let buf = comm.alloc(len).unwrap();
            comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(3)).unwrap();
            *ok2.lock() = true;
        }
    });
    assert!(*ok.lock());
}

#[test]
fn waitany_returns_first_completion() {
    let order = Arc::new(Mutex::new(Vec::new()));
    let o2 = order.clone();
    run_mpi(3, move |ctx, comm| {
        match comm.rank() {
            0 => {
                // Rank 1 answers fast, rank 2 slow.
                let b1 = comm.alloc(64).unwrap();
                let b2 = comm.alloc(64).unwrap();
                let r1 = comm.irecv(ctx, &b1, Src::Rank(1), TagSel::Tag(1)).unwrap();
                let r2 = comm.irecv(ctx, &b2, Src::Rank(2), TagSel::Tag(2)).unwrap();
                let reqs = [r2, r1];
                let (idx, st) = comm.waitany(ctx, &reqs);
                o2.lock().push((idx, st.unwrap().source));
                let (idx2, st2) = comm.waitany(ctx, &[reqs[0]]);
                o2.lock().push((idx2, st2.unwrap().source));
            }
            1 => {
                let buf = comm.alloc(64).unwrap();
                comm.send(ctx, &buf, 0, 1).unwrap();
            }
            _ => {
                ctx.sleep(SimDuration::from_millis(2));
                let buf = comm.alloc(64).unwrap();
                comm.send(ctx, &buf, 0, 2).unwrap();
            }
        }
    });
    // First completion is rank 1 (index 1 in [r2, r1]), then rank 2.
    assert_eq!(*order.lock(), vec![(1, 1), (0, 2)]);
}

#[test]
fn stats_count_protocols_and_bytes() {
    let stats = Arc::new(Mutex::new(None));
    let s2 = stats.clone();
    run_mpi(2, move |ctx, comm| {
        let small = comm.alloc(512).unwrap();
        let large = comm.alloc(64 << 10).unwrap();
        if comm.rank() == 0 {
            comm.send(ctx, &small, 1, 1).unwrap(); // eager
            comm.send(ctx, &large, 1, 1).unwrap(); // rndv + offload sync
            comm.send(ctx, &small, 1, 1).unwrap(); // eager
            *s2.lock() = Some(comm.stats());
        } else {
            comm.recv(ctx, &small, Src::Rank(0), TagSel::Tag(1))
                .unwrap();
            comm.recv(ctx, &large, Src::Rank(0), TagSel::Tag(1))
                .unwrap();
            comm.recv(ctx, &small, Src::Rank(0), TagSel::Tag(1))
                .unwrap();
        }
    });
    let st = stats.lock().unwrap();
    assert_eq!(st.eager_sends, 2);
    assert_eq!(st.rndv_sends, 1);
    assert_eq!(st.offload_syncs, 1);
    assert_eq!(st.bytes_sent, 512 + (64 << 10) + 512);
    // Sender processes DONE (and possibly CREDIT) packets.
    assert!(st.packets_processed >= 1);
}

#[test]
fn receiver_stats_count_bytes_received() {
    let stats = Arc::new(Mutex::new(None));
    let s2 = stats.clone();
    run_mpi(2, move |ctx, comm| {
        let buf = comm.alloc(100 << 10).unwrap();
        if comm.rank() == 0 {
            comm.send(ctx, &buf, 1, 1).unwrap();
            comm.send(ctx, &buf.slice(0, 100), 1, 1).unwrap();
        } else {
            comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(1)).unwrap();
            comm.recv(ctx, &buf.slice(0, 100), Src::Rank(0), TagSel::Tag(1))
                .unwrap();
            *s2.lock() = Some(comm.stats());
        }
    });
    let st = stats.lock().unwrap();
    assert_eq!(st.bytes_received, (100 << 10) + 100);
    assert_eq!(st.bytes_sent, 0);
}

#[test]
fn stale_rtr_counter_increments_on_mispredict() {
    let stats = Arc::new(Mutex::new(None));
    let s2 = stats.clone();
    run_mpi(2, move |ctx, comm| {
        if comm.rank() == 0 {
            // Let the RTR arrive before our (small, eager) send.
            ctx.sleep(SimDuration::from_millis(1));
            let small = comm.alloc(64).unwrap();
            comm.send(ctx, &small, 1, 6).unwrap();
            // Drain the stale RTR with one more blocking exchange.
            comm.send(ctx, &small, 1, 7).unwrap();
            *s2.lock() = Some(comm.stats());
        } else {
            let big = comm.alloc(256 << 10).unwrap();
            comm.recv(ctx, &big, Src::Rank(0), TagSel::Tag(6)).unwrap();
            let small = comm.alloc(64).unwrap();
            comm.recv(ctx, &small, Src::Rank(0), TagSel::Tag(7))
                .unwrap();
        }
    });
    let st = stats.lock().unwrap();
    assert_eq!(st.stale_rtrs_dropped, 1, "{st:?}");
}
