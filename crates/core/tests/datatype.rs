//! Derived-datatype tests: pack/unpack correctness over the full MPI path
//! (column halos, indexed layouts, typed send/recv).

use std::sync::Arc;

use dcfa_mpi::datatype::{pack, recv_typed, send_typed, unpack, Layout};
use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[test]
fn pack_unpack_roundtrip_vector() {
    run_mpi(1, |ctx, comm| {
        // 8x8 matrix of u64-sized cells; extract column 3.
        let base = comm.alloc(8 * 8 * 8).unwrap();
        for r in 0..8u64 {
            for c in 0..8u64 {
                comm.write(&base, (r * 8 + c) * 8, &(r * 100 + c).to_le_bytes());
            }
        }
        let col = Layout::column(3, 8, 8, 8);
        let stage = comm.alloc(col.packed_len()).unwrap();
        pack(ctx, comm, &base, &col, &stage);
        let packed = comm.read_vec(&stage);
        for r in 0..8usize {
            let v = u64::from_le_bytes(packed[r * 8..(r + 1) * 8].try_into().unwrap());
            assert_eq!(v, r as u64 * 100 + 3);
        }
        // Unpack into column 5 of a fresh matrix.
        let dst = comm.alloc(8 * 8 * 8).unwrap();
        let col5 = Layout::column(5, 8, 8, 8);
        unpack(ctx, comm, &stage, &col5, &dst);
        let all = comm.read_vec(&dst);
        for r in 0..8usize {
            let v = u64::from_le_bytes(all[(r * 8 + 5) * 8..(r * 8 + 6) * 8].try_into().unwrap());
            assert_eq!(v, r as u64 * 100 + 3);
            // Other columns untouched (zero).
            let v0 = u64::from_le_bytes(all[(r * 8) * 8..(r * 8 + 1) * 8].try_into().unwrap());
            assert_eq!(v0, 0);
        }
    });
}

#[test]
fn column_halo_exchange_between_ranks() {
    // Rank 0 sends its rightmost column; rank 1 receives it into its
    // leftmost column — the classic 2-D column-halo pattern the paper's
    // user-defined-datatype future work targets.
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    run_mpi(2, move |ctx, comm| {
        let (rows, cols, elem) = (16u64, 10u64, 8u64);
        let grid = comm.alloc(rows * cols * elem).unwrap();
        if comm.rank() == 0 {
            for r in 0..rows {
                comm.write(
                    &grid,
                    (r * cols + (cols - 1)) * elem,
                    &(7000 + r).to_le_bytes(),
                );
            }
            let right_col = Layout::column(cols - 1, rows, cols, elem);
            send_typed(ctx, comm, &grid, &right_col, 1, 42).unwrap();
        } else {
            let left_col = Layout::column(0, rows, cols, elem);
            let st =
                recv_typed(ctx, comm, &grid, &left_col, Src::Rank(0), TagSel::Tag(42)).unwrap();
            assert_eq!(st.len, rows * elem);
            let all = comm.read_vec(&grid);
            for r in 0..rows as usize {
                let off = r * 10 * 8;
                let v = u64::from_le_bytes(all[off..off + 8].try_into().unwrap());
                assert_eq!(v, 7000 + r as u64);
            }
            *ok2.lock() = true;
        }
    });
    assert!(*ok.lock());
}

#[test]
fn indexed_layout_roundtrip() {
    run_mpi(1, |ctx, comm| {
        let base = comm.alloc(1024).unwrap();
        comm.write(&base, 0, &[1u8; 16]);
        comm.write(&base, 100, &[2u8; 8]);
        comm.write(&base, 500, &[3u8; 32]);
        let layout = Layout::Indexed {
            blocks: vec![(0, 16), (100, 8), (500, 32)],
        };
        assert_eq!(layout.packed_len(), 56);
        let stage = comm.alloc(56).unwrap();
        pack(ctx, comm, &base, &layout, &stage);
        let packed = comm.read_vec(&stage);
        assert_eq!(&packed[..16], &[1u8; 16]);
        assert_eq!(&packed[16..24], &[2u8; 8]);
        assert_eq!(&packed[24..56], &[3u8; 32]);

        let dst = comm.alloc(1024).unwrap();
        unpack(ctx, comm, &stage, &layout, &dst);
        assert_eq!(comm.read_vec(&dst), comm.read_vec(&base));
    });
}

#[test]
fn large_typed_message_uses_rendezvous() {
    // A column big enough that the packed message goes rendezvous (and
    // through the offloading send buffer).
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    run_mpi(2, move |ctx, comm| {
        let (rows, cols, elem) = (8192u64, 4u64, 8u64);
        let grid = comm.alloc(rows * cols * elem).unwrap();
        let col = Layout::column(2, rows, cols, elem);
        assert!(col.packed_len() > comm.config().eager_threshold);
        if comm.rank() == 0 {
            for r in 0..rows {
                comm.write(&grid, (r * cols + 2) * elem, &r.to_le_bytes());
            }
            send_typed(ctx, comm, &grid, &col, 1, 1).unwrap();
        } else {
            recv_typed(ctx, comm, &grid, &col, Src::Rank(0), TagSel::Tag(1)).unwrap();
            let all = comm.read_vec(&grid);
            for r in [0u64, 1, 4095, 8191] {
                let off = ((r * cols + 2) * elem) as usize;
                let v = u64::from_le_bytes(all[off..off + 8].try_into().unwrap());
                assert_eq!(v, r);
            }
            *ok2.lock() = true;
        }
    });
    assert!(*ok.lock());
}
