//! Regression test for unbounded growth of the rendezvous
//! handshake-replay maps (`served_done`/`served_dw`): entries used to be
//! inserted per completed handshake and never removed, so a long soak
//! leaked memory linearly in the operation count. CREDIT watermark
//! pruning must keep the live entry count bounded by the unresolved
//! window regardless of how many operations complete.

use std::sync::Arc;

use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::Simulation;
use verbs::IbFabric;

#[test]
fn replay_maps_stay_bounded_over_10k_op_soak() {
    const ROUNDS: usize = 10_000;

    // Small eager threshold so every 1 KiB message takes a rendezvous
    // handshake — each one used to leave a permanent replay entry at the
    // receiver.
    let cfg = MpiConfig {
        eager_threshold: 256,
        ..MpiConfig::dcfa()
    };

    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    // (live replay entries after the soak, replay_pruned counter) per rank.
    let results = Arc::new(Mutex::new(vec![(0usize, 0u64); 2]));
    let results2 = results.clone();
    launch(
        &sim,
        &ib,
        &scif,
        cfg,
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let r = comm.rank();
            let peer = 1 - r;
            let buf = comm.alloc(1024).unwrap();
            // Alternating-direction rendezvous ping-pong: both ranks act
            // as data receiver (populating `served_done`/`served_dw`) and
            // both grant credits that carry pruning watermarks back.
            for round in 0..ROUNDS {
                if round % 2 == r {
                    comm.send(ctx, &buf, peer, 7).unwrap();
                } else {
                    comm.recv(ctx, &buf, Src::Rank(peer), TagSel::Tag(7))
                        .unwrap();
                }
            }
            results2.lock()[r] = (comm.replay_entries(), comm.stats().replay_pruned);
        },
    );
    sim.run_expect();

    let results = results.lock();
    let live: usize = results.iter().map(|(l, _)| l).sum();
    let pruned: u64 = results.iter().map(|(_, p)| p).sum();
    // Without pruning the two ranks would hold ~ROUNDS entries between
    // them; the bound below is the credit-window worth of slack that can
    // legitimately linger between credit grants.
    assert!(
        live < 64,
        "replay maps leaked: {live} live entries after {ROUNDS} ops ({results:?})"
    );
    // And the bound is enforced by actual pruning, not by entries never
    // being created: nearly every handshake's entry must have been pruned.
    assert!(
        pruned as usize >= ROUNDS / 2,
        "expected >= {} pruned replay entries, got {pruned}",
        ROUNDS / 2
    );
}
