//! Regressions for the queued-control-packet path (`flush_ctrl`).
//!
//! With a minimal ring (4 slots → a 2-packet non-credit window) a burst
//! of rendezvous sends queues its RTS control packets in `pending_ctrl`,
//! exercising two behaviours at once:
//!
//! * **Doorbell coalescing** — when the receiver's CREDIT reopens
//!   several window slots, one `flush_ctrl` drain posts several queued
//!   packets back-to-back and every post after the first must ride the
//!   first post's doorbell (`doorbells_coalesced`).
//! * **Credit head-of-line bypass** — the ring reserves two slots so
//!   CREDIT packets can always flow, but a credit queued behind a
//!   window-blocked RTS/DONE must be allowed to overtake the stalled
//!   front. Without the bypass this exact workload deadlocks at
//!   t≈1.8ms with both rings full and each rank waiting for the other's
//!   ack; the watchdog is disabled so a regression fails fast as a
//!   detected sim deadlock instead of an RTS-re-issue livelock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use simcore::SimDuration;

const MSGS: usize = 16;
/// Above `eager_threshold` so every send takes the rendezvous path and
/// generates RTS/DONE control traffic.
const MSG: u64 = 2 << 10;

#[test]
fn ctrl_queue_drains_coalesce_doorbells_and_credits_bypass() {
    let mut sim = simcore::Simulation::new();
    let cluster = fabric::Cluster::new(sim.scheduler(), fabric::ClusterConfig::with_nodes(2));
    let ib = verbs::IbFabric::new(cluster.clone());
    let scif = scif::ScifFabric::new(cluster);
    let mut cfg = MpiConfig::dcfa();
    cfg.ring_slots = 4;
    cfg.eager_threshold = 512;
    cfg.ring_slot_payload = 512;
    cfg.rndv_timeout = None;
    let coalesced = Arc::new(AtomicU64::new(0));
    let coalesced2 = coalesced.clone();
    launch(
        &sim,
        &ib,
        &scif,
        cfg,
        2,
        LaunchOpts::default(),
        move |ctx, comm| {
            let bufs: Vec<_> = (0..MSGS).map(|_| comm.alloc(MSG).unwrap()).collect();
            if comm.rank() == 0 {
                let reqs: Vec<_> = bufs
                    .iter()
                    .map(|b| comm.isend(ctx, b, 1, 3).unwrap())
                    .collect();
                comm.waitall(ctx, &reqs).unwrap();
                coalesced2.store(comm.stats().doorbells_coalesced, Ordering::Relaxed);
            } else {
                // Let the sender's RTS burst pile up behind the 2-slot
                // window before draining anything.
                ctx.sleep(SimDuration::from_millis(1));
                for b in &bufs {
                    comm.recv(ctx, b, Src::Rank(0), TagSel::Tag(3)).unwrap();
                }
            }
        },
    );
    sim.run_expect();
    let n = coalesced.load(Ordering::Relaxed);
    assert!(
        n > 0,
        "expected queued control packets to coalesce doorbells, counter was {n}"
    );
}
