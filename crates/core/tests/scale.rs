//! Scale-path tests: the shared-receive-queue transport (one receive
//! pool per rank instead of per-pair rings), its memory footprint, and
//! the `ResourceExhausted` backpressure contract of the request table.

use std::sync::Arc;

use dcfa_mpi::{
    launch, Comm, CommStats, Communicator, LaunchOpts, MpiConfig, MpiError, Src, StatsReport,
    TagSel, TraceBuf, TraceEvent,
};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::{FaultPlan, IbFabric, SendOpcode, WcStatus};

fn run_mpi<F>(cfg: MpiConfig, nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(&sim, &ib, &scif, cfg, nprocs, LaunchOpts::default(), f);
    sim.run_expect();
}

fn srq_cfg() -> MpiConfig {
    MpiConfig {
        srq_depth: Some(256),
        ..MpiConfig::dcfa()
    }
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

#[test]
fn srq_roundtrips_every_protocol_regime() {
    // Eager, threshold and rendezvous sizes all travel the SRQ path with
    // content intact (control packets ride it too).
    for cfg in [
        srq_cfg(),
        MpiConfig {
            srq_depth: Some(256),
            ..MpiConfig::host()
        },
    ] {
        for len in [4u64, 1024, 16 << 10, 256 << 10] {
            let ok = Arc::new(Mutex::new(false));
            let ok2 = ok.clone();
            run_mpi(cfg.clone(), 2, move |ctx, comm| {
                let buf = comm.alloc(len).unwrap();
                if comm.rank() == 0 {
                    comm.write(&buf, 0, &pattern(len as usize, 7));
                    comm.send(ctx, &buf, 1, 5).unwrap();
                } else {
                    let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(5)).unwrap();
                    assert_eq!(st.len, len);
                    assert_eq!(comm.read_vec(&buf), pattern(len as usize, 7));
                    *ok2.lock() = true;
                }
            });
            assert!(*ok.lock(), "len={len}");
        }
    }
}

#[test]
fn srq_all_pairs_exchange_tracks_pool_highwater() {
    // Dense traffic: every rank sends to every other. The shared pool
    // must absorb interleaved arrivals from all peers (high-water > 0)
    // and deliver every payload to the right receive.
    let n = 6usize;
    let stats: Arc<Mutex<Vec<CommStats>>> = Arc::new(Mutex::new(vec![CommStats::default(); n]));
    let s2 = stats.clone();
    run_mpi(srq_cfg(), n, move |ctx, comm| {
        let me = comm.rank();
        let len = 512u64;
        let sbuf = comm.alloc(len).unwrap();
        let rbuf = comm.alloc(len).unwrap();
        for other in 0..n {
            if other == me {
                continue;
            }
            comm.write(&sbuf, 0, &pattern(len as usize, me as u8));
            let sreq = comm.isend(ctx, &sbuf, other, 1).unwrap();
            let rreq = comm
                .irecv(ctx, &rbuf, Src::Rank(other), TagSel::Tag(1))
                .unwrap();
            comm.waitall(ctx, &[sreq, rreq]).unwrap();
            assert_eq!(
                comm.read_vec(&rbuf),
                pattern(len as usize, other as u8),
                "rank {me} <- {other}"
            );
        }
        dcfa_mpi::collectives::barrier(comm, ctx).unwrap();
        s2.lock()[me] = comm.stats();
    });
    let stats = stats.lock();
    for (r, s) in stats.iter().enumerate() {
        assert_eq!(s.pairs_established, (n - 1) as u64, "rank {r}");
        assert!(s.srq_highwater >= 1, "rank {r}: pool never used");
        assert!(
            s.srq_highwater <= 256,
            "rank {r}: high-water {} exceeds pool depth",
            s.srq_highwater
        );
    }
}

#[test]
fn srq_memory_footprint_beats_rings_for_dense_traffic() {
    // The point of the SRQ: with all pairs touched, per-rank buffer
    // memory is one pool + O(peers) stages instead of O(peers) rings +
    // stages. The measured footprint must reflect that.
    let n = 8usize;
    let measure = |cfg: MpiConfig| {
        let bytes: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let b2 = bytes.clone();
        run_mpi(cfg, n, move |ctx, comm| {
            let me = comm.rank();
            let buf = comm.alloc(64).unwrap();
            for other in 0..n {
                if other == me {
                    continue;
                }
                let sreq = comm.isend(ctx, &buf, other, 2).unwrap();
                let rreq = comm
                    .irecv(ctx, &buf, Src::Rank(other), TagSel::Tag(2))
                    .unwrap();
                comm.waitall(ctx, &[sreq, rreq]).unwrap();
            }
            dcfa_mpi::collectives::barrier(comm, ctx).unwrap();
            if me == 0 {
                *b2.lock() = comm.stats().comm_buffer_bytes;
            }
        });
        let b = *bytes.lock();
        b
    };
    let ring_bytes = measure(MpiConfig::dcfa());
    let srq_bytes = measure(srq_cfg());
    assert!(
        srq_bytes < ring_bytes,
        "SRQ footprint {srq_bytes} must undercut per-pair rings {ring_bytes}"
    );
}

#[test]
fn isend_backpressure_surfaces_resource_exhausted_and_recovers() {
    // Satellite: a full request table must push back with
    // `ResourceExhausted` — not panic — and accept new work once the
    // caller drains completed requests.
    let cfg = MpiConfig {
        max_requests: 8,
        ..MpiConfig::dcfa()
    };
    let outcome: Arc<Mutex<(usize, bool)>> = Arc::new(Mutex::new((0, false)));
    let o2 = outcome.clone();
    run_mpi(cfg, 2, move |ctx, comm| {
        let len = 64u64;
        let buf = comm.alloc(len).unwrap();
        if comm.rank() == 0 {
            comm.write(&buf, 0, &pattern(len as usize, 1));
            // Fill the request table; the post that overflows it must
            // fail softly.
            let mut reqs = Vec::new();
            let exhausted = loop {
                match comm.isend(ctx, &buf, 1, 7) {
                    Ok(r) => reqs.push(r),
                    Err(MpiError::ResourceExhausted) => break true,
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
                if reqs.len() > 64 {
                    break false; // no backpressure — fail below
                }
            };
            let n = reqs.len();
            // Drain; the freed slots must accept new requests.
            comm.waitall(ctx, &reqs).unwrap();
            let cbuf = comm.alloc(8).unwrap();
            comm.write(&cbuf, 0, &(n as u64).to_le_bytes());
            comm.send(ctx, &cbuf, 1, 8).unwrap();
            *o2.lock() = (n, exhausted);
        } else {
            // Learn how many tag-7 messages are in flight, then receive
            // them all (they queue as unexpected in the meantime).
            let cbuf = comm.alloc(8).unwrap();
            comm.recv(ctx, &cbuf, Src::Rank(0), TagSel::Tag(8)).unwrap();
            let n = u64::from_le_bytes(comm.read_vec(&cbuf).try_into().unwrap());
            for _ in 0..n {
                let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(7)).unwrap();
                assert_eq!(st.len, len);
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, 1));
            }
        }
    });
    let (n, exhausted) = *outcome.lock();
    assert!(exhausted, "request table never pushed back");
    assert!(
        n < 9,
        "backpressure fired only after {n} posts with an 8-slot table"
    );
}

#[test]
fn srq_heals_transient_send_faults_with_reordered_arrivals() {
    // Two-sided Sends have no fixed ring slot: when a faulted packet is
    // retried, its successors can arrive first and must wait in the
    // reorder stash. Inject transient faults into the Send stream and
    // verify every message still lands intact, in order, audit-clean.
    let n = 4usize;
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
    let ib = IbFabric::new(cluster.clone());
    for after in [2u64, 5, 9] {
        ib.inject_fault_plan(FaultPlan {
            status: WcStatus::RnrRetryExceeded,
            after_matches: after,
            op: Some(SendOpcode::Send),
            ..Default::default()
        });
    }
    let scif = ScifFabric::new(cluster);
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    };
    let stats: Arc<Mutex<Vec<CommStats>>> = Arc::new(Mutex::new(vec![CommStats::default(); n]));
    let s2 = stats.clone();
    launch(&sim, &ib, &scif, srq_cfg(), n, opts, move |ctx, comm| {
        let me = comm.rank();
        let len = 256u64;
        let buf = comm.alloc(len).unwrap();
        // Ring of messages: each rank streams several eager packets to
        // its successor, so a faulted Send has successors to overtake it.
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        for round in 0..8u8 {
            if me % 2 == 0 {
                comm.write(&buf, 0, &pattern(len as usize, round));
                comm.send(ctx, &buf, next, round as u32).unwrap();
                comm.recv(ctx, &buf, Src::Rank(prev), TagSel::Tag(round as u32))
                    .unwrap();
            } else {
                let salt = round;
                comm.recv(ctx, &buf, Src::Rank(prev), TagSel::Tag(round as u32))
                    .unwrap();
                assert_eq!(comm.read_vec(&buf), pattern(len as usize, salt));
                comm.write(&buf, 0, &pattern(len as usize, round));
                comm.send(ctx, &buf, next, round as u32).unwrap();
            }
        }
        dcfa_mpi::collectives::barrier(comm, ctx).unwrap();
        s2.lock()[me] = comm.stats();
    });
    sim.run_expect();
    let events = tracer.snapshot();
    if let Err(errs) = dcfa_mpi::audit(&events) {
        panic!("auditor found {} violations: {errs:#?}", errs.len());
    }
    let stats = stats.lock();
    let retries: u64 = stats.iter().map(|s| s.wr_retries).sum();
    assert!(retries >= 3, "fault plans never fired (retries={retries})");
}

/// One faulted SRQ halo run at a given DES shard count: every rank
/// exchanges salted halos with its ring neighbors while transient Send
/// faults fire. Returns the full protocol trace and per-rank counters.
fn sharded_soak(shards: usize) -> (Vec<TraceEvent>, Vec<StatsReport>) {
    let n = 8usize;
    let mut sim = Simulation::new();
    if shards > 1 {
        // Lookahead = the paper cluster's 700 ns IB wire latency: shard
        // assignment is per node, so only inter-node events cross wheels.
        sim.set_shards(shards, simcore::SimDuration::from_nanos(700));
    }
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(n));
    let ib = IbFabric::new(cluster.clone());
    for after in [3u64, 11] {
        ib.inject_fault_plan(FaultPlan {
            status: WcStatus::RnrRetryExceeded,
            after_matches: after,
            op: Some(SendOpcode::Send),
            ..Default::default()
        });
    }
    let scif = ScifFabric::new(cluster);
    let tracer = TraceBuf::new(1 << 16);
    let opts = LaunchOpts {
        tracer: Some(tracer.clone()),
        ..Default::default()
    };
    let reports: Arc<Mutex<Vec<Option<StatsReport>>>> = Arc::new(Mutex::new(vec![None; n]));
    let r2 = reports.clone();
    launch(&sim, &ib, &scif, srq_cfg(), n, opts, move |ctx, comm| {
        let me = comm.rank();
        let len = 512u64;
        let peers = [(me + 1) % n, (me + n - 1) % n];
        let sbufs: Vec<_> = peers.iter().map(|_| comm.alloc(len).unwrap()).collect();
        let rbufs: Vec<_> = peers.iter().map(|_| comm.alloc(len).unwrap()).collect();
        for round in 0..4u32 {
            // Post both neighbor exchanges before waiting — waiting on one
            // neighbor at a time chains into a ring-wide cycle.
            let mut reqs = Vec::with_capacity(4);
            for (i, &peer) in peers.iter().enumerate() {
                comm.write(&sbufs[i], 0, &pattern(len as usize, me as u8 ^ round as u8));
                reqs.push(
                    comm.irecv(ctx, &rbufs[i], Src::Rank(peer), TagSel::Tag(round))
                        .unwrap(),
                );
                reqs.push(comm.isend(ctx, &sbufs[i], peer, round).unwrap());
            }
            comm.waitall(ctx, &reqs).unwrap();
            for (i, &peer) in peers.iter().enumerate() {
                assert_eq!(
                    comm.read_vec(&rbufs[i]),
                    pattern(len as usize, peer as u8 ^ round as u8)
                );
            }
        }
        r2.lock()[me] = Some(comm.dump());
    });
    sim.run_expect();
    let stats = reports
        .lock()
        .iter()
        .map(|r| r.expect("rank finished"))
        .collect();
    (tracer.snapshot(), stats)
}

#[test]
fn shard_count_never_changes_execution() {
    // The sharded DES must be a pure throughput optimization: the same
    // seed-free deterministic run, faults included, produces an identical
    // event trace and identical counters at any shard count.
    let (t1, s1) = sharded_soak(1);
    assert!(!t1.is_empty());
    for shards in [2usize, 4] {
        let (t, s) = sharded_soak(shards);
        assert_eq!(t1, t, "trace diverged at {shards} shards");
        assert_eq!(s1, s, "counters diverged at {shards} shards");
    }
}
