//! Property test for request-table backpressure: random burst shapes —
//! optionally under transient link faults — drive the bounded engine
//! slot table into [`MpiError::ResourceExhausted`], the caller recovers
//! by progressing and retrying, and afterwards the table is fully
//! reusable: every payload intact, no request slot stranded, no MR
//! lease leaked, no generation lost to the backpressure episode.

use std::sync::Arc;

use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, MpiError, Request, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi_cfg<F>(nprocs: usize, cfg: MpiConfig, faults: &[fabric::LinkFault], f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    for fault in faults {
        cluster.inject_link_fault(*fault);
    }
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(&sim, &ib, &scif, cfg, nprocs, LaunchOpts::default(), f);
    sim.run_expect();
}

/// Post one operation with backpressure recovery: on `ResourceExhausted`,
/// consume the oldest outstanding request (driving progress and freeing
/// its slot) and retry. Returns how many exhaustion events were absorbed.
fn post_with_backpressure(
    ctx: &mut Ctx,
    comm: &mut Comm,
    outstanding: &mut std::collections::VecDeque<Request>,
    mut post: impl FnMut(&mut Ctx, &mut Comm) -> Result<Request, MpiError>,
) -> u64 {
    let mut exhausted = 0;
    loop {
        match post(ctx, comm) {
            Ok(r) => {
                outstanding.push_back(r);
                return exhausted;
            }
            Err(MpiError::ResourceExhausted) => {
                exhausted += 1;
                let oldest = outstanding
                    .pop_front()
                    .expect("table exhausted with nothing outstanding");
                comm.wait(ctx, oldest)
                    .expect("backpressured op must finish");
            }
            Err(e) => panic!("unexpected error while posting: {e:?}"),
        }
    }
}

fn salt(i: usize) -> u8 {
    (i as u8).wrapping_mul(31).wrapping_add(7)
}

#[derive(Debug, Clone, Copy)]
struct Shape {
    /// Engine request-table bound (the smallest legal values, so the
    /// bursts below always overrun it).
    max_requests: u32,
    /// Messages per burst, always past the table bound.
    burst: usize,
    /// Message length (eager-path sizes).
    len: u64,
    /// Arm transient link faults so WC errors and their retries
    /// interleave with slot recycling.
    faults: bool,
    /// Delay the receiver so sends pile into the unexpected path first.
    recv_late: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (4u32..=8).prop_flat_map(|max_requests| {
        (
            (max_requests as usize + 1)..=(3 * max_requests as usize),
            16u64..=2048,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(move |(burst, len, faults, recv_late)| Shape {
                max_requests,
                burst,
                len,
                faults,
                recv_late,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn backpressure_recovers_without_stranding_requests(shape in shape_strategy()) {
        let faults = if shape.faults {
            fabric::parse_fault_spec("3:transient,11:retry").unwrap()
        } else {
            Vec::new()
        };
        let cfg = MpiConfig {
            max_requests: shape.max_requests,
            ..MpiConfig::dcfa()
        };
        // (exhaustion events seen, payload mismatches, ranks finished).
        let tally = Arc::new(Mutex::new((0u64, 0u64, 0usize)));
        let tally2 = tally.clone();
        run_mpi_cfg(2, cfg, &faults, move |ctx, comm| {
            let me = comm.rank();
            let peer = 1 - me;
            let mut exhausted = 0u64;
            let mut mismatches = 0u64;
            // Two bursts: the second proves the table (slots and their
            // generations) is fully reusable after a backpressure episode.
            for round in 0..2u32 {
                let bufs: Vec<_> = (0..shape.burst)
                    .map(|_| comm.alloc(shape.len).unwrap())
                    .collect();
                let mut outstanding = std::collections::VecDeque::new();
                if shape.recv_late && me == 1 {
                    ctx.sleep(simcore::SimDuration::from_micros(200));
                }
                for (i, buf) in bufs.iter().enumerate() {
                    let tag = round * 1000 + i as u32;
                    if me == 0 {
                        comm.write(buf, 0, &vec![salt(i); shape.len as usize]);
                        exhausted += post_with_backpressure(
                            ctx,
                            comm,
                            &mut outstanding,
                            |ctx, comm| comm.isend(ctx, buf, peer, tag),
                        );
                    } else {
                        exhausted += post_with_backpressure(
                            ctx,
                            comm,
                            &mut outstanding,
                            |ctx, comm| comm.irecv(ctx, buf, Src::Rank(peer), TagSel::Tag(tag)),
                        );
                    }
                }
                for r in outstanding {
                    comm.wait(ctx, r).expect("drained op must finish");
                }
                if me == 1 {
                    for (i, buf) in bufs.iter().enumerate() {
                        if comm.read_vec(buf) != vec![salt(i); shape.len as usize] {
                            mismatches += 1;
                        }
                    }
                }
                // The episode must leave nothing behind between rounds.
                assert_eq!(comm.requests_live(), 0, "rank {me}: stranded requests");
                for buf in &bufs {
                    comm.free(buf);
                }
            }
            assert_eq!(comm.mr_pinned_len(), 0, "rank {me}: leaked MR leases");
            let mut t = tally2.lock();
            t.0 += exhausted;
            t.1 += mismatches;
            t.2 += 1;
        });
        let (exhausted, mismatches, finished) = *tally.lock();
        prop_assert_eq!(finished, 2, "a rank never finished");
        prop_assert_eq!(mismatches, 0, "payload corrupted across backpressure");
        // Each burst posts more operations than the table holds without
        // driving progress in between, so backpressure must actually
        // have been exercised (at least on the sender).
        prop_assert!(exhausted > 0, "ResourceExhausted never surfaced");
    }
}
