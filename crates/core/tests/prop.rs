//! Property tests for DCFA-MPI: packet-codec roundtrips over arbitrary
//! field values and random traffic matrices delivered exactly once with
//! correct content and per-pair FIFO order.

use std::sync::Arc;

use dcfa_mpi::{launch, Comm, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(
        &sim,
        &ib,
        &scif,
        MpiConfig::dcfa(),
        nprocs,
        LaunchOpts::default(),
        f,
    );
    sim.run_expect();
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    size: u32,
    salt: u8,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    // Sizes spanning eager (<=8K), offload-rendezvous and plain sizes,
    // biased small so cases stay fast.
    prop_oneof![4u32..256, 1024u32..4096, (9u32 << 10)..(64 << 10),]
        .prop_flat_map(|size| any::<u8>().prop_map(move |salt| Msg { size, salt }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_stream_delivered_in_order_with_content(
        msgs in proptest::collection::vec(msg_strategy(), 1..14)
    ) {
        let msgs = Arc::new(msgs);
        let got: Arc<Mutex<Vec<(u64, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        let msgs2 = msgs.clone();
        run_mpi(2, move |ctx, comm| {
            if comm.rank() == 0 {
                for m in msgs2.iter() {
                    let buf = comm.alloc(m.size as u64).unwrap();
                    comm.write(&buf, 0, &vec![m.salt; m.size as usize]);
                    comm.send(ctx, &buf, 1, 5).unwrap();
                    comm.free(&buf);
                }
            } else {
                for m in msgs2.iter() {
                    let buf = comm.alloc(m.size as u64).unwrap();
                    let st = comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(5)).unwrap();
                    let data = comm.read_vec(&buf);
                    assert!(data.iter().all(|&b| b == m.salt), "content mismatch");
                    got2.lock().push((st.len, data[0]));
                    comm.free(&buf);
                }
            }
        });
        let got = got.lock().clone();
        prop_assert_eq!(got.len(), msgs.len());
        for (g, m) in got.iter().zip(msgs.iter()) {
            prop_assert_eq!(g.0, m.size as u64);
            prop_assert_eq!(g.1, m.salt);
        }
    }

    #[test]
    fn nonblocking_random_order_posts_still_match(
        msgs in proptest::collection::vec(msg_strategy(), 1..8),
        recv_late in any::<bool>(),
    ) {
        // Receiver posts all receives before (or after) the sends arrive;
        // matching must be identical either way.
        let msgs = Arc::new(msgs);
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        let msgs2 = msgs.clone();
        run_mpi(2, move |ctx, comm| {
            let n = msgs2.len();
            if comm.rank() == 0 {
                let mut reqs = Vec::new();
                let mut bufs = Vec::new();
                for (i, m) in msgs2.iter().enumerate() {
                    let buf = comm.alloc(m.size as u64).unwrap();
                    comm.write(&buf, 0, &vec![m.salt; m.size as usize]);
                    reqs.push(comm.isend(ctx, &buf, 1, i as u32).unwrap());
                    bufs.push(buf);
                }
                comm.waitall(ctx, &reqs).unwrap();
            } else {
                if recv_late {
                    ctx.sleep(simcore::SimDuration::from_millis(3));
                }
                let mut reqs = Vec::new();
                let mut bufs = Vec::new();
                for (i, m) in msgs2.iter().enumerate() {
                    let buf = comm.alloc(m.size as u64).unwrap();
                    reqs.push(comm.irecv(ctx, &buf, Src::Rank(0), TagSel::Tag(i as u32)).unwrap());
                    bufs.push(buf);
                }
                let statuses = comm.waitall(ctx, &reqs).unwrap();
                for ((st, m), buf) in statuses.iter().zip(msgs2.iter()).zip(&bufs) {
                    assert_eq!(st.len, m.size as u64);
                    let data = comm.read_vec(buf);
                    assert!(data.iter().all(|&b| b == m.salt));
                }
                let _ = n;
                *ok2.lock() = true;
            }
        });
        prop_assert!(*ok.lock());
    }
}

// ---- codec properties (no simulation needed) --------------------------------

mod packet_codec {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn dcfa_wire_cmd_roundtrip(
            node in 0u32..1024,
            domain in 0u8..2,
            addr in any::<u64>(),
            len in any::<u64>(),
            key in any::<u32>(),
        ) {
            use dcfa::wire::Cmd;
            use fabric::{Domain, MemRef, NodeId};
            let mem = MemRef {
                node: NodeId(node as usize),
                domain: if domain == 0 { Domain::Host } else { Domain::Phi },
            };
            for cmd in [
                Cmd::Hello { client: key },
                Cmd::RegMr { mem, addr, len },
                Cmd::DeregMr { key },
                Cmd::RegOffloadMr { len },
                Cmd::DeregOffloadMr { key },
                Cmd::AdoptMr { key },
                Cmd::Heartbeat,
                Cmd::Bye,
            ] {
                prop_assert_eq!(Cmd::decode(&cmd.encode()), Some(cmd));
            }
        }

        #[test]
        fn dcfa_wire_reply_roundtrip(key in any::<u32>(), addr in any::<u64>(), len in any::<u64>(), code in any::<u8>()) {
            use dcfa::wire::Reply;
            for r in [
                Reply::Ok,
                Reply::MrKey { key },
                Reply::Offload { key, host_addr: addr, host_len: len },
                Reply::Error { code },
                Reply::Hello { client: key },
            ] {
                prop_assert_eq!(Reply::decode(&r.encode()), Some(r));
            }
        }

        #[test]
        fn garbage_never_panics_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Decoders must reject or accept, never panic.
            let _ = dcfa::wire::Cmd::decode(&bytes);
            let _ = dcfa::wire::Reply::decode(&bytes);
        }
    }
}
