//! Host-staged collective tests: correctness vs. the plain algorithms and
//! the performance win that motivates offloading collectives to the host.

use std::sync::Arc;

use dcfa_mpi::{collectives, hostcoll};
use dcfa_mpi::{launch, Comm, Communicator, Datatype, LaunchOpts, MpiConfig, ReduceOp};
use fabric::{Cluster, ClusterConfig};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, Simulation};
use verbs::IbFabric;

fn run_mpi<F>(cfg: MpiConfig, nprocs: usize, f: F)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(nprocs.max(2)));
    let ib = IbFabric::new(cluster.clone());
    let scif = ScifFabric::new(cluster);
    launch(&sim, &ib, &scif, cfg, nprocs, LaunchOpts::default(), f);
    sim.run_expect();
}

#[test]
fn host_staged_bcast_delivers_content() {
    for root in [0usize, 3] {
        let ok = Arc::new(Mutex::new(0usize));
        let ok2 = ok.clone();
        run_mpi(MpiConfig::dcfa(), 8, move |ctx, comm| {
            let len = 1 << 20;
            let buf = comm.alloc(len).unwrap();
            if comm.rank() == root {
                comm.write(&buf, 0, &vec![0xCD; len as usize]);
            }
            hostcoll::bcast_host_staged(comm, ctx, &buf, root).unwrap();
            assert_eq!(
                comm.read_vec(&buf),
                vec![0xCD; len as usize],
                "rank {}",
                comm.rank()
            );
            *ok2.lock() += 1;
        });
        assert_eq!(*ok.lock(), 8);
    }
}

#[test]
fn host_staged_reduce_matches_plain() {
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    run_mpi(MpiConfig::dcfa(), 4, move |ctx, comm| {
        let n_elems = 1024usize;
        let mk = |comm: &Comm| {
            let buf = comm.alloc((n_elems * 8) as u64).unwrap();
            let mut bytes = Vec::new();
            for i in 0..n_elems {
                bytes.extend_from_slice(&((comm.rank() * 1000 + i) as f64).to_le_bytes());
            }
            comm.write(&buf, 0, &bytes);
            buf
        };
        let a = mk(comm);
        let b = mk(comm);
        collectives::reduce(comm, ctx, &a, Datatype::F64, ReduceOp::Sum, 0).unwrap();
        hostcoll::reduce_host_staged(comm, ctx, &b, Datatype::F64, ReduceOp::Sum, 0).unwrap();
        if comm.rank() == 0 {
            r2.lock().push((comm.read_vec(&a), comm.read_vec(&b)));
        }
    });
    let results = results.lock();
    let (plain, staged) = &results[0];
    assert_eq!(
        plain, staged,
        "host-staged reduce must match plain reduce bit-for-bit"
    );
}

#[test]
fn host_staged_allreduce_all_ranks_agree() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    run_mpi(MpiConfig::dcfa(), 6, move |ctx, comm| {
        let buf = comm.alloc(8).unwrap();
        comm.write(&buf, 0, &((comm.rank() + 1) as f64).to_le_bytes());
        hostcoll::allreduce_host_staged(comm, ctx, &buf, Datatype::F64, ReduceOp::Sum).unwrap();
        let v = f64::from_le_bytes(comm.read_vec(&buf).try_into().unwrap());
        g2.lock().push(v);
    });
    assert_eq!(*got.lock(), vec![21.0; 6]); // 1+2+..+6
}

#[test]
fn host_staged_bcast_faster_than_plain_for_large_buffers() {
    // The point of the future work: a multi-hop large broadcast saves the
    // repeated PCIe re-staging at every tree level.
    let times = Arc::new(Mutex::new((0u64, 0u64)));
    let t2 = times.clone();
    run_mpi(MpiConfig::dcfa(), 8, move |ctx, comm| {
        let len = 2 << 20;
        let buf = comm.alloc(len).unwrap();
        // Warm-up round: establish the lazy connections both variants
        // use, so the timed comparison measures steady-state data
        // movement rather than first-touch QP/ring setup.
        collectives::bcast(comm, ctx, &buf, 0).unwrap();
        hostcoll::bcast_host_staged(comm, ctx, &buf, 0).unwrap();
        collectives::barrier(comm, ctx).unwrap();
        let t0 = ctx.now();
        collectives::bcast(comm, ctx, &buf, 0).unwrap();
        collectives::barrier(comm, ctx).unwrap();
        let plain = (ctx.now() - t0).as_nanos();
        let t1 = ctx.now();
        hostcoll::bcast_host_staged(comm, ctx, &buf, 0).unwrap();
        collectives::barrier(comm, ctx).unwrap();
        let staged = (ctx.now() - t1).as_nanos();
        if comm.rank() == 0 {
            *t2.lock() = (plain, staged);
        }
    });
    let (plain, staged) = *times.lock();
    assert!(
        (staged as f64) < plain as f64 * 0.8,
        "host staging should win: plain={plain}ns staged={staged}ns"
    );
}

#[test]
fn host_placement_falls_back_to_plain() {
    // On host placement there is no twin; the staged variants silently
    // delegate and still produce correct results.
    let ok = Arc::new(Mutex::new(0usize));
    let ok2 = ok.clone();
    run_mpi(MpiConfig::host(), 4, move |ctx, comm| {
        let buf = comm.alloc(64 << 10).unwrap();
        if comm.rank() == 2 {
            comm.write(&buf, 0, &vec![9u8; 64 << 10]);
        }
        hostcoll::bcast_host_staged(comm, ctx, &buf, 2).unwrap();
        assert_eq!(comm.read_vec(&buf), vec![9u8; 64 << 10]);
        *ok2.lock() += 1;
    });
    assert_eq!(*ok.lock(), 4);
}
