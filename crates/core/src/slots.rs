//! Allocation-free bookkeeping for the progress engine's hot path.
//!
//! [`SlotTable`] replaces the per-engine `HashMap<u64, _>` request and
//! inflight-WR tables: entries live in a dense `Vec` of slots, handles
//! encode `(generation << 32) | slot`, and freed slots are recycled
//! through an intrusive free list. Steady-state insert/remove therefore
//! touches no allocator and no hasher, and a stale handle (slot reused
//! since) misses on its generation tag instead of aliasing a new entry —
//! preserving the "unknown request" semantics the MPI layer relies on.
//!
//! [`TimerHeap`] replaces the `Vec` + `retain`-scan timer lists: a
//! min-heap ordered by deadline, popped only while `due <= now`, so a
//! progress sweep costs O(fired · log n) instead of O(n) per call.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simcore::SimTime;

enum Slot<T> {
    /// Free slot: the next free slot (or `NO_FREE`) and the generation
    /// the next occupant will carry (bumped at removal time).
    Free {
        next_free: u32,
        gen: u32,
    },
    Full {
        gen: u32,
        value: T,
    },
}

/// Dense generation-tagged storage. Handles are plain `u64`s so they can
/// flow through wire-adjacent code (e.g. verbs `wr_id` fields) unchanged.
pub struct SlotTable<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
    /// Maximum number of live entries; inserts past this bound fail
    /// instead of growing. `u32::MAX - 1` (the index space) by default.
    limit: u32,
}

const NO_FREE: u32 = u32::MAX;

impl<T> SlotTable<T> {
    pub fn new() -> Self {
        SlotTable {
            slots: Vec::new(),
            free_head: NO_FREE,
            len: 0,
            limit: u32::MAX - 1,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        let mut t = SlotTable::new();
        t.slots.reserve(cap);
        t
    }

    /// A table that refuses to hold more than `limit` live entries.
    /// Exhaustion then surfaces as `try_insert() == None` backpressure
    /// rather than unbounded growth.
    pub fn with_limit(limit: u32) -> Self {
        let mut t = SlotTable::new();
        t.limit = limit;
        t
    }

    fn split(id: u64) -> (u32, u32) {
        ((id >> 32) as u32, id as u32)
    }

    /// Insert a value, returning its handle, or `None` when the table is
    /// at its limit. Generations start at 1 so a handle is never 0 (the
    /// engine uses ids in contexts where 0 would read as "unset").
    pub fn try_insert(&mut self, value: T) -> Option<u64> {
        if self.len >= self.limit as usize {
            return None;
        }
        self.len += 1;
        if self.free_head != NO_FREE {
            let idx = self.free_head;
            let gen = match self.slots[idx as usize] {
                Slot::Free { next_free, gen } => {
                    self.free_head = next_free;
                    gen
                }
                Slot::Full { .. } => unreachable!("free list points at a full slot"),
            };
            self.slots[idx as usize] = Slot::Full { gen, value };
            Some(((gen as u64) << 32) | idx as u64)
        } else {
            let idx = self.slots.len() as u32;
            if idx == u32::MAX {
                self.len -= 1;
                return None;
            }
            self.slots.push(Slot::Full { gen: 1, value });
            Some((1u64 << 32) | idx as u64)
        }
    }

    /// Infallible insert for tables whose size is bounded by construction
    /// (panics only at the `u32` index-space limit).
    pub fn insert(&mut self, value: T) -> u64 {
        self.try_insert(value).expect("slot table exhausted")
    }

    pub fn get(&self, id: u64) -> Option<&T> {
        let (gen, idx) = Self::split(id);
        match self.slots.get(idx as usize) {
            Some(Slot::Full { gen: g, value }) if *g == gen => Some(value),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let (gen, idx) = Self::split(id);
        match self.slots.get_mut(idx as usize) {
            Some(Slot::Full { gen: g, value }) if *g == gen => Some(value),
            _ => None,
        }
    }

    /// Remove and return the value for `id`. The slot's generation is
    /// bumped so outstanding copies of the handle go stale.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let (gen, idx) = Self::split(id);
        match self.slots.get_mut(idx as usize) {
            Some(slot @ Slot::Full { .. }) => {
                if !matches!(slot, Slot::Full { gen: g, .. } if *g == gen) {
                    return None;
                }
                // Bump the generation for the next occupant; skip 0 on
                // wrap so ids stay non-zero.
                let next_gen = match gen.wrapping_add(1) {
                    0 => 1,
                    g => g,
                };
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        next_free: self.free_head,
                        gen: next_gen,
                    },
                );
                self.free_head = idx;
                self.len -= 1;
                match old {
                    Slot::Full { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Swap the value stored for `id`, returning the previous one. The
    /// handle stays valid — this is the engine's state-transition
    /// primitive (`replace` out, work on the old state, `replace` back).
    pub fn replace(&mut self, id: u64, value: T) -> Option<T> {
        self.get_mut(id).map(|v| std::mem::replace(v, value))
    }

    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the next `try_insert` would fail. Callers that must not
    /// burn a sequence number on a doomed operation check this first.
    pub fn is_full(&self) -> bool {
        self.len >= self.limit as usize
    }

    /// Iterate `(id, &value)` over live entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Full { gen, value } => Some((((*gen as u64) << 32) | i as u64, value)),
            Slot::Free { .. } => None,
        })
    }

    /// Iterate `(id, &mut value)` over live entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Full { gen, value } => Some((((*gen as u64) << 32) | i as u64, value)),
                Slot::Free { .. } => None,
            })
    }
}

impl<T> Default for SlotTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An entry in a [`TimerHeap`].
#[derive(PartialEq, Eq)]
struct TimerEntry<K> {
    due: SimTime,
    /// Insertion ticket: ties broken FIFO, and `K` needs no `Ord`.
    ticket: u64,
    key: K,
}

impl<K: Eq> Ord for TimerEntry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.ticket).cmp(&(other.due, other.ticket))
    }
}

impl<K: Eq> PartialOrd for TimerEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of `(deadline, key)` pairs. Cancellation is lazy: the engine
/// validates each popped key against its request/WR table (stale handles
/// miss on their generation), so no `retain` scan is ever needed on the
/// pop path. To keep thousands of arm/cancel cycles from letting dead
/// entries dominate the heap, callers report cancellations via
/// [`TimerHeap::note_cancel`] and periodically offer a liveness predicate
/// to [`TimerHeap::maybe_compact`], which rebuilds the heap once the dead
/// ratio crosses one half.
pub struct TimerHeap<K: Eq> {
    heap: BinaryHeap<Reverse<TimerEntry<K>>>,
    next_ticket: u64,
    /// Upper bound on dead entries still in the heap: incremented by
    /// `note_cancel`, reset by compaction. An upper bound only — a dead
    /// entry that drains past its deadline is popped (and skipped by the
    /// caller's validation) without the heap knowing.
    dead: usize,
}

/// Below this size compaction is never worth a rebuild.
const COMPACT_MIN: usize = 64;

impl<K: Eq> TimerHeap<K> {
    pub fn new() -> Self {
        TimerHeap {
            heap: BinaryHeap::new(),
            next_ticket: 0,
            dead: 0,
        }
    }

    pub fn push(&mut self, due: SimTime, key: K) {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.heap.push(Reverse(TimerEntry { due, ticket, key }));
    }

    /// Record that one armed entry was cancelled elsewhere (its key will
    /// miss validation when popped). Cheap bookkeeping only; pair with
    /// [`TimerHeap::maybe_compact`].
    pub fn note_cancel(&mut self) {
        self.dead += 1;
    }

    /// Rebuild the heap without entries `live` rejects, but only when at
    /// least half the entries are known dead (and the heap is big enough
    /// to care). Returns whether a compaction ran. Relative order of the
    /// surviving entries is preserved (tickets travel with them).
    pub fn maybe_compact<F: FnMut(&K) -> bool>(&mut self, mut live: F) -> bool {
        if self.heap.len() < COMPACT_MIN || self.dead * 2 < self.heap.len() {
            return false;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|Reverse(e)| live(&e.key))
            .collect();
        self.dead = 0;
        true
    }

    /// Earliest deadline, if any.
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Pop the earliest entry if its deadline is at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, K)> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.due <= now) {
            self.heap.pop().map(|Reverse(e)| (e.due, e.key))
        } else {
            None
        }
    }

    /// Drain every entry due at or before `now` into `out` (a reusable
    /// scratch buffer), preserving deadline order. Handlers may push new
    /// entries while `out` is being processed.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<K>) {
        while let Some((_, k)) = self.pop_due(now) {
            out.push(k);
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<K: Eq> Default for TimerHeap<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = SlotTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_ne!(a, b);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get(b), Some(&"b"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.get(a), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(a), None, "double remove misses");
    }

    #[test]
    fn ids_are_nonzero_and_stale_after_reuse() {
        let mut t = SlotTable::new();
        let a = t.insert(1u32);
        assert_ne!(a, 0);
        t.remove(a);
        let b = t.insert(2u32);
        // Same slot, new generation: the old handle must not alias.
        assert_eq!(b as u32, a as u32, "slot recycled");
        assert_ne!(a, b);
        assert_eq!(t.get(a), None);
        assert_eq!(t.get(b), Some(&2));
    }

    #[test]
    fn steady_state_reuses_one_slot() {
        let mut t = SlotTable::new();
        for i in 0..10_000u32 {
            let id = t.insert(i);
            assert_eq!(t.remove(id), Some(i));
        }
        assert_eq!(t.slots.len(), 1, "one slot recycled throughout");
    }

    #[test]
    fn replace_keeps_handle_valid() {
        let mut t = SlotTable::new();
        let id = t.insert(10);
        assert_eq!(t.replace(id, 20), Some(10));
        assert_eq!(t.get(id), Some(&20));
        assert_eq!(t.replace(999, 1), None);
    }

    #[test]
    fn iter_visits_live_entries_only() {
        let mut t = SlotTable::new();
        let a = t.insert("a");
        let _b = t.insert("b");
        let _c = t.insert("c");
        t.remove(a);
        let mut vals: Vec<_> = t.iter().map(|(_, v)| *v).collect();
        vals.sort_unstable();
        assert_eq!(vals, ["b", "c"]);
        for (id, v) in t.iter_mut() {
            assert_ne!(id, 0);
            *v = "x";
        }
        assert!(t.iter().all(|(_, v)| *v == "x"));
    }

    #[test]
    fn generation_wrap_skips_zero() {
        let mut t = SlotTable::new();
        // Force the slot-0 generation to the wrap point.
        let id = t.insert(0u8);
        t.remove(id);
        match &mut t.slots[0] {
            Slot::Free { gen, .. } => *gen = u32::MAX,
            Slot::Full { .. } => unreachable!(),
        }
        let id = t.insert(1u8);
        assert_eq!(id >> 32, u32::MAX as u64);
        t.remove(id);
        let id = t.insert(2u8);
        assert_eq!(id >> 32, 1, "generation wraps past zero");
        assert_eq!(t.get(id), Some(&2));
    }

    #[test]
    fn timer_heap_pops_in_deadline_order() {
        let mut h = TimerHeap::new();
        let t = SimTime;
        h.push(t(30), "c");
        h.push(t(10), "a");
        h.push(t(20), "b");
        assert_eq!(h.peek_due(), Some(t(10)));
        assert_eq!(h.pop_due(t(5)), None, "nothing due yet");
        assert_eq!(h.pop_due(t(15)), Some((t(10), "a")));
        let mut out = Vec::new();
        h.drain_due(t(100), &mut out);
        assert_eq!(out, ["b", "c"]);
        assert!(h.is_empty());
    }

    #[test]
    fn limited_table_backpressures_instead_of_growing() {
        let mut t = SlotTable::with_limit(3);
        let a = t.try_insert(0u32).unwrap();
        let _b = t.try_insert(1).unwrap();
        let _c = t.try_insert(2).unwrap();
        assert_eq!(t.try_insert(3), None, "limit reached");
        assert_eq!(t.len(), 3);
        // Freeing a slot lifts the backpressure.
        assert_eq!(t.remove(a), Some(0));
        let d = t.try_insert(4).unwrap();
        assert_eq!(t.get(d), Some(&4));
        assert_eq!(t.try_insert(5), None, "full again");
    }

    #[test]
    fn timer_heap_compacts_under_arm_cancel_churn() {
        use std::collections::HashSet;
        let mut h = TimerHeap::new();
        let t = SimTime;
        let mut live: HashSet<u64> = HashSet::new();
        let mut next_key = 0u64;
        // Rendezvous-watchdog pattern: arm a timer per operation, cancel
        // almost all of them on normal completion, re-arm the rest.
        for round in 0..1_000u64 {
            for _ in 0..8 {
                h.push(t(round * 10 + 1_000_000), next_key);
                live.insert(next_key);
                next_key += 1;
            }
            // Cancel 7 of the 8: only every 8th operation stays armed.
            for k in (next_key - 8)..next_key {
                if k % 8 != 0 {
                    live.remove(&k);
                    h.note_cancel();
                }
            }
            h.maybe_compact(|k| live.contains(k));
            assert!(
                h.len() <= 5 * live.len() / 2 + COMPACT_MIN,
                "heap grew unbounded: {} entries for {} live timers",
                h.len(),
                live.len()
            );
        }
        assert!(live.len() >= 1_000, "churn kept some timers armed");
        // Surviving entries still drain in deadline order.
        let mut out = Vec::new();
        h.drain_due(t(u64::MAX), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert!(out.windows(2).all(|w| w[0] < w[1]), "deadline order kept");
        assert_eq!(out, sorted);
    }

    #[test]
    fn timer_heap_breaks_ties_fifo() {
        let mut h = TimerHeap::new();
        let t = SimTime(7);
        for i in 0..5u32 {
            h.push(t, i);
        }
        let mut out = Vec::new();
        h.drain_due(t, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4]);
    }
}
