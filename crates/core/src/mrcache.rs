//! The buffer cache pool (paper §IV-B3): memory-region registration on the
//! Phi is expensive (offloaded to the host), so DCFA-MPI caches the most
//! recently used regions. A lookup hits when a cached region *contains* the
//! requested range. Eviction is least-recently-used among *unpinned*
//! entries only — a region with an outstanding RDMA against it must never
//! be deregistered out from under the HCA.
//!
//! Lifetime model: [`MrCache::acquire`] hands out an [`MrLease`] that pins
//! the backing region for the duration of one protocol operation;
//! [`MrCache::release`] unpins it. With caching disabled (`capacity == 0`)
//! — or when every cached slot is pinned — the lease owns an *unmanaged*
//! registration that `release` deregisters immediately, so the disabled
//! configuration registers and deregisters symmetrically instead of
//! leaking one MR per lookup.
//!
//! The same structure caches offloading twin buffers (host-side staging
//! regions of `reg_offload_mr`), which are just as expensive to create.

use dcfa::OffloadMr;
use fabric::{Buffer, MemRef};
use simcore::Ctx;
use verbs::MemoryRegion;

use crate::metrics::{Metrics, Phase};
use crate::resources::Resources;
use crate::trace::{Trace, TraceEvent};
use crate::types::Rank;

/// Hit/miss/lifetime counters of one cache, for `dump()` snapshots and
/// the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Regions registered through the cache layer (cached or not).
    pub registered: u64,
    /// Regions deregistered through the cache layer.
    pub deregistered: u64,
    /// Cached entries dropped because the daemon had already reclaimed
    /// the underlying registration (lease expiry or crash drain). Counted
    /// in `deregistered` too — the region left the cache layer.
    pub invalidated: u64,
}

struct Entry {
    /// Memory space the range lives in. Addresses are only meaningful
    /// per (node, domain): Phi and host allocations both start at 0, so
    /// a range match without this would alias a host buffer to a Phi
    /// MR (or vice versa) and silently RDMA the wrong memory.
    mem: MemRef,
    addr: u64,
    len: u64,
    mr: MemoryRegion,
    last_use: u64,
    pins: u32,
}

/// A pinned claim on a registered region. Obtain with
/// [`MrCache::acquire`]; give back with [`MrCache::release`] once the
/// RDMA that used it has completed. Dropping a lease without releasing
/// it leaves the region pinned (caught by the protocol auditor).
#[must_use = "release the lease once the RDMA completes"]
pub struct MrLease {
    mr: MemoryRegion,
    cached: bool,
}

impl MrLease {
    pub fn mr(&self) -> &MemoryRegion {
        &self.mr
    }
}

/// LRU cache of registered memory regions.
pub struct MrCache {
    capacity: usize,
    entries: Vec<Entry>,
    clock: u64,
    pub(crate) stats: CacheStats,
    pub(crate) trace: Trace,
    metrics: Metrics,
    rank: Rank,
}

impl MrCache {
    /// `capacity == 0` disables caching: every acquire registers and every
    /// release deregisters immediately.
    pub fn new(capacity: usize) -> Self {
        MrCache {
            capacity,
            entries: Vec::new(),
            clock: 0,
            stats: CacheStats::default(),
            trace: Trace::default(),
            metrics: Metrics::default(),
            rank: 0,
        }
    }

    pub(crate) fn set_trace(&mut self, trace: Trace, rank: Rank) {
        self.trace = trace;
        self.rank = rank;
    }

    pub(crate) fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Acquire a pinned region covering `buf`, registering on miss. A hit
    /// on an entry whose registration the daemon has since reclaimed
    /// (lease expiry; detected by HCA liveness) is invalidated and
    /// re-registered instead of handing out a stale key.
    pub fn acquire(&mut self, ctx: &mut Ctx, res: &Resources, buf: &Buffer) -> MrLease {
        self.clock += 1;
        let clock = self.clock;
        let rank = self.rank;
        if let Some(i) = self.entries.iter().position(|e| {
            e.mem == buf.mem && e.addr <= buf.addr && buf.addr + buf.len <= e.addr + e.len
        }) {
            let live = self.entries[i].pins > 0 || res.mr_live(self.entries[i].mr.key());
            if live {
                let e = &mut self.entries[i];
                e.last_use = clock;
                e.pins += 1;
                self.stats.hits += 1;
                let key = e.mr.key().0;
                self.trace.record(|| TraceEvent::MrPin { rank, key });
                return MrLease {
                    mr: e.mr.clone(),
                    cached: true,
                };
            }
            let dead = self.entries.swap_remove(i);
            self.stats.invalidated += 1;
            self.stats.deregistered += 1;
            let key = dead.mr.key().0;
            self.trace
                .record(|| TraceEvent::MrInvalidated { rank, key });
            // Fall through to the miss path: register afresh.
        }
        self.stats.misses += 1;
        let reg_start = self.metrics.start(|| ctx.now());
        let mr = res.reg_mr(ctx, buf.clone());
        self.metrics
            .record_since(reg_start, || ctx.now(), Phase::MrRegister, buf.len, None);
        self.stats.registered += 1;
        let key = mr.key().0;
        if self.capacity == 0 {
            // Caching disabled: the lease owns the registration outright
            // and `release` deregisters it.
            self.trace.record(|| TraceEvent::MrRegister {
                rank,
                key,
                addr: buf.addr,
                len: buf.len,
                cached: false,
            });
            self.trace.record(|| TraceEvent::MrPin { rank, key });
            return MrLease { mr, cached: false };
        }
        if self.entries.len() >= self.capacity {
            // Evict the LRU *unpinned* entry. If every slot is pinned by
            // an in-flight RDMA, overflow into an unmanaged lease rather
            // than yank a region the HCA is still using.
            let lru = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i);
            match lru {
                Some(i) => {
                    let evicted = self.entries.swap_remove(i);
                    res.dereg_mr(ctx, &evicted.mr);
                    self.stats.evictions += 1;
                    self.stats.deregistered += 1;
                    let ekey = evicted.mr.key().0;
                    self.trace
                        .record(|| TraceEvent::MrEvict { rank, key: ekey });
                }
                None => {
                    self.trace.record(|| TraceEvent::MrRegister {
                        rank,
                        key,
                        addr: buf.addr,
                        len: buf.len,
                        cached: false,
                    });
                    self.trace.record(|| TraceEvent::MrPin { rank, key });
                    return MrLease { mr, cached: false };
                }
            }
        }
        self.trace.record(|| TraceEvent::MrRegister {
            rank,
            key,
            addr: buf.addr,
            len: buf.len,
            cached: true,
        });
        self.trace.record(|| TraceEvent::MrPin { rank, key });
        self.entries.push(Entry {
            mem: buf.mem,
            addr: buf.addr,
            len: buf.len,
            mr: mr.clone(),
            last_use: clock,
            pins: 1,
        });
        MrLease { mr, cached: true }
    }

    /// Release a lease obtained from [`MrCache::acquire`]. Unmanaged
    /// leases (caching disabled, or cache overflow) deregister here.
    pub fn release(&mut self, ctx: &mut Ctx, res: &Resources, lease: MrLease) {
        let rank = self.rank;
        let key = lease.mr.key().0;
        self.trace.record(|| TraceEvent::MrUnpin { rank, key });
        if !lease.cached {
            res.dereg_mr(ctx, &lease.mr);
            self.stats.deregistered += 1;
            self.trace.record(|| TraceEvent::MrDeregister { rank, key });
            return;
        }
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.mr.key() == lease.mr.key())
            .expect("released lease not in cache (double release?)");
        debug_assert!(e.pins > 0, "unpinning an unpinned entry");
        e.pins = e.pins.saturating_sub(1);
    }

    /// Drop every unpinned entry whose registration is no longer live on
    /// the HCA — bulk flush after a control-epoch bump (daemon respawn or
    /// lease loss). Returns how many entries were invalidated.
    pub(crate) fn invalidate_dead(&mut self, res: &Resources) -> usize {
        let rank = self.rank;
        let trace = self.trace.clone();
        let mut dropped = 0usize;
        self.entries.retain(|e| {
            if e.pins == 0 && !res.mr_live(e.mr.key()) {
                let key = e.mr.key().0;
                trace.record(|| TraceEvent::MrInvalidated { rank, key });
                dropped += 1;
                false
            } else {
                true
            }
        });
        self.stats.invalidated += dropped as u64;
        self.stats.deregistered += dropped as u64;
        dropped
    }

    /// Drop everything (finalize). All leases must be released first.
    pub fn clear(&mut self, ctx: &mut Ctx, res: &Resources) {
        let rank = self.rank;
        for e in self.entries.drain(..) {
            debug_assert_eq!(e.pins, 0, "finalize with a pinned MR lease outstanding");
            res.dereg_mr(ctx, &e.mr);
            self.stats.deregistered += 1;
            let key = e.mr.key().0;
            self.trace.record(|| TraceEvent::MrDeregister { rank, key });
        }
    }

    /// Number of cached regions (ablation instrumentation).
    pub fn cached_regions(&self) -> usize {
        self.entries.len()
    }

    /// Regions currently pinned by outstanding leases.
    pub fn pinned_regions(&self) -> usize {
        self.entries.iter().filter(|e| e.pins > 0).count()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A pinned claim on an offload twin, mirroring [`MrLease`]: holds the
/// Phi-side range and host-side MR of the twin for the duration of one
/// rendezvous transfer.
#[must_use = "release the lease once the transfer completes"]
pub struct OffloadLease {
    /// Phi-side registered range the twin shadows.
    pub phi: Buffer,
    /// Host twin memory region (the RDMA source).
    pub host_mr: MemoryRegion,
    cached: bool,
}

struct OffloadEntry {
    /// Memory space of the Phi-side range (see [`Entry::mem`]).
    mem: MemRef,
    addr: u64,
    len: u64,
    omr: OffloadMr,
    last_use: u64,
    pins: u32,
}

/// LRU cache of offloading twin buffers keyed by the Phi-side range.
/// Like [`MrCache`], a lookup hits when a cached twin's Phi range
/// *contains* the requested range, and pinned twins are never evicted.
pub struct OffloadCache {
    capacity: usize,
    entries: Vec<OffloadEntry>,
    clock: u64,
    pub(crate) stats: CacheStats,
    trace: Trace,
    metrics: Metrics,
    rank: Rank,
}

impl OffloadCache {
    pub fn new(capacity: usize) -> Self {
        OffloadCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            clock: 0,
            stats: CacheStats::default(),
            trace: Trace::default(),
            metrics: Metrics::default(),
            rank: 0,
        }
    }

    pub(crate) fn set_trace(&mut self, trace: Trace, rank: Rank) {
        self.trace = trace;
        self.rank = rank;
    }

    pub(crate) fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Find or create the twin covering `buf`, bump LRU, and return its
    /// index. Containment test like the MR cache: a twin spanning a
    /// larger Phi range serves any sub-range. A hit on a twin the daemon
    /// already reclaimed (twins die with a crashed delegation process) is
    /// invalidated and recreated. `None` when the daemon cannot provide a
    /// twin — the caller degrades to the direct path.
    fn lookup(&mut self, ctx: &mut Ctx, res: &Resources, buf: &Buffer) -> Option<usize> {
        self.clock += 1;
        let clock = self.clock;
        let rank = self.rank;
        if let Some(i) = self.entries.iter().position(|e| {
            e.mem == buf.mem && e.addr <= buf.addr && buf.addr + buf.len <= e.addr + e.len
        }) {
            let live = self.entries[i].pins > 0 || res.mr_live(self.entries[i].omr.host_mr.key());
            if live {
                self.entries[i].last_use = clock;
                self.stats.hits += 1;
                return Some(i);
            }
            let dead = self.entries.swap_remove(i);
            self.stats.invalidated += 1;
            self.stats.deregistered += 1;
            let key = dead.omr.host_mr.key().0;
            self.trace
                .record(|| TraceEvent::MrInvalidated { rank, key });
        }
        self.stats.misses += 1;
        let reg_start = self.metrics.start(|| ctx.now());
        let omr = res.reg_offload(ctx, buf)?;
        self.metrics
            .record_since(reg_start, || ctx.now(), Phase::MrRegister, buf.len, None);
        self.stats.registered += 1;
        let key = omr.host_mr.key().0;
        self.trace.record(|| TraceEvent::MrRegister {
            rank,
            key,
            addr: buf.addr,
            len: buf.len,
            cached: true,
        });
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i);
            // All pinned: grow past capacity rather than tear down a twin
            // mid-transfer (shrinks back as pins release and LRU churns).
            if let Some(i) = lru {
                let evicted = self.entries.swap_remove(i);
                let ekey = evicted.omr.host_mr.key().0;
                res.dereg_offload(ctx, evicted.omr);
                self.stats.evictions += 1;
                self.stats.deregistered += 1;
                self.trace
                    .record(|| TraceEvent::MrEvict { rank, key: ekey });
            }
        }
        self.entries.push(OffloadEntry {
            mem: buf.mem,
            addr: buf.addr,
            len: buf.len,
            omr,
            last_use: clock,
            pins: 0,
        });
        Some(self.entries.len() - 1)
    }

    /// Get (or create) the offload twin for a Phi buffer without pinning
    /// it. The returned reference stays valid until the next call. `None`
    /// when the daemon cannot provide a twin — callers fall back to the
    /// direct path.
    pub fn get_or_create(
        &mut self,
        ctx: &mut Ctx,
        res: &Resources,
        buf: &Buffer,
    ) -> Option<&OffloadMr> {
        let i = self.lookup(ctx, res, buf)?;
        Some(&self.entries[i].omr)
    }

    /// Acquire a pinned twin covering `buf` for one rendezvous transfer.
    /// `None` when the twin cannot be (re)created — the send degrades to
    /// sourcing the Phi buffer directly.
    pub fn try_acquire(
        &mut self,
        ctx: &mut Ctx,
        res: &Resources,
        buf: &Buffer,
    ) -> Option<OffloadLease> {
        let i = self.lookup(ctx, res, buf)?;
        let e = &mut self.entries[i];
        e.pins += 1;
        let rank = self.rank;
        let key = e.omr.host_mr.key().0;
        self.trace.record(|| TraceEvent::MrPin { rank, key });
        Some(OffloadLease {
            phi: e.omr.phi.clone(),
            host_mr: e.omr.host_mr.clone(),
            cached: true,
        })
    }

    /// Release a lease obtained from [`OffloadCache::acquire`].
    pub fn release(&mut self, _ctx: &mut Ctx, _res: &Resources, lease: OffloadLease) {
        let rank = self.rank;
        let key = lease.host_mr.key().0;
        self.trace.record(|| TraceEvent::MrUnpin { rank, key });
        debug_assert!(lease.cached);
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.omr.host_mr.key() == lease.host_mr.key())
            .expect("released offload lease not in cache");
        debug_assert!(e.pins > 0, "unpinning an unpinned twin");
        e.pins = e.pins.saturating_sub(1);
    }

    /// Drop every unpinned twin whose host-side registration is no longer
    /// live — twins die with a crashed daemon, so this flushes the whole
    /// cache after a control-epoch bump. Returns how many were dropped.
    pub(crate) fn invalidate_dead(&mut self, res: &Resources) -> usize {
        let rank = self.rank;
        let trace = self.trace.clone();
        let mut dropped = 0usize;
        self.entries.retain(|e| {
            if e.pins == 0 && !res.mr_live(e.omr.host_mr.key()) {
                let key = e.omr.host_mr.key().0;
                trace.record(|| TraceEvent::MrInvalidated { rank, key });
                dropped += 1;
                false
            } else {
                true
            }
        });
        self.stats.invalidated += dropped as u64;
        self.stats.deregistered += dropped as u64;
        dropped
    }

    pub fn clear(&mut self, ctx: &mut Ctx, res: &Resources) {
        let rank = self.rank;
        for e in self.entries.drain(..) {
            debug_assert_eq!(
                e.pins, 0,
                "finalize with a pinned offload lease outstanding"
            );
            let key = e.omr.host_mr.key().0;
            res.dereg_offload(ctx, e.omr);
            self.stats.deregistered += 1;
            self.trace.record(|| TraceEvent::MrDeregister { rank, key });
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}
