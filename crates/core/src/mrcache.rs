//! The buffer cache pool (paper §IV-B3): memory-region registration on the
//! Phi is expensive (offloaded to the host), so DCFA-MPI caches the most
//! recently used regions. A lookup hits when a cached region *contains* the
//! requested range. Eviction is least-recently-used.
//!
//! The same structure caches offloading twin buffers (host-side staging
//! regions of `reg_offload_mr`), which are just as expensive to create.

use dcfa::OffloadMr;
use fabric::Buffer;
use simcore::Ctx;
use verbs::MemoryRegion;

use crate::resources::Resources;

struct Entry {
    addr: u64,
    len: u64,
    mr: MemoryRegion,
    last_use: u64,
}

/// LRU cache of registered memory regions.
pub struct MrCache {
    capacity: usize,
    entries: Vec<Entry>,
    clock: u64,
    /// Lookup statistics (exposed for the ablation benches).
    pub hits: u64,
    pub misses: u64,
}

impl MrCache {
    /// `capacity == 0` disables caching: every lookup registers and every
    /// release deregisters immediately.
    pub fn new(capacity: usize) -> Self {
        MrCache { capacity, entries: Vec::new(), clock: 0, hits: 0, misses: 0 }
    }

    /// Get a region covering `buf`, registering (and caching) on miss.
    pub fn get_or_register(&mut self, ctx: &mut Ctx, res: &Resources, buf: &Buffer) -> MemoryRegion {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.addr <= buf.addr && buf.addr + buf.len <= e.addr + e.len)
        {
            e.last_use = clock;
            self.hits += 1;
            return e.mr.clone();
        }
        self.misses += 1;
        let mr = res.reg_mr(ctx, buf.clone());
        if self.capacity == 0 {
            return mr; // caller-managed lifetime; released via `release`
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            let evicted = self.entries.swap_remove(lru);
            res.dereg_mr(ctx, &evicted.mr);
        }
        self.entries.push(Entry { addr: buf.addr, len: buf.len, mr: mr.clone(), last_use: clock });
        mr
    }

    /// Drop everything (finalize).
    pub fn clear(&mut self, ctx: &mut Ctx, res: &Resources) {
        for e in self.entries.drain(..) {
            res.dereg_mr(ctx, &e.mr);
        }
    }

    /// Number of cached regions (ablation instrumentation).
    pub fn cached_regions(&self) -> usize {
        self.entries.len()
    }
}

/// LRU cache of offloading twin buffers keyed by the Phi-side range.
pub struct OffloadCache {
    capacity: usize,
    entries: Vec<OffloadEntry>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

struct OffloadEntry {
    addr: u64,
    len: u64,
    omr: OffloadMr,
    last_use: u64,
}

impl OffloadCache {
    pub fn new(capacity: usize) -> Self {
        OffloadCache { capacity: capacity.max(1), entries: Vec::new(), clock: 0, hits: 0, misses: 0 }
    }

    /// Get (or create) the offload twin for a Phi buffer. The returned
    /// index stays valid until the next call.
    pub fn get_or_create(&mut self, ctx: &mut Ctx, res: &Resources, buf: &Buffer) -> &OffloadMr {
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.addr == buf.addr && e.len == buf.len)
        {
            self.entries[i].last_use = clock;
            self.hits += 1;
            return &self.entries[i].omr;
        }
        self.misses += 1;
        let omr = res.reg_offload(ctx, buf).expect("offload requires Phi placement");
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            let evicted = self.entries.swap_remove(lru);
            res.dereg_offload(ctx, evicted.omr);
        }
        self.entries.push(OffloadEntry { addr: buf.addr, len: buf.len, omr, last_use: clock });
        &self.entries.last().expect("just pushed").omr
    }

    pub fn clear(&mut self, ctx: &mut Ctx, res: &Resources) {
        for e in self.entries.drain(..) {
            res.dereg_offload(ctx, e.omr);
        }
    }
}
