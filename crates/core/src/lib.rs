//! # dcfa-mpi — Direct MPI Library for (simulated) Intel Xeon Phi co-processors
//!
//! A faithful reimplementation of the paper's DCFA-MPI library on the
//! simulated hardware substrate:
//!
//! * point-to-point messaging over DCFA's InfiniBand interface with the
//!   paper's four protocols (Eager, sender-first / receiver-first /
//!   simultaneous rendezvous), per-pair sequence ids, `MPI_ANY_SOURCE`
//!   sequence locking and mis-prediction recovery (§IV-B3);
//! * the offloading send buffer for large messages (§IV-B4);
//! * the memory-region buffer cache pool;
//! * collectives layered on P2P;
//! * an `mpirun`-style launcher ([`launch`]) with Phi (DCFA-MPI) and Host
//!   (YAMPII baseline) placements.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//! use dcfa_mpi::{launch, Communicator, LaunchOpts, MpiConfig, Src, TagSel};
//!
//! let mut sim = simcore::Simulation::new();
//! let cluster = fabric::Cluster::new(sim.scheduler(), fabric::ClusterConfig::with_nodes(2));
//! let ib = verbs::IbFabric::new(cluster.clone());
//! let scif = scif::ScifFabric::new(cluster);
//! let got = Arc::new(Mutex::new(Vec::new()));
//! let got2 = got.clone();
//! launch(&sim, &ib, &scif, MpiConfig::dcfa(), 2, LaunchOpts::default(), move |ctx, comm| {
//!     let buf = comm.alloc(64).unwrap();
//!     if comm.rank() == 0 {
//!         comm.write(&buf, 0, b"hello phi");
//!         comm.send(ctx, &buf, 1, 7).unwrap();
//!     } else {
//!         comm.recv(ctx, &buf, Src::Rank(0), TagSel::Tag(7)).unwrap();
//!         got2.lock().extend_from_slice(&comm.read_vec(&buf)[..9]);
//!     }
//! });
//! sim.run_expect();
//! assert_eq!(&*got.lock(), b"hello phi");
//! ```

pub mod collectives;
mod comm;
mod config;
mod connect;
pub mod datatype;
mod engine;
pub mod hostcoll;
pub mod hotpath;
pub mod metrics;
mod mrcache;
mod packet;
mod resources;
pub mod slots;
mod stats;
pub mod subcomm;
pub mod trace;
mod types;
mod world;

pub use comm::{Comm, Communicator, Persistent};
pub use config::{MpiConfig, Placement};
pub use connect::ConnDirectory;
pub use engine::{CommStats, Engine, PeerEndpoint};
pub use metrics::{HistogramSnapshot, MetricKey, Metrics, MetricsHub, Phase, Span};
pub use mrcache::CacheStats;
pub use packet::PacketKind;
pub use resources::Resources;
pub use stats::{StatsCell, StatsReport};
pub use trace::{audit, AuditReport, MsgStage, TraceBuf, TraceEvent};
pub use types::{
    Datatype, MpiError, Rank, ReduceOp, Request, Src, Status, Tag, TagSel, TransportOp,
};
pub use world::{launch, KillSpec, LaunchOpts};
