//! The `mpirun` analogue: launch `n` ranks as simulated processes, run the
//! out-of-band bootstrap (QP number / ring address exchange — the job the
//! real launcher does over its PMI channel), and hand each rank a
//! [`Comm`].

use std::sync::Arc;

use fabric::{Domain, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, SimEvent, Simulation};
use verbs::{IbFabric, VerbsContext};

use crate::comm::Comm;
use crate::config::{MpiConfig, Placement};
use crate::connect::ConnDirectory;
use crate::engine::Engine;
use crate::resources::Resources;

struct Boot {
    n: usize,
    event: SimEvent,
    /// Start/finalize barrier counter. Endpoints are no longer exchanged
    /// here: QPs and rings establish lazily on first touch through the
    /// [`ConnDirectory`], so bootstrap is O(ranks), not O(ranks²).
    arrived: Mutex<usize>,
}

/// Launch options beyond the MPI configuration itself.
#[derive(Debug, Clone)]
pub struct LaunchOpts {
    /// Spawn the per-node DCFA daemons (needed exactly once per simulation
    /// for Phi placement; set false if the caller already did).
    pub spawn_daemons: bool,
    /// Node for rank r is `nodes[r % nodes.len()]`… by default simply
    /// `r % cluster nodes` (one rank per node up to the cluster size, like
    /// the paper's one-Phi-per-node runs).
    pub ranks_per_node: usize,
    /// *Symmetric mode* (the third Intel MPI mode of §III-B): an explicit
    /// per-rank placement overriding `cfg.placement`. Ranks on the Phi use
    /// DCFA (with the offloading send buffer); ranks on the host use host
    /// verbs directly. `None` = homogeneous placement from the config.
    pub placements: Option<Vec<Placement>>,
    /// Shared protocol-event ring every rank's engine records into
    /// (see [`crate::trace`]). `None` = tracing off. Only effective with
    /// the `trace` cargo feature (default); without it the field is
    /// accepted but ignored.
    pub tracer: Option<crate::trace::TraceBuf>,
    /// Tunables (and fault plans) for the node daemons this launch
    /// spawns. Ignored when `spawn_daemons` is false. When a tracer is
    /// attached and no explicit hook is set, control-plane events are
    /// bridged into the trace ring so the auditor sees crash/respawn/
    /// re-attach alongside the data path.
    pub daemon: dcfa::DaemonConfig,
    /// Shared latency-metrics hub every rank's engine records into (see
    /// [`crate::metrics`]). `None` = profiling off. Only effective with
    /// the `trace` cargo feature (default); without it the field is
    /// accepted but ignored.
    pub metrics: Option<crate::metrics::MetricsHub>,
}

impl Default for LaunchOpts {
    fn default() -> Self {
        LaunchOpts {
            spawn_daemons: true,
            ranks_per_node: 1,
            placements: None,
            tracer: None,
            daemon: dcfa::DaemonConfig::default(),
            metrics: None,
        }
    }
}

/// Bridge [`dcfa::CtrlPerf`] latency samples into the metrics hub:
/// command round-trips and offload-twin PCIe syncs become
/// [`crate::metrics::Phase::CtrlRoundtrip`] / `OffloadSync` histogram
/// entries (peer unknown at this layer).
#[cfg(feature = "trace")]
fn ctrl_perf_probe(hub: crate::metrics::MetricsHub) -> dcfa::PerfProbe {
    use crate::metrics::Phase;
    Arc::new(move |p: dcfa::CtrlPerf| {
        let phase = match p.op {
            dcfa::CtrlOp::Command => Phase::CtrlRoundtrip,
            dcfa::CtrlOp::OffloadSync => Phase::OffloadSync,
        };
        hub.record(phase, p.bytes, None, p.ns);
    })
}

/// Bridge [`dcfa::CtrlEvent`]s into the structured trace ring, so the
/// auditor can check control-plane invariants (crash/respawn pairing,
/// full journal replay) against the same stream as the data path.
#[cfg(feature = "trace")]
fn ctrl_trace_hook(buf: crate::trace::TraceBuf) -> dcfa::CtrlHook {
    use crate::trace::TraceEvent;
    use dcfa::CtrlEvent;
    Arc::new(move |ev: &CtrlEvent| {
        let tev = match *ev {
            CtrlEvent::CmdTimeout { client, seq } => TraceEvent::CtrlTimeout { client, seq },
            CtrlEvent::CmdRetry {
                client,
                seq,
                attempt,
            } => TraceEvent::CtrlRetry {
                client,
                seq,
                attempt,
            },
            CtrlEvent::Reattach {
                client,
                epoch,
                journaled,
                replayed,
            } => TraceEvent::CtrlReattach {
                client,
                epoch,
                journaled,
                replayed,
            },
            CtrlEvent::DaemonCrash { node, epoch } => TraceEvent::DaemonCrash {
                node: node.0,
                epoch,
            },
            CtrlEvent::DaemonRespawn { node, epoch } => TraceEvent::DaemonRespawn {
                node: node.0,
                epoch,
            },
            CtrlEvent::LeaseReclaim {
                node,
                client,
                objects,
            } => TraceEvent::LeaseReclaim {
                node: node.0,
                client,
                objects,
            },
            CtrlEvent::ReplyReplayed { node, client, seq } => TraceEvent::CtrlReplay {
                node: node.0,
                client,
                seq,
            },
            // The engine records rank-level degradation itself (it knows
            // the rank; the daemon only knows the session id).
            CtrlEvent::OffloadDegraded { .. } => return,
        };
        buf.record(tev);
    })
}

/// Launch `n` MPI ranks running `f`. Rank `r` executes on node
/// `r / ranks_per_node % cluster_nodes`, in the domain selected by
/// `cfg.placement`.
///
/// Returns the [`dcfa::DcfaStats`] counter handle for the daemons this
/// call spawned (`None` when it spawned none — host placement, or
/// `opts.spawn_daemons == false`).
pub fn launch<F>(
    sim: &Simulation,
    ib: &Arc<IbFabric>,
    scif: &Arc<ScifFabric>,
    cfg: MpiConfig,
    n: usize,
    opts: LaunchOpts,
    f: F,
) -> Option<dcfa::DcfaStats>
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    assert!(n >= 1, "need at least one rank");
    cfg.validate();
    if let Some(p) = &opts.placements {
        assert_eq!(p.len(), n, "one placement per rank");
    }
    let any_phi = opts
        .placements
        .as_ref()
        .map(|ps| ps.contains(&Placement::Phi))
        .unwrap_or(cfg.placement == Placement::Phi);
    // Bridge control-plane events into the trace ring (unless the caller
    // installed their own observer).
    #[cfg(feature = "trace")]
    let ctrl_hook: Option<dcfa::CtrlHook> = opts.tracer.clone().map(ctrl_trace_hook);
    #[cfg(not(feature = "trace"))]
    let ctrl_hook: Option<dcfa::CtrlHook> = None;
    // Bridge control-plane latency samples into the metrics hub.
    #[cfg(feature = "trace")]
    let ctrl_perf: Option<dcfa::PerfProbe> = opts.metrics.clone().map(ctrl_perf_probe);
    #[cfg(not(feature = "trace"))]
    let ctrl_perf: Option<dcfa::PerfProbe> = None;
    let daemon_stats = if any_phi && opts.spawn_daemons {
        let mut dcfg = opts.daemon.clone();
        if dcfg.hook.is_none() {
            dcfg.hook = ctrl_hook.clone();
        }
        Some(dcfa::spawn_daemons_with(&sim.scheduler(), scif, ib, dcfg))
    } else {
        None
    };
    let boot = Arc::new(Boot {
        n,
        event: SimEvent::new(),
        arrived: Mutex::new(0),
    });
    // Connect requests travel one wire hop, like the control traffic of
    // the real out-of-band channel.
    let conn = ConnDirectory::new(n, ib.cluster().config().cost.ib_latency);
    let f = Arc::new(f);
    let nodes = ib.cluster().num_nodes();
    for r in 0..n {
        let node = NodeId(r / opts.ranks_per_node.max(1) % nodes);
        let ib = ib.clone();
        let scif = scif.clone();
        let mut cfg = cfg.clone();
        if let Some(p) = opts.placements.as_ref().map(|ps| ps[r]) {
            cfg.placement = p;
            if p == Placement::Host {
                // The offloading send buffer is a Phi-only mechanism.
                cfg.offload_threshold = None;
            }
        }
        let boot = boot.clone();
        let f = f.clone();
        let tracer = opts.tracer.clone();
        let metrics = opts.metrics.clone();
        let daemon_stats = daemon_stats.clone();
        let ctrl_hook = ctrl_hook.clone();
        let ctrl_perf = ctrl_perf.clone();
        let conn = conn.clone();
        let pid = sim.spawn(format!("rank{r}"), move |ctx| {
            let res = match cfg.placement {
                Placement::Phi => {
                    let dcfg = dcfa::DcfaConfig {
                        cmd_timeout: cfg.cmd_timeout,
                        cmd_retry_limit: cfg.cmd_retry_limit,
                        heartbeat_interval: cfg.heartbeat_interval,
                        stats: daemon_stats.clone().unwrap_or_default(),
                        hook: ctrl_hook,
                        perf: ctrl_perf,
                        ..dcfa::DcfaConfig::default()
                    };
                    let d = dcfa::DcfaContext::open_with(ctx, &ib, &scif, node, dcfg)
                        .expect("DCFA open failed");
                    Resources::Phi(d)
                }
                Placement::Host => {
                    Resources::Host(VerbsContext::open(ib.clone(), node, Domain::Host))
                }
            };
            let mut engine = Engine::create(ctx, r, n, cfg, res, conn);
            if let Some(t) = &tracer {
                engine.set_tracer(t.clone());
            }
            if let Some(m) = &metrics {
                engine.set_metrics(m.clone());
            }

            // Start barrier: every rank has registered with the connect
            // directory before anyone's first send can race it.
            barrier_boot(ctx, &boot);

            let mut comm = Comm::new(engine);
            f(ctx, &mut comm);

            // MPI_Finalize: flush outstanding protocol acknowledgements,
            // synchronize, then tear down.
            comm.quiesce(ctx);
            barrier_boot(ctx, &boot);
            comm.finalize(ctx);
        });
        // Shard the event wheel by simulated node: a rank's events stay
        // on its node's wheel (purely load-balancing metadata — the
        // merged execution order is identical at any shard count).
        sim.assign_shard(pid, node.0);
    }
    daemon_stats
}

/// Out-of-band barrier used by the launcher (not charged as MPI traffic).
fn barrier_boot(ctx: &mut Ctx, boot: &Boot) {
    let gen_target = {
        let mut a = boot.arrived.lock();
        *a += 1;
        (*a).div_ceil(boot.n) * boot.n
    };
    boot.event.notify_all(&ctx.scheduler());
    loop {
        let seen = boot.event.epoch();
        if *boot.arrived.lock() >= gen_target {
            break;
        }
        ctx.wait_event(&boot.event, seen, "mpi finalize barrier");
    }
}
