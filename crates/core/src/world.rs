//! The `mpirun` analogue: launch `n` ranks as simulated processes, run the
//! out-of-band bootstrap (QP number / ring address exchange — the job the
//! real launcher does over its PMI channel), and hand each rank a
//! [`Comm`].

use std::sync::Arc;

use fabric::{Domain, HealthBoard, NodeId};
use parking_lot::Mutex;
use scif::ScifFabric;
use simcore::{Ctx, SimDuration, SimEvent, Simulation};
use verbs::{IbFabric, VerbsContext};

use crate::comm::Comm;
use crate::config::{MpiConfig, Placement};
use crate::connect::ConnDirectory;
use crate::engine::{Engine, KillMarker};
use crate::resources::Resources;
use crate::types::Rank;

struct Boot {
    n: usize,
    event: SimEvent,
    /// Start/finalize barrier counter. Endpoints are no longer exchanged
    /// here: QPs and rings establish lazily on first touch through the
    /// [`ConnDirectory`], so bootstrap is O(ranks), not O(ranks²).
    arrived: Mutex<usize>,
    /// Ranks that fail-stopped and will never arrive again. A dead rank
    /// counts toward every barrier generation after its death, so
    /// survivors are not stranded at finalize.
    dead: Mutex<usize>,
}

/// One fail-stop injection: kill `rank` as it enters its
/// `after_ops`-th MPI operation (`isend`/`irecv` entry count — a
/// deterministic trigger independent of wall-clock and timer jitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: Rank,
    pub after_ops: u64,
}

/// Launch options beyond the MPI configuration itself.
#[derive(Debug, Clone)]
pub struct LaunchOpts {
    /// Spawn the per-node DCFA daemons (needed exactly once per simulation
    /// for Phi placement; set false if the caller already did).
    pub spawn_daemons: bool,
    /// Node for rank r is `nodes[r % nodes.len()]`… by default simply
    /// `r % cluster nodes` (one rank per node up to the cluster size, like
    /// the paper's one-Phi-per-node runs).
    pub ranks_per_node: usize,
    /// *Symmetric mode* (the third Intel MPI mode of §III-B): an explicit
    /// per-rank placement overriding `cfg.placement`. Ranks on the Phi use
    /// DCFA (with the offloading send buffer); ranks on the host use host
    /// verbs directly. `None` = homogeneous placement from the config.
    pub placements: Option<Vec<Placement>>,
    /// Shared protocol-event ring every rank's engine records into
    /// (see [`crate::trace`]). `None` = tracing off. Only effective with
    /// the `trace` cargo feature (default); without it the field is
    /// accepted but ignored.
    pub tracer: Option<crate::trace::TraceBuf>,
    /// Tunables (and fault plans) for the node daemons this launch
    /// spawns. Ignored when `spawn_daemons` is false. When a tracer is
    /// attached and no explicit hook is set, control-plane events are
    /// bridged into the trace ring so the auditor sees crash/respawn/
    /// re-attach alongside the data path.
    pub daemon: dcfa::DaemonConfig,
    /// Shared latency-metrics hub every rank's engine records into (see
    /// [`crate::metrics`]). `None` = profiling off. Only effective with
    /// the `trace` cargo feature (default); without it the field is
    /// accepted but ignored.
    pub metrics: Option<crate::metrics::MetricsHub>,
    /// Fail-stop kill schedule. Non-empty installs the failure subsystem
    /// (health board + QP teardown hooks); each spec tears one rank down
    /// mid-flight. Requires one rank per node — a kill models a whole
    /// co-processor card dying.
    pub kills: Vec<KillSpec>,
    /// Deterministic connect-handshake frame loss `(after, count)`: the
    /// launch's [`ConnDirectory`] silently drops `count` REQ/ACK frames
    /// after letting `after` through. Exercises the lazy-connect
    /// retry/backoff path (see `CommStats::conn_retries`).
    pub conn_drops: Option<(u64, u64)>,
    /// Caller-supplied health board (must be sized to the rank count).
    /// Lets a harness read detection counters and latency samples after
    /// the run. `None` = the launch creates one itself when the failure
    /// subsystem is needed.
    pub health: Option<Arc<HealthBoard>>,
}

impl Default for LaunchOpts {
    fn default() -> Self {
        LaunchOpts {
            spawn_daemons: true,
            ranks_per_node: 1,
            placements: None,
            tracer: None,
            daemon: dcfa::DaemonConfig::default(),
            metrics: None,
            kills: Vec::new(),
            conn_drops: None,
            health: None,
        }
    }
}

/// Bridge [`dcfa::CtrlPerf`] latency samples into the metrics hub:
/// command round-trips and offload-twin PCIe syncs become
/// [`crate::metrics::Phase::CtrlRoundtrip`] / `OffloadSync` histogram
/// entries (peer unknown at this layer).
#[cfg(feature = "trace")]
fn ctrl_perf_probe(hub: crate::metrics::MetricsHub) -> dcfa::PerfProbe {
    use crate::metrics::Phase;
    Arc::new(move |p: dcfa::CtrlPerf| {
        let phase = match p.op {
            dcfa::CtrlOp::Command => Phase::CtrlRoundtrip,
            dcfa::CtrlOp::OffloadSync => Phase::OffloadSync,
        };
        hub.record(phase, p.bytes, None, p.ns);
    })
}

/// Bridge [`dcfa::CtrlEvent`]s into the structured trace ring, so the
/// auditor can check control-plane invariants (crash/respawn pairing,
/// full journal replay) against the same stream as the data path.
#[cfg(feature = "trace")]
fn ctrl_trace_hook(buf: crate::trace::TraceBuf) -> dcfa::CtrlHook {
    use crate::trace::TraceEvent;
    use dcfa::CtrlEvent;
    Arc::new(move |ev: &CtrlEvent| {
        let tev = match *ev {
            CtrlEvent::CmdTimeout { client, seq } => TraceEvent::CtrlTimeout { client, seq },
            CtrlEvent::CmdRetry {
                client,
                seq,
                attempt,
            } => TraceEvent::CtrlRetry {
                client,
                seq,
                attempt,
            },
            CtrlEvent::Reattach {
                client,
                epoch,
                journaled,
                replayed,
            } => TraceEvent::CtrlReattach {
                client,
                epoch,
                journaled,
                replayed,
            },
            CtrlEvent::DaemonCrash { node, epoch } => TraceEvent::DaemonCrash {
                node: node.0,
                epoch,
            },
            CtrlEvent::DaemonRespawn { node, epoch } => TraceEvent::DaemonRespawn {
                node: node.0,
                epoch,
            },
            CtrlEvent::LeaseReclaim {
                node,
                client,
                objects,
            } => TraceEvent::LeaseReclaim {
                node: node.0,
                client,
                objects,
            },
            CtrlEvent::ReplyReplayed { node, client, seq } => TraceEvent::CtrlReplay {
                node: node.0,
                client,
                seq,
            },
            // The engine records rank-level degradation itself (it knows
            // the rank; the daemon only knows the session id).
            CtrlEvent::OffloadDegraded { .. } => return,
        };
        buf.record(tev);
    })
}

/// Launch `n` MPI ranks running `f`. Rank `r` executes on node
/// `r / ranks_per_node % cluster_nodes`, in the domain selected by
/// `cfg.placement`.
///
/// Returns the [`dcfa::DcfaStats`] counter handle for the daemons this
/// call spawned (`None` when it spawned none — host placement, or
/// `opts.spawn_daemons == false`).
pub fn launch<F>(
    sim: &Simulation,
    ib: &Arc<IbFabric>,
    scif: &Arc<ScifFabric>,
    cfg: MpiConfig,
    n: usize,
    opts: LaunchOpts,
    f: F,
) -> Option<dcfa::DcfaStats>
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    assert!(n >= 1, "need at least one rank");
    cfg.validate();
    if let Some(p) = &opts.placements {
        assert_eq!(p.len(), n, "one placement per rank");
    }
    let any_phi = opts
        .placements
        .as_ref()
        .map(|ps| ps.contains(&Placement::Phi))
        .unwrap_or(cfg.placement == Placement::Phi);
    // Bridge control-plane events into the trace ring (unless the caller
    // installed their own observer).
    #[cfg(feature = "trace")]
    let ctrl_hook: Option<dcfa::CtrlHook> = opts.tracer.clone().map(ctrl_trace_hook);
    #[cfg(not(feature = "trace"))]
    let ctrl_hook: Option<dcfa::CtrlHook> = None;
    // Bridge control-plane latency samples into the metrics hub.
    #[cfg(feature = "trace")]
    let ctrl_perf: Option<dcfa::PerfProbe> = opts.metrics.clone().map(ctrl_perf_probe);
    #[cfg(not(feature = "trace"))]
    let ctrl_perf: Option<dcfa::PerfProbe> = None;
    let daemon_stats = if any_phi && opts.spawn_daemons {
        let mut dcfg = opts.daemon.clone();
        if dcfg.hook.is_none() {
            dcfg.hook = ctrl_hook.clone();
        }
        Some(dcfa::spawn_daemons_with(&sim.scheduler(), scif, ib, dcfg))
    } else {
        None
    };
    let boot = Arc::new(Boot {
        n,
        event: SimEvent::new(),
        arrived: Mutex::new(0),
        dead: Mutex::new(0),
    });
    // Connect requests travel one wire hop, like the control traffic of
    // the real out-of-band channel.
    let conn = ConnDirectory::new(n, ib.cluster().config().cost.ib_latency);
    if let Some((after, count)) = opts.conn_drops {
        conn.inject_drop_after(after, count);
    }
    // Failure subsystem: installed when a kill schedule or a detection
    // TTL asks for it; fault-free launches pay nothing.
    let board = if !opts.kills.is_empty() || cfg.peer_ttl.is_some() || opts.health.is_some() {
        let b = opts.health.clone().unwrap_or_else(|| HealthBoard::new(n));
        assert_eq!(b.num_ranks(), n, "health board sized to the rank count");
        ib.cluster().install_health(b.clone());
        Some(b)
    } else {
        None
    };
    if !opts.kills.is_empty() {
        assert_eq!(
            opts.ranks_per_node.max(1),
            1,
            "fail-stop injection kills a whole co-processor card: use one rank per node"
        );
        for k in &opts.kills {
            assert!(k.rank < n, "kill spec targets rank {} of {n}", k.rank);
        }
        silence_kill_panics();
    }
    let f = Arc::new(f);
    let nodes = ib.cluster().num_nodes();
    for r in 0..n {
        let node = NodeId(r / opts.ranks_per_node.max(1) % nodes);
        let ib = ib.clone();
        let scif = scif.clone();
        let mut cfg = cfg.clone();
        if let Some(p) = opts.placements.as_ref().map(|ps| ps[r]) {
            cfg.placement = p;
            if p == Placement::Host {
                // The offloading send buffer is a Phi-only mechanism.
                cfg.offload_threshold = None;
            }
        }
        let boot = boot.clone();
        let f = f.clone();
        let tracer = opts.tracer.clone();
        let metrics = opts.metrics.clone();
        let daemon_stats = daemon_stats.clone();
        let ctrl_hook = ctrl_hook.clone();
        let ctrl_perf = ctrl_perf.clone();
        let conn = conn.clone();
        let board = board.clone();
        let kill_after = opts.kills.iter().find(|k| k.rank == r).map(|k| k.after_ops);
        // Fail-stop teardown: error every QP on the rank's node (one
        // rank per node when kills are armed, so this is exactly the
        // rank's fabric presence).
        if let Some(b) = &board {
            let ib_down = ib.clone();
            b.set_teardown(r, Box::new(move |_s| ib_down.kill_node(node)));
        }
        let pid = sim.spawn(format!("rank{r}"), move |ctx| {
            let res = match cfg.placement {
                Placement::Phi => {
                    let dcfg = dcfa::DcfaConfig {
                        cmd_timeout: cfg.cmd_timeout,
                        cmd_retry_limit: cfg.cmd_retry_limit,
                        heartbeat_interval: cfg.heartbeat_interval,
                        stats: daemon_stats.clone().unwrap_or_default(),
                        hook: ctrl_hook,
                        perf: ctrl_perf,
                        ..dcfa::DcfaConfig::default()
                    };
                    let d = dcfa::DcfaContext::open_with(ctx, &ib, &scif, node, dcfg)
                        .expect("DCFA open failed");
                    Resources::Phi(d)
                }
                Placement::Host => {
                    Resources::Host(VerbsContext::open(ib.clone(), node, Domain::Host))
                }
            };
            let peer_ttl = cfg.peer_ttl;
            let mut engine = Engine::create(ctx, r, n, cfg, res, conn);
            if let Some(t) = &tracer {
                engine.set_tracer(t.clone());
            }
            if let Some(m) = &metrics {
                engine.set_metrics(m.clone());
            }
            if let Some(b) = &board {
                engine.set_health(b.clone());
                // Deaths and revocations wake ranks blocked in wait.
                b.register_watcher(engine.progress_event_handle());
                if let Some(k) = kill_after {
                    engine.set_kill_after(k);
                }
                if let Some(ttl) = peer_ttl {
                    let period = SimDuration::from_nanos((ttl.as_nanos() / 4).max(1));
                    b.start_sidecar(&ctx.scheduler(), r, period, ttl);
                }
            }

            // Start barrier: every rank has registered with the connect
            // directory before anyone's first send can race it. Kills
            // only fire on MPI entry ops, so every rank passes this.
            barrier_boot(ctx, &boot);

            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut comm = Comm::new(engine);
                f(ctx, &mut comm);

                // MPI_Finalize: flush outstanding protocol
                // acknowledgements, synchronize, then tear down.
                comm.quiesce(ctx);
                barrier_boot(ctx, &boot);
                comm.finalize(ctx);
            }));
            match run {
                Ok(()) => {}
                Err(payload) => {
                    if payload.downcast_ref::<KillMarker>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    // Fail-stop unwind: the rank is gone. Count it so
                    // survivors are not stranded at the finalize barrier.
                    note_death(ctx, &boot);
                }
            }
            if let Some(b) = &board {
                b.mark_done();
            }
        });
        // Shard the event wheel by simulated node: a rank's events stay
        // on its node's wheel (purely load-balancing metadata — the
        // merged execution order is identical at any shard count).
        sim.assign_shard(pid, node.0);
    }
    daemon_stats
}

/// Out-of-band barrier used by the launcher (not charged as MPI traffic).
/// Dead ranks count toward the generation target: a barrier generation
/// completes when live arrivals plus deaths cover every rank.
fn barrier_boot(ctx: &mut Ctx, boot: &Boot) {
    let gen_target = {
        let mut a = boot.arrived.lock();
        *a += 1;
        (*a + *boot.dead.lock()).div_ceil(boot.n) * boot.n
    };
    boot.event.notify_all(&ctx.scheduler());
    loop {
        let seen = boot.event.epoch();
        if *boot.arrived.lock() + *boot.dead.lock() >= gen_target {
            break;
        }
        ctx.wait_event(&boot.event, seen, "mpi finalize barrier");
    }
}

/// A rank fail-stopped: record the death and wake barrier waiters.
fn note_death(ctx: &mut Ctx, boot: &Boot) {
    *boot.dead.lock() += 1;
    boot.event.notify_all(&ctx.scheduler());
}

/// Fail-stop unwinds are expected control flow, not failures: keep the
/// default panic hook from spraying a backtrace for every injected kill
/// while leaving real panics fully reported.
fn silence_kill_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KillMarker>().is_none() {
                prev(info);
            }
        }));
    });
}
