//! Consolidated counter snapshots: one [`StatsReport`] per rank, built
//! by `Engine::dump` / `Comm::dump`, printable as the `repro --stats`
//! table.

use std::fmt;

use crate::engine::CommStats;
use crate::mrcache::CacheStats;
use crate::types::Rank;

/// Snapshot of every counter a rank's engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    pub rank: Rank,
    /// Protocol/traffic counters.
    pub comm: CommStats,
    /// MR cache pool counters.
    pub mr_cache: CacheStats,
    /// Offloading-twin cache counters.
    pub offload: CacheStats,
    /// Regions currently resident in the MR cache.
    pub mr_cached: usize,
    /// Regions currently pinned by outstanding leases.
    pub mr_pinned: usize,
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.comm;
        writeln!(f, "rank {}:", self.rank)?;
        writeln!(
            f,
            "  sends      eager {:>8}  rndv {:>8}  (recv-first {}, send-first {})",
            c.eager_sends,
            c.rndv_sends,
            c.rndv_recv_first,
            c.rndv_sends - c.rndv_recv_first,
        )?;
        writeln!(
            f,
            "  traffic    sent {:>10} B  received {:>10} B  packets {:>8}",
            c.bytes_sent, c.bytes_received, c.packets_processed
        )?;
        writeln!(
            f,
            "  flow ctl   credit grants {:>6}  stale RTRs dropped {:>4}",
            c.credit_grants, c.stale_rtrs_dropped
        )?;
        writeln!(
            f,
            "  recovery   wc faults {:>5}  retries {:>4}  failed {:>4}  reissues {:>4}",
            c.wr_faults, c.wr_retries, c.transport_failures, c.handshake_reissues
        )?;
        writeln!(
            f,
            "  mr cache   hits {:>6}  misses {:>4}  evictions {:>4}  reg {:>4}  dereg {:>4}  \
             invalidated {:>4}  (resident {}, pinned {})",
            self.mr_cache.hits,
            self.mr_cache.misses,
            self.mr_cache.evictions,
            self.mr_cache.registered,
            self.mr_cache.deregistered,
            self.mr_cache.invalidated,
            self.mr_cached,
            self.mr_pinned,
        )?;
        write!(
            f,
            "  offload    syncs {:>5}  twin hits {:>4}  misses {:>4}  evictions {:>4}  \
             invalidated {:>4}  fallbacks {:>4}",
            c.offload_syncs,
            self.offload.hits,
            self.offload.misses,
            self.offload.evictions,
            self.offload.invalidated,
            c.offload_fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let r = StatsReport {
            rank: 3,
            comm: CommStats {
                eager_sends: 10,
                rndv_sends: 4,
                rndv_recv_first: 1,
                ..Default::default()
            },
            mr_cache: CacheStats {
                hits: 6,
                misses: 2,
                ..Default::default()
            },
            offload: CacheStats::default(),
            mr_cached: 2,
            mr_pinned: 0,
        };
        let s = r.to_string();
        assert!(s.contains("rank 3:"), "{s}");
        assert!(s.contains("send-first 3"), "{s}");
        assert!(s.contains("hits      6"), "{s}");
    }
}
