//! Consolidated counter snapshots: one [`StatsReport`] per rank, built
//! by `Engine::dump` / `Comm::dump`, printable as the `repro --stats`
//! table.
//!
//! [`StatsCell`] is the concurrent publication point: the engine
//! publishes whole reports into it (on `dump`, `quiesce` and
//! `finalize`), and observers on other threads read them back via one
//! pass of `Acquire` loads with seqlock validation — a read never tears
//! across fields mid-update.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::CommStats;
use crate::mrcache::CacheStats;
use crate::types::Rank;

/// Snapshot of every counter a rank's engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    pub rank: Rank,
    /// Protocol/traffic counters.
    pub comm: CommStats,
    /// MR cache pool counters.
    pub mr_cache: CacheStats,
    /// Offloading-twin cache counters.
    pub offload: CacheStats,
    /// Regions currently resident in the MR cache.
    pub mr_cached: usize,
    /// Regions currently pinned by outstanding leases.
    pub mr_pinned: usize,
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.comm;
        writeln!(f, "rank {}:", self.rank)?;
        writeln!(
            f,
            "  sends      eager {:>8}  rndv {:>8}  (recv-first {}, send-first {})",
            c.eager_sends,
            c.rndv_sends,
            c.rndv_recv_first,
            c.rndv_sends - c.rndv_recv_first,
        )?;
        writeln!(
            f,
            "  traffic    sent {:>10} B  received {:>10} B  packets {:>8}",
            c.bytes_sent, c.bytes_received, c.packets_processed
        )?;
        writeln!(
            f,
            "  flow ctl   credit grants {:>6}  stale RTRs dropped {:>4}  credit parks {:>5}",
            c.credit_grants, c.stale_rtrs_dropped, c.credit_parks
        )?;
        writeln!(
            f,
            "  recovery   wc faults {:>5}  retries {:>4}  failed {:>4}  reissues {:>4}",
            c.wr_faults, c.wr_retries, c.transport_failures, c.handshake_reissues
        )?;
        writeln!(
            f,
            "  hot path   doorbells coalesced {:>5}  replay entries pruned {:>5}",
            c.doorbells_coalesced, c.replay_pruned
        )?;
        writeln!(
            f,
            "  scale      pairs established {:>5}  comm buffers {:>10} B  srq hw {:>4}",
            c.pairs_established, c.comm_buffer_bytes, c.srq_highwater
        )?;
        writeln!(
            f,
            "  mr cache   hits {:>6}  misses {:>4}  evictions {:>4}  reg {:>4}  dereg {:>4}  \
             invalidated {:>4}  (resident {}, pinned {})",
            self.mr_cache.hits,
            self.mr_cache.misses,
            self.mr_cache.evictions,
            self.mr_cache.registered,
            self.mr_cache.deregistered,
            self.mr_cache.invalidated,
            self.mr_cached,
            self.mr_pinned,
        )?;
        writeln!(
            f,
            "  offload    syncs {:>5}  twin hits {:>4}  misses {:>4}  evictions {:>4}  \
             invalidated {:>4}  fallbacks {:>4}",
            c.offload_syncs,
            self.offload.hits,
            self.offload.misses,
            self.offload.evictions,
            self.offload.invalidated,
            c.offload_fallbacks,
        )?;
        write!(
            f,
            "  failures   deaths seen {:>3}  suspected {:>3}  revokes {:>3}  reclaimed {:>5}  \
             revoked reqs {:>4}  conn retries {:>3}  agreement restarts {:>3}",
            c.peer_deaths_detected,
            c.peers_suspected,
            c.revokes_observed,
            c.dead_reclaimed,
            c.reqs_revoked,
            c.conn_retries,
            c.agreement_restarts,
        )
    }
}

/// Number of `u64` words a [`StatsReport`] flattens into.
const WORDS: usize = 43;

impl StatsReport {
    /// Flatten into a fixed word array. The order is part of the
    /// [`StatsCell`] encoding, covered by `words_round_trip` below —
    /// extend (never reorder) when adding counters.
    fn to_words(self) -> [u64; WORDS] {
        let c = self.comm;
        let m = self.mr_cache;
        let o = self.offload;
        [
            self.rank as u64,
            self.mr_cached as u64,
            self.mr_pinned as u64,
            c.eager_sends,
            c.rndv_sends,
            c.rndv_recv_first,
            c.offload_syncs,
            c.bytes_sent,
            c.bytes_received,
            c.packets_processed,
            c.stale_rtrs_dropped,
            c.credit_grants,
            c.wr_faults,
            c.wr_retries,
            c.transport_failures,
            c.handshake_reissues,
            c.ctrl_abandoned,
            c.offload_fallbacks,
            m.hits,
            m.misses,
            m.evictions,
            m.registered,
            m.deregistered,
            m.invalidated,
            o.hits,
            o.misses,
            o.evictions,
            o.registered,
            o.deregistered,
            o.invalidated,
            c.replay_pruned,
            c.doorbells_coalesced,
            c.pairs_established,
            c.comm_buffer_bytes,
            c.srq_highwater,
            c.peer_deaths_detected,
            c.peers_suspected,
            c.revokes_observed,
            c.dead_reclaimed,
            c.reqs_revoked,
            c.conn_retries,
            c.agreement_restarts,
            c.credit_parks,
        ]
    }

    fn from_words(w: &[u64; WORDS]) -> StatsReport {
        StatsReport {
            rank: w[0] as Rank,
            mr_cached: w[1] as usize,
            mr_pinned: w[2] as usize,
            comm: CommStats {
                eager_sends: w[3],
                rndv_sends: w[4],
                rndv_recv_first: w[5],
                offload_syncs: w[6],
                bytes_sent: w[7],
                bytes_received: w[8],
                packets_processed: w[9],
                stale_rtrs_dropped: w[10],
                credit_grants: w[11],
                wr_faults: w[12],
                wr_retries: w[13],
                transport_failures: w[14],
                handshake_reissues: w[15],
                ctrl_abandoned: w[16],
                offload_fallbacks: w[17],
                replay_pruned: w[30],
                doorbells_coalesced: w[31],
                pairs_established: w[32],
                comm_buffer_bytes: w[33],
                srq_highwater: w[34],
                peer_deaths_detected: w[35],
                peers_suspected: w[36],
                revokes_observed: w[37],
                dead_reclaimed: w[38],
                reqs_revoked: w[39],
                conn_retries: w[40],
                agreement_restarts: w[41],
                credit_parks: w[42],
            },
            mr_cache: CacheStats {
                hits: w[18],
                misses: w[19],
                evictions: w[20],
                registered: w[21],
                deregistered: w[22],
                invalidated: w[23],
            },
            offload: CacheStats {
                hits: w[24],
                misses: w[25],
                evictions: w[26],
                registered: w[27],
                deregistered: w[28],
                invalidated: w[29],
            },
        }
    }
}

/// Seqlock-published [`StatsReport`]: the single writer (the rank's
/// engine) stores whole reports; any thread reads them back without
/// tearing.
///
/// # Staleness contract
///
/// A read returns the *last published* report — an internally consistent
/// snapshot of all fields as of one `publish` call. It may lag the
/// engine's live counters by everything that happened since that
/// publish; it never mixes fields from two different publishes. Before
/// the first publish, reads return `None`.
#[derive(Debug)]
pub struct StatsCell {
    /// Seqlock version: odd while a write is in flight.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
    /// 0 until the first publish.
    published: AtomicU64,
}

impl Default for StatsCell {
    fn default() -> Self {
        StatsCell {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
            published: AtomicU64::new(0),
        }
    }
}

impl StatsCell {
    pub fn new() -> StatsCell {
        StatsCell::default()
    }

    /// Publish a report. Single-writer: callers must not race two
    /// publishes on the same cell (each engine owns its cell).
    pub fn publish(&self, report: StatsReport) {
        // Odd seq marks the write window; Release orders it before the
        // word stores for readers that Acquire-load an odd value.
        self.seq.fetch_add(1, Ordering::Release);
        for (slot, w) in self.words.iter().zip(report.to_words()) {
            slot.store(w, Ordering::Release);
        }
        self.published.store(1, Ordering::Release);
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Read the last published report via one pass of `Acquire` loads,
    /// retrying while a publish is in flight. `None` before the first
    /// publish.
    pub fn read(&self) -> Option<StatsReport> {
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if self.published.load(Ordering::Acquire) == 0 {
                return None;
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|i| self.words[i].load(Ordering::Acquire));
            if self.seq.load(Ordering::Acquire) == before {
                return Some(StatsReport::from_words(&words));
            }
            // A publish raced the pass; the words may mix two reports —
            // discard and retry.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let r = StatsReport {
            rank: 3,
            comm: CommStats {
                eager_sends: 10,
                rndv_sends: 4,
                rndv_recv_first: 1,
                ..Default::default()
            },
            mr_cache: CacheStats {
                hits: 6,
                misses: 2,
                ..Default::default()
            },
            offload: CacheStats::default(),
            mr_cached: 2,
            mr_pinned: 0,
        };
        let s = r.to_string();
        assert!(s.contains("rank 3:"), "{s}");
        assert!(s.contains("send-first 3"), "{s}");
        assert!(s.contains("hits      6"), "{s}");
    }

    fn sample_report(n: u64) -> StatsReport {
        StatsReport {
            rank: 1,
            comm: CommStats {
                eager_sends: n,
                bytes_sent: 2 * n,
                packets_processed: 3 * n,
                ..Default::default()
            },
            mr_cache: CacheStats {
                hits: 4 * n,
                ..Default::default()
            },
            offload: CacheStats {
                misses: 5 * n,
                ..Default::default()
            },
            mr_cached: 1,
            mr_pinned: 0,
        }
    }

    #[test]
    fn words_round_trip() {
        let r = StatsReport {
            rank: 7,
            comm: CommStats {
                eager_sends: 1,
                rndv_sends: 2,
                rndv_recv_first: 3,
                offload_syncs: 4,
                bytes_sent: 5,
                bytes_received: 6,
                packets_processed: 7,
                stale_rtrs_dropped: 8,
                credit_grants: 9,
                wr_faults: 10,
                wr_retries: 11,
                transport_failures: 12,
                handshake_reissues: 13,
                ctrl_abandoned: 14,
                offload_fallbacks: 15,
                replay_pruned: 30,
                doorbells_coalesced: 31,
                pairs_established: 32,
                comm_buffer_bytes: 33,
                srq_highwater: 34,
                peer_deaths_detected: 35,
                peers_suspected: 36,
                revokes_observed: 37,
                dead_reclaimed: 38,
                reqs_revoked: 39,
                conn_retries: 40,
                agreement_restarts: 41,
                credit_parks: 42,
            },
            mr_cache: CacheStats {
                hits: 16,
                misses: 17,
                evictions: 18,
                registered: 19,
                deregistered: 20,
                invalidated: 21,
            },
            offload: CacheStats {
                hits: 22,
                misses: 23,
                evictions: 24,
                registered: 25,
                deregistered: 26,
                invalidated: 27,
            },
            mr_cached: 28,
            mr_pinned: 29,
        };
        assert_eq!(StatsReport::from_words(&r.to_words()), r);
    }

    #[test]
    fn cell_empty_until_first_publish() {
        let cell = StatsCell::new();
        assert_eq!(cell.read(), None);
        let r = sample_report(9);
        cell.publish(r);
        assert_eq!(cell.read(), Some(r));
    }

    #[test]
    fn concurrent_reads_never_tear() {
        use std::sync::Arc;

        let cell = Arc::new(StatsCell::new());
        cell.publish(sample_report(0));
        let writer_cell = cell.clone();
        let writer = std::thread::spawn(move || {
            for n in 1..=2_000 {
                writer_cell.publish(sample_report(n));
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..5_000 {
                        let r = cell.read().expect("published");
                        let n = r.comm.eager_sends;
                        // Every field pins to the same publish: a torn
                        // read would break one of these ratios.
                        assert_eq!(r.comm.bytes_sent, 2 * n);
                        assert_eq!(r.comm.packets_processed, 3 * n);
                        assert_eq!(r.mr_cache.hits, 4 * n);
                        assert_eq!(r.offload.misses, 5 * n);
                        // Publishes are observed in order.
                        assert!(n >= last, "report went backwards");
                        last = n;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
