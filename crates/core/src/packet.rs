//! Eager-ring packet format.
//!
//! Every packet RDMA-written into a peer's ring slot is
//! `header ‖ payload ‖ tail`, sent as three SGEs exactly like the paper's
//! EAGER packet ("an EAGER header SGE, the data SGE and a tail SGE").
//! InfiniBand delivers SGEs in order, so the receiver polls the slot tail:
//! once the tail carries the slot's expected sequence number the whole
//! packet is in place.

use crate::types::{Rank, Tag};

/// Packet kinds flowing through the eager rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Small-message data (one-copy eager protocol).
    Eager = 1,
    /// Rendezvous sender-first: "here is my registered send buffer".
    Rts = 2,
    /// Rendezvous receiver-first: "here is my registered receive buffer".
    Rtr = 3,
    /// Rendezvous completion: the *receiver* finished its RDMA READ
    /// (sender-first protocol) — completes the peer's send. `seq` is in
    /// the sender's (peer's) transmit stream.
    Done = 4,
    /// Ring flow control: consumed-slot count piggyback.
    Credit = 5,
    /// Rendezvous completion: the *sender* finished its RDMA WRITE
    /// (receiver-first protocol) — completes the peer's receive. `seq` is
    /// in this sender's transmit stream (= the peer's receive stream).
    /// Distinct from [`PacketKind::Done`] because both flow between the
    /// same pair with independent sequence counters.
    DoneWrite = 6,
    /// Transport abort, sender → receiver: the EAGER or RTS packet that
    /// was to carry data sequence `seq` failed permanently. Rewritten into
    /// the dead packet's ring slot so the stream stays consumable; the
    /// receiver fails the matching receive instead of waiting forever.
    NackSend = 7,
    /// Transport abort, receiver → sender: answers an RTS negatively (the
    /// receiver's RDMA READ failed, or its matching receive is dead) —
    /// the error-path twin of [`PacketKind::Done`].
    Nack = 8,
    /// Transport abort, sender → receiver: answers an RTR negatively (the
    /// sender's RDMA WRITE failed) — the error-path twin of
    /// [`PacketKind::DoneWrite`].
    NackWrite = 9,
}

impl PacketKind {
    fn from_u8(v: u8) -> Option<PacketKind> {
        Some(match v {
            1 => PacketKind::Eager,
            2 => PacketKind::Rts,
            3 => PacketKind::Rtr,
            4 => PacketKind::Done,
            5 => PacketKind::Credit,
            6 => PacketKind::DoneWrite,
            7 => PacketKind::NackSend,
            8 => PacketKind::Nack,
            9 => PacketKind::NackWrite,
            _ => return None,
        })
    }
}

/// Fixed-size packet header (one ring slot holds header + payload + tail).
/// All-scalar and `Copy`: headers are stashed, queued and replayed on the
/// engine's hot path, and none of that should touch the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    pub kind: PacketKind,
    pub src_rank: Rank,
    pub tag: Tag,
    /// Pair sequence id (paper §IV-B3): unique per MPI process pair; a
    /// send and its matching receive hold the same id.
    ///
    /// Together with the pair's direction this is the message's stable
    /// **MsgId** `(src, dst, seq)` used by lifecycle tracing: data-bearing
    /// kinds (`Eager`/`Rts`/`NackSend`/`DoneWrite`/`NackWrite`) travel
    /// src → dst, replies (`Rtr`/`Done`/`Nack`) travel dst → src, and every
    /// packet of one message carries the same `seq`, so any rank can
    /// recover the MsgId from `(kind, wire peer, seq)` without widening
    /// the header.
    pub seq: u64,
    /// Eager: payload length. RTS/RTR: full message length.
    /// Credit: consumed-slot count. Done: echo of the rendezvous length.
    pub len: u64,
    /// RTS/RTR: registered buffer address.
    pub addr: u64,
    /// RTS/RTR: rkey of the registered buffer.
    pub rkey: u32,
}

/// Encoded header size in bytes.
pub const HEADER_LEN: u64 = 1 + 4 + 4 + 8 + 8 + 8 + 4;

/// [`HEADER_LEN`] as a `usize`, for sizing stack buffers.
pub const HEADER_BYTES: usize = HEADER_LEN as usize;

/// Tail size in bytes (slot sequence number, written last).
pub const TAIL_LEN: u64 = 8;

/// Ring overhead per slot beyond the payload.
pub const SLOT_OVERHEAD: u64 = HEADER_LEN + TAIL_LEN;

impl PacketHeader {
    /// A data-less control header.
    pub fn control(kind: PacketKind, src_rank: Rank, tag: Tag, seq: u64, len: u64) -> Self {
        PacketHeader {
            kind,
            src_rank,
            tag,
            seq,
            len,
            addr: 0,
            rkey: 0,
        }
    }

    #[cfg(test)]
    pub fn encode(&self) -> Vec<u8> {
        let mut b = [0u8; HEADER_BYTES];
        self.encode_into(&mut b);
        b.to_vec()
    }

    /// Allocation-free encode into a caller-provided (stack) buffer.
    pub fn encode_into(&self, b: &mut [u8; HEADER_BYTES]) {
        b[0] = self.kind as u8;
        b[1..5].copy_from_slice(&(self.src_rank as u32).to_le_bytes());
        b[5..9].copy_from_slice(&self.tag.to_le_bytes());
        b[9..17].copy_from_slice(&self.seq.to_le_bytes());
        b[17..25].copy_from_slice(&self.len.to_le_bytes());
        b[25..33].copy_from_slice(&self.addr.to_le_bytes());
        b[33..37].copy_from_slice(&self.rkey.to_le_bytes());
    }

    pub fn decode(data: &[u8]) -> Option<PacketHeader> {
        if data.len() < HEADER_LEN as usize {
            return None;
        }
        let kind = PacketKind::from_u8(data[0])?;
        let src_rank = u32::from_le_bytes(data[1..5].try_into().unwrap()) as Rank;
        let tag = u32::from_le_bytes(data[5..9].try_into().unwrap());
        let seq = u64::from_le_bytes(data[9..17].try_into().unwrap());
        let len = u64::from_le_bytes(data[17..25].try_into().unwrap());
        let addr = u64::from_le_bytes(data[25..33].try_into().unwrap());
        let rkey = u32::from_le_bytes(data[33..37].try_into().unwrap());
        Some(PacketHeader {
            kind,
            src_rank,
            tag,
            seq,
            len,
            addr,
            rkey,
        })
    }
}

/// The tail word for ring slot sequence `slot_seq`: nonzero by construction
/// so a zeroed (free) slot never looks full.
pub fn tail_word(slot_seq: u64) -> u64 {
    slot_seq | 0x8000_0000_0000_0000
}

/// Inverse of [`tail_word`]: `Some(slot_seq)` if the tail marks a full slot.
pub fn tail_seq(word: u64) -> Option<u64> {
    (word & 0x8000_0000_0000_0000 != 0).then_some(word & !0x8000_0000_0000_0000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = PacketHeader {
            kind: PacketKind::Rts,
            src_rank: 5,
            tag: 77,
            seq: 123456789,
            len: 1 << 20,
            addr: 0xABCD_EF01,
            rkey: 42,
        };
        assert_eq!(PacketHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn done_write_roundtrips() {
        let h = PacketHeader::control(PacketKind::DoneWrite, 2, 9, 17, 4096);
        assert_eq!(PacketHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn control_header_roundtrip() {
        let h = PacketHeader::control(PacketKind::Credit, 3, 0, 0, 160);
        let enc = h.encode();
        assert_eq!(enc.len() as u64, HEADER_LEN);
        assert_eq!(PacketHeader::decode(&enc), Some(h));
    }

    #[test]
    fn nack_kinds_roundtrip() {
        for kind in [
            PacketKind::NackSend,
            PacketKind::Nack,
            PacketKind::NackWrite,
        ] {
            let h = PacketHeader::control(kind, 1, 4, 9, 0);
            assert_eq!(PacketHeader::decode(&h.encode()), Some(h));
        }
    }

    #[test]
    fn short_and_garbage_rejected() {
        assert_eq!(PacketHeader::decode(&[]), None);
        assert_eq!(PacketHeader::decode(&[0u8; 10]), None);
        let mut bad = PacketHeader::control(PacketKind::Done, 0, 0, 1, 0).encode();
        bad[0] = 99;
        assert_eq!(PacketHeader::decode(&bad), None);
    }

    #[test]
    fn tail_word_never_zero() {
        for seq in [0u64, 1, 63, 1 << 40] {
            let w = tail_word(seq);
            assert_ne!(w, 0);
            assert_eq!(tail_seq(w), Some(seq));
        }
        assert_eq!(tail_seq(0), None);
    }
}
