//! The public communicator: MPI-flavoured point-to-point API over the
//! protocol engine, plus the [`Communicator`] abstraction the workloads are
//! written against (so the Intel-MPI baseline models can run the same
//! applications).

use std::sync::Arc;

use fabric::{Buffer, Cluster, MemRef};
use simcore::Ctx;

use crate::engine::{CommStats, Engine, SHRINK_TAG_BASE};
use crate::subcomm::{SubComm, SUBCOMM_TAG_SPACE};
use crate::types::{MpiError, Rank, Request, Src, Status, Tag, TagSel};

/// Tag band for post-shrink sub-communicators: disjoint from application
/// tags, `split` color bands, the shrink-agreement band and the
/// collective band; rotated by shrink epoch so traffic from successive
/// shrink generations never cross-matches.
const SHRUNK_COMM_TAG_BASE: Tag = 0xA000_0000;

/// Minimal point-to-point surface the workloads need. Implemented by
/// DCFA-MPI's [`Comm`] and by the Intel-MPI baseline models in the
/// `baselines` crate.
pub trait Communicator {
    fn rank(&self) -> Rank;
    fn size(&self) -> usize;
    /// The memory domain this rank's buffers live in.
    fn mem(&self) -> MemRef;
    fn cluster(&self) -> &Arc<Cluster>;
    fn isend(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        dst: Rank,
        tag: Tag,
    ) -> Result<Request, MpiError>;
    fn irecv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Request, MpiError>;
    fn wait(&mut self, ctx: &mut Ctx, req: Request) -> Result<Status, MpiError>;

    /// Blocking send.
    fn send(&mut self, ctx: &mut Ctx, buf: &Buffer, dst: Rank, tag: Tag) -> Result<(), MpiError> {
        let r = self.isend(ctx, buf, dst, tag)?;
        self.wait(ctx, r).map(|_| ())
    }

    /// Blocking receive.
    fn recv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Status, MpiError> {
        let r = self.irecv(ctx, buf, src, tag)?;
        self.wait(ctx, r)
    }

    /// Combined send+receive (deadlock-free halo exchange building block).
    fn sendrecv(
        &mut self,
        ctx: &mut Ctx,
        sbuf: &Buffer,
        dst: Rank,
        rbuf: &Buffer,
        src: Rank,
        tag: Tag,
    ) -> Result<Status, MpiError> {
        let rr = self.irecv(ctx, rbuf, Src::Rank(src), TagSel::Tag(tag))?;
        let sr = self.isend(ctx, sbuf, dst, tag)?;
        self.wait(ctx, sr)?;
        self.wait(ctx, rr)
    }

    /// Wait for all requests in order, returning the first error. Every
    /// request is driven to completion even when an earlier one fails —
    /// abandoning the rest would leak their protocol state and strand
    /// the peers mid-handshake.
    fn waitall(&mut self, ctx: &mut Ctx, reqs: &[Request]) -> Result<Vec<Status>, MpiError> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for &r in reqs {
            match self.wait(ctx, r) {
                Ok(s) => out.push(s),
                Err(e) => {
                    out.push(Status {
                        source: 0,
                        tag: 0,
                        len: 0,
                    });
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// `MPI_COMM_WORLD` for a DCFA-MPI (or host-YAMPII) rank.
pub struct Comm {
    engine: Engine,
}

impl Comm {
    pub(crate) fn new(engine: Engine) -> Self {
        Comm { engine }
    }

    /// Non-blocking test; `Some` consumes the request.
    pub fn test(&mut self, ctx: &mut Ctx, req: Request) -> Option<Result<Status, MpiError>> {
        self.engine.test(ctx, req)
    }

    /// Non-blocking probe (`MPI_Iprobe`): envelope of a matching message
    /// that could be received now, without consuming it.
    pub fn iprobe(&mut self, ctx: &mut Ctx, src: Src, tag: TagSel) -> Option<Status> {
        self.engine.iprobe(ctx, src, tag)
    }

    /// Blocking probe (`MPI_Probe`).
    pub fn probe(&mut self, ctx: &mut Ctx, src: Src, tag: TagSel) -> Status {
        self.engine.probe(ctx, src, tag)
    }

    /// Wait for any request in the set (`MPI_Waitany`).
    pub fn waitany(
        &mut self,
        ctx: &mut Ctx,
        reqs: &[Request],
    ) -> (usize, Result<Status, MpiError>) {
        self.engine.waitany(ctx, reqs)
    }

    /// Protocol/traffic counters for this rank.
    pub fn stats(&self) -> CommStats {
        self.engine.stats()
    }

    /// Live handshake-replay entries (`served_done` + `served_dw`) across
    /// all peers; bounded under load by CREDIT watermark pruning.
    pub fn replay_entries(&self) -> usize {
        self.engine.replay_entries()
    }

    /// Request-table slots currently occupied (issued but not yet
    /// consumed by `wait`/`test`). Zero once every request was reaped —
    /// a stranded request or leaked generation shows up here.
    pub fn requests_live(&self) -> usize {
        self.engine.requests_live()
    }

    /// Allocate a page-aligned buffer in this rank's memory domain.
    pub fn alloc(&self, len: u64) -> Result<Buffer, MpiError> {
        self.engine
            .cluster()
            .alloc_pages(self.engine.mem(), len)
            .map_err(|_| MpiError::OutOfMemory)
    }

    /// Free a buffer allocated with [`Comm::alloc`].
    pub fn free(&self, buf: &Buffer) {
        self.engine.cluster().free(buf);
    }

    /// Write into a buffer (content plane).
    pub fn write(&self, buf: &Buffer, offset: u64, data: &[u8]) {
        self.engine.cluster().write(buf, offset, data);
    }

    /// Read a buffer's content.
    pub fn read_vec(&self, buf: &Buffer) -> Vec<u8> {
        self.engine.cluster().read_vec(buf)
    }

    /// MR-cache statistics `(hits, misses)` — for the ablation benches.
    pub fn mr_cache_stats(&self) -> (u64, u64) {
        let s = self.engine.mr_cache.stats();
        (s.hits, s.misses)
    }

    /// Number of regions currently held by the MR cache pool.
    pub fn mr_cache_len(&self) -> usize {
        self.engine.mr_cache.cached_regions()
    }

    /// Number of cached regions currently pinned by outstanding leases.
    pub fn mr_pinned_len(&self) -> usize {
        self.engine.mr_cache.pinned_regions()
    }

    /// Offload-cache statistics `(hits, misses)`.
    pub fn offload_cache_stats(&self) -> (u64, u64) {
        let s = self.engine.offload_cache.stats();
        (s.hits, s.misses)
    }

    /// Consolidated snapshot of every counter this rank maintains.
    pub fn dump(&self) -> crate::StatsReport {
        self.engine.dump()
    }

    /// Library configuration in force.
    pub fn config(&self) -> &crate::MpiConfig {
        self.engine.config()
    }

    /// Host twin of a Phi-resident buffer (for host-staged collectives —
    /// the paper's future-work direction of offloading heavy MPI
    /// functions to the host). `None` on host placement or with the
    /// offloading buffer disabled.
    pub fn host_twin(&mut self, ctx: &mut Ctx, buf: &Buffer) -> Option<Buffer> {
        self.engine.host_twin(ctx, buf)
    }

    /// DMA `buf` up into its host twin (blocking).
    pub fn sync_to_twin(&mut self, ctx: &mut Ctx, buf: &Buffer, twin: &Buffer) {
        self.engine.sync_to_twin(ctx, buf, twin);
    }

    /// DMA the host twin back down into `buf` (blocking).
    pub fn sync_from_twin(&mut self, ctx: &mut Ctx, twin: &Buffer, buf: &Buffer) {
        self.engine.sync_from_twin(ctx, twin, buf);
    }

    /// Create a persistent send request (`MPI_Send_init`): captures the
    /// argument set once; every [`Comm::start`] issues one send with it.
    pub fn send_init(&self, buf: &Buffer, dst: Rank, tag: Tag) -> Persistent {
        Persistent {
            kind: PersistentKind::Send { dst, tag },
            buf: buf.clone(),
        }
    }

    /// Create a persistent receive request (`MPI_Recv_init`).
    pub fn recv_init(&self, buf: &Buffer, src: Src, tag: TagSel) -> Persistent {
        Persistent {
            kind: PersistentKind::Recv { src, tag },
            buf: buf.clone(),
        }
    }

    /// Start a persistent request (`MPI_Start`); complete it with the
    /// ordinary [`Communicator::wait`].
    pub fn start(&mut self, ctx: &mut Ctx, p: &Persistent) -> Result<Request, MpiError> {
        match p.kind {
            PersistentKind::Send { dst, tag } => self.engine.isend(ctx, &p.buf, dst, tag),
            PersistentKind::Recv { src, tag } => self.engine.irecv(ctx, &p.buf, src, tag),
        }
    }

    /// Start a whole set of persistent requests (`MPI_Startall`).
    pub fn startall(
        &mut self,
        ctx: &mut Ctx,
        ps: &[&Persistent],
    ) -> Result<Vec<Request>, MpiError> {
        ps.iter().map(|p| self.start(ctx, p)).collect()
    }

    /// Whether this rank has observed a revocation that no shrink has
    /// cleared yet.
    pub fn is_revoked(&self) -> bool {
        self.engine.is_revoked()
    }

    /// Revoke the communicator (ULFM `MPI_Comm_revoke` analogue): flood
    /// a revocation epoch through the health board. Every rank — this
    /// one immediately, the others at their next progress step — drains
    /// its pending and future operations with [`MpiError::Revoked`]
    /// until [`Comm::shrink`] agrees on a surviving-ranks world. No-op
    /// when the failure subsystem is not installed.
    pub fn revoke(&mut self, ctx: &mut Ctx) {
        let Some(board) = self.engine.health().cloned() else {
            return;
        };
        {
            let cluster = self.engine.cluster();
            board.revoke(cluster.scheduler());
        }
        // Drive one progress step so the caller sees its own engine
        // drained on return.
        self.engine.progress(ctx);
    }

    /// Shrink the communicator (ULFM `MPI_Comm_shrink` analogue):
    /// fault-tolerant tree agreement on the current death epoch across
    /// the survivors, committed through the health board's CAS. The
    /// agreement restarts from scratch whenever a participant dies
    /// mid-attempt (each restart needs at least one new death, so it
    /// terminates). On commit the engine is un-revoked and the returned
    /// sub-communicator covers the survivors with renumbered ranks.
    ///
    /// Collective over the survivors: every live rank must call it.
    pub fn shrink(&mut self, ctx: &mut Ctx) -> Result<SubComm<'_>, MpiError> {
        let me = self.engine.rank;
        let n = self.engine.size;
        let board = self.engine.health().cloned();
        // Send/recv handles and their backing buffers are carried across
        // restart attempts and retired after the commit: an in-flight
        // eager send always reaches a terminal state (completion or a
        // PeerFailed reap), so nothing is leaked.
        let mut sends: Vec<Request> = Vec::new();
        let mut bufs: Vec<Buffer> = Vec::new();
        let (epoch, survivors) = 'attempt: loop {
            // Opportunistically retire sends from failed attempts.
            sends.retain(|&r| self.engine.test(ctx, r).is_none());
            let epoch = board.as_ref().map_or(0, |b| b.death_epoch());
            let Some(board) = &board else {
                // No failure subsystem: the surviving world is the world.
                self.engine.complete_shrink(0, n as u64);
                break (0, (0..n).collect::<Vec<Rank>>());
            };
            if epoch == 0 {
                self.engine.complete_shrink(0, n as u64);
                break (0, (0..n).collect::<Vec<Rank>>());
            }
            let survivors = board.live_at(epoch);
            let Some(my_idx) = survivors.iter().position(|&r| r == me) else {
                // The board thinks *we* are dead (false positive from an
                // unresponsive stretch): we cannot participate.
                return Err(MpiError::PeerFailed(me));
            };
            let tag = SHRINK_TAG_BASE + (epoch & 0xFFFF) as Tag;
            // Gather: every survivor waits for both tree children (over
            // survivor indices) before reporting up. The root's gather
            // completing proves every survivor reached this epoch.
            // `None` request = the recv needs (re-)posting; a child's
            // entry only leaves the list once its message arrived, so a
            // transient posting failure can never fake a complete gather.
            let mut pending: Vec<(Rank, Option<Request>)> = [2 * my_idx + 1, 2 * my_idx + 2]
                .into_iter()
                .filter(|&c| c < survivors.len())
                .map(|c| (survivors[c], None))
                .collect();
            while !pending.is_empty() {
                if board.death_epoch() != epoch {
                    for (_, r) in pending.drain(..) {
                        if let Some(r) = r {
                            self.engine.cancel_recv(ctx, r);
                        }
                    }
                    self.engine.note_agreement_restart();
                    continue 'attempt;
                }
                let seen = self.engine.progress_epoch();
                self.engine.progress(ctx);
                let mut progressed = false;
                let mut j = 0;
                while j < pending.len() {
                    let (src, req) = pending[j];
                    match req {
                        None => {
                            let rbuf = self.alloc(8)?;
                            match self
                                .engine
                                .irecv(ctx, &rbuf, Src::Rank(src), TagSel::Tag(tag))
                            {
                                Ok(r) => {
                                    pending[j].1 = Some(r);
                                    bufs.push(rbuf);
                                    progressed = true;
                                }
                                Err(_) => {
                                    // Child already dead (epoch check
                                    // restarts us) or table backpressure:
                                    // retry next round.
                                    self.free(&rbuf);
                                }
                            }
                            j += 1;
                        }
                        Some(r) => match self.engine.test(ctx, r) {
                            Some(Ok(_)) => {
                                pending.swap_remove(j);
                                progressed = true;
                            }
                            Some(Err(_)) => {
                                // Died mid-transfer or drained by a
                                // concurrent revocation: re-post.
                                pending[j].1 = None;
                                progressed = true;
                            }
                            None => j += 1,
                        },
                    }
                }
                if !progressed && !pending.is_empty() && board.death_epoch() == epoch {
                    self.engine.wait_progress(ctx, seen, "shrink-gather");
                }
            }
            if my_idx == 0 {
                // Root: the gather proved every survivor is at `epoch`;
                // commit unless a death raced us there.
                let committed = {
                    let cluster = self.engine.cluster();
                    board.try_commit_shrink(cluster.scheduler(), epoch)
                };
                if committed {
                    break (epoch, survivors);
                }
                self.engine.note_agreement_restart();
                continue 'attempt;
            }
            // Non-root: report up, then wait for the root's commit (or a
            // death that restarts the agreement).
            let parent = survivors[(my_idx - 1) / 2];
            let sbuf = self.alloc(8)?;
            self.write(&sbuf, 0, &epoch.to_le_bytes());
            match self.engine.isend(ctx, &sbuf, parent, tag) {
                Ok(r) => {
                    sends.push(r);
                    bufs.push(sbuf);
                }
                Err(e) => {
                    self.free(&sbuf);
                    if board.death_epoch() != epoch {
                        self.engine.note_agreement_restart();
                        continue 'attempt;
                    }
                    return Err(e);
                }
            }
            loop {
                // A commit observed while waiting at `epoch` can only be
                // for `epoch`: any later commit would need our tag-E'
                // message, which we have not sent.
                if board.shrink_commit() == epoch {
                    break 'attempt (epoch, survivors);
                }
                if board.death_epoch() != epoch {
                    self.engine.note_agreement_restart();
                    continue 'attempt;
                }
                let seen = self.engine.progress_epoch();
                self.engine.progress(ctx);
                if board.shrink_commit() == epoch || board.death_epoch() != epoch {
                    continue;
                }
                self.engine.wait_progress(ctx, seen, "shrink-commit");
            }
        };
        // Retire the carried sends (terminal by completion or reap) and
        // release every agreement buffer.
        for r in sends.drain(..) {
            let _ = self.engine.wait(ctx, r);
        }
        for b in bufs.drain(..) {
            self.free(&b);
        }
        if epoch != 0 {
            self.engine.complete_shrink(epoch, survivors.len() as u64);
        }
        let my_idx = survivors
            .iter()
            .position(|&r| r == me)
            .expect("committed survivor set contains me");
        let tag_base =
            SHRUNK_COMM_TAG_BASE.wrapping_add(((epoch % 512) as Tag) * SUBCOMM_TAG_SPACE);
        Ok(SubComm::from_members(self, survivors, my_idx, tag_base))
    }

    pub(crate) fn quiesce(&mut self, ctx: &mut Ctx) {
        self.engine.quiesce(ctx);
    }

    pub(crate) fn finalize(&mut self, ctx: &mut Ctx) {
        self.engine.finalize(ctx);
    }
}

enum PersistentKind {
    Send { dst: Rank, tag: Tag },
    Recv { src: Src, tag: TagSel },
}

/// A persistent communication request: the fixed argument set of a send
/// or receive, reusable across iterations
/// (`MPI_Send_init`/`MPI_Recv_init` + `MPI_Start`) — the classic way
/// fixed-pattern codes such as halo exchanges amortize per-call setup.
pub struct Persistent {
    kind: PersistentKind,
    buf: Buffer,
}

impl Communicator for Comm {
    fn rank(&self) -> Rank {
        self.engine.rank
    }

    fn size(&self) -> usize {
        self.engine.size
    }

    fn mem(&self) -> MemRef {
        self.engine.mem()
    }

    fn cluster(&self) -> &Arc<Cluster> {
        self.engine.cluster()
    }

    fn isend(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        dst: Rank,
        tag: Tag,
    ) -> Result<Request, MpiError> {
        self.engine.isend(ctx, buf, dst, tag)
    }

    fn irecv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Request, MpiError> {
        self.engine.irecv(ctx, buf, src, tag)
    }

    fn wait(&mut self, ctx: &mut Ctx, req: Request) -> Result<Status, MpiError> {
        self.engine.wait(ctx, req)
    }
}
