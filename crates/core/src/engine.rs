//! The DCFA-MPI point-to-point protocol engine.
//!
//! One engine instance runs inside each rank's simulated process and owns
//! that rank's QPs, eager rings, staging buffers, MR caches and request
//! table. The protocol follows §IV-B3/§IV-B4 of the paper:
//!
//! * **Eager** for small messages: one copy into a pre-registered staging
//!   slot, then an RDMA WRITE of `header ‖ payload ‖ tail` into the peer's
//!   ring slot; the receiver polls the tail.
//! * **Sender-first rendezvous**: RTS (buffer address + rkey) → receiver
//!   RDMA READ → DONE.
//! * **Receiver-first rendezvous**: receiver posts a large receive early
//!   and sends RTR; the sender RDMA WRITEs straight into the user buffer
//!   and sends DONE.
//! * **Simultaneous**: the sender disregards the RTR and waits for the
//!   receiver's RDMA READ; the receiver follows the sender-first protocol.
//! * **Sequence ids** pair each send with its receive per process pair;
//!   `MPI_ANY_SOURCE` receives lock sequence assignment for later receives
//!   until matched. Mis-predictions (eager vs. rendezvous) resolve via the
//!   sequence ids: a stale RTR is dropped; a too-large rendezvous message
//!   into a small receive raises an MPI error.
//! * **Offloading send buffer** (§IV-B4): large sends sync the payload to
//!   a host twin over the PCIe DMA engine and source the InfiniBand
//!   transfer from host memory, dodging the slow HCA-read-from-Phi path.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use fabric::{Buffer, CostModel, HealthBoard, MemRef, PeerState};
use simcore::{Ctx, SimDuration, SimEvent};
use verbs::{
    CompletionQueue, MemoryRegion, MrKey, QueuePair, RecvWr, SendWr, SharedReceiveQueue, Wc,
    WcStatus,
};

use crate::config::{MpiConfig, Placement};
use crate::connect::{ConnDirectory, ConnMsg};
use crate::metrics::{Metrics, MetricsHub, Phase, Span};
use crate::mrcache::{MrCache, MrLease, OffloadCache, OffloadLease};
use crate::packet::{
    tail_seq, tail_word, PacketHeader, PacketKind, HEADER_BYTES, HEADER_LEN, SLOT_OVERHEAD,
    TAIL_LEN,
};
use crate::resources::Resources;
use crate::slots::{SlotTable, TimerHeap};
use crate::stats::{StatsCell, StatsReport};
use crate::trace::{MsgStage, Trace, TraceBuf, TraceEvent};
use crate::types::{MpiError, Rank, Request, Src, Status, Tag, TagSel, TransportOp};

/// Completions drained from the CQ per lock acquisition in a progress
/// sweep (the `ibv_poll_cq` batch size).
const CQ_BATCH: usize = 64;

/// Recycled payload buffers kept for unexpected-message copy-out.
const PAYLOAD_POOL_CAP: usize = 32;

/// Tag band reserved for the shrink-agreement protocol (see
/// [`crate::comm`]). Operations in this band stay permitted on a revoked
/// communicator — they ARE the recovery traffic. The low 16 bits carry
/// the death epoch the agreement attempt runs at, so a restarted
/// agreement never matches a stale attempt's messages.
pub(crate) const SHRINK_TAG_BASE: Tag = 0xE000_0000;
pub(crate) const SHRINK_TAG_END: Tag = 0xF000_0000;

/// Whether `tag` belongs to the shrink-agreement band.
pub(crate) fn is_shrink_tag(tag: Tag) -> bool {
    (SHRINK_TAG_BASE..SHRINK_TAG_END).contains(&tag)
}

/// Panic payload a fail-stopped rank unwinds with. The launcher catches
/// it (the rank "process" exits as killed, not as a test failure);
/// anything else propagates as a real panic.
pub(crate) struct KillMarker;

/// Return an unexpected-message copy-out buffer to the pool: cleared, so
/// stale bytes from this message can never leak into a shorter later
/// one, and dropped outright when its capacity outgrew `max_capacity`
/// (one jumbo packet must not pin its high-water allocation in the pool
/// forever).
fn recycle_payload(pool: &mut Vec<Vec<u8>>, mut data: Vec<u8>, max_capacity: usize) {
    data.clear();
    if pool.len() < PAYLOAD_POOL_CAP && data.capacity() <= max_capacity {
        pool.push(data);
    }
}

/// Per-peer connection state.
pub(crate) struct Peer {
    qp: QueuePair,
    /// Whether the outbound half is wired (the lazy-connect Req/Ack
    /// handshake resolved). Data and control packets queue until then.
    connected: bool,
    /// Remote (peer-side) inbound ring we write into.
    out_ring_addr: u64,
    out_ring_rkey: MrKey,
    /// Next outbound ring-slot sequence number.
    out_slot_seq: u64,
    /// Cumulative slots the peer reported consumed (credits).
    out_consumed: u64,
    /// Local staging region mirroring the remote ring layout.
    stage: Buffer,
    stage_mr: MemoryRegion,
    /// Local inbound ring this peer writes into. `None` in SRQ mode,
    /// where all peers share one receive pool — the O(ranks²) → O(ranks)
    /// buffer-memory win.
    in_ring: Option<Buffer>,
    #[allow(dead_code)]
    in_ring_mr: Option<MemoryRegion>,
    /// Next inbound slot sequence to consume.
    in_next_seq: u64,
    /// Consumed slots not yet reported as credit.
    in_unreported: u64,
    /// Whether any *non-credit* packet was consumed since the last credit
    /// report. CREDIT packets occupy (and free) slots like everything
    /// else, but must never *trigger* a report themselves — otherwise two
    /// idle ranks with small rings acknowledge each other's credits
    /// forever (credit ping-pong livelock).
    in_noncredit_pending: bool,
    /// Pair sequence ids (paper §IV-B3).
    tx_seq: u64,
    rx_seq: u64,
    /// RTRs that arrived before their matching send was posted.
    stashed_rtrs: Vec<PacketHeader>,
    /// Control packets waiting for ring credit. Control sends never block
    /// (they are issued from inside the progress engine); they queue here
    /// and drain as credits arrive, ahead of any later data packet.
    pending_ctrl: std::collections::VecDeque<PacketHeader>,
    /// Highest data-stream sequence id (EAGER/RTS/NACK-SEND) seen from
    /// this peer. Data packets arrive in sequence order, so anything at or
    /// below this is a duplicate (a re-issued handshake) and is answered
    /// from `served_done`/`served_dw` or dropped.
    rx_data_high: Option<u64>,
    /// DONE/NACK answers we already sent for sender-first rendezvous,
    /// keyed by pair sequence id — replayed when a re-issued RTS arrives.
    served_done: HashMap<u64, PacketHeader>,
    /// DONE-WRITE/NACK-WRITE answers we already sent for receiver-first
    /// rendezvous — replayed when a re-issued RTR arrives.
    served_dw: HashMap<u64, PacketHeader>,
    /// SRQ mode: packets that arrived ahead of `in_next_seq` (a retried
    /// send's replacement can be overtaken by its successors — two-sided
    /// Sends have no fixed ring slot to stall on). Copied off the shared
    /// pool so the slot recycles; drained as the sequence catches up.
    srq_stash: Vec<(u64, PacketHeader, Vec<u8>)>,
}

/// Shared-receive-queue state (when [`MpiConfig::srq_depth`] is set): one
/// pool of receive slots serving every peer of this rank, replacing the
/// per-pair inbound rings.
struct SrqPool {
    srq: SharedReceiveQueue,
    /// Inbound Send completions land here, separate from the send-side CQ:
    /// their wr_ids are pool slot indices, which must never collide with
    /// the inflight-table handles that identify send-side completions.
    recv_cq: CompletionQueue,
    /// The pool: `depth` slots of ring-slot layout (hdr ‖ payload ‖ tail).
    pool: Buffer,
    pool_mr: MemoryRegion,
    /// Slots consumed by the HCA and not yet re-posted.
    outstanding: u32,
    /// Sender (node, qpn) → peer rank, filled as pairs wire up.
    src_ranks: HashMap<(fabric::NodeId, verbs::QpNum), usize>,
    /// Completions whose source QP wasn't mapped yet (the first data
    /// packet can race the connect Ack); retried after `pump_conn`.
    pending: Vec<Wc>,
}

/// What a tracked send-side work request was doing, so its completion —
/// or its failure — can be routed to the owning protocol state.
#[derive(Clone, Copy)]
enum WrKind {
    /// An eager-ring slot write (data or control packet).
    Ring {
        hdr: PacketHeader,
        slot_seq: u64,
        /// Owning request for EAGER data packets; control packets find
        /// their owner (if any) through `hdr` at failure time.
        req: Option<u64>,
    },
    /// Sender-first rendezvous: our RDMA READ of the peer's buffer.
    RndvRead { req: u64 },
    /// Receiver-first rendezvous: our RDMA WRITE into the peer's buffer.
    RndvWrite { req: u64 },
}

/// A posted send-side work request awaiting its completion.
struct InflightWr {
    wr: SendWr,
    dst: Rank,
    /// Posts issued so far (1 = the original post).
    attempts: u32,
    kind: WrKind,
}

/// A pending rendezvous-handshake watchdog.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimeoutKind {
    /// Sender-first: re-issue the RTS if the DONE hasn't arrived.
    Rts { req: u64 },
    /// Receiver-first: re-issue the RTR if the DONE-WRITE hasn't arrived.
    Rtr { req: u64 },
    /// Lazy-connect handshake: re-issue the connect Req if the pair is
    /// still unwired (the Req or its Ack was lost on the out-of-band
    /// channel). `attempt` counts re-issues; past `cmd_retry_limit` the
    /// peer is declared dead instead of retried forever.
    Conn { peer: Rank, attempt: u32 },
}

/// Info a rank publishes during bootstrap, consumed by its peers.
#[derive(Clone)]
pub struct PeerEndpoint {
    pub qpn: verbs::QpNum,
    pub node: fabric::NodeId,
    pub ring_addr: u64,
    pub ring_rkey: MrKey,
}

/// The pinned source region of an outgoing rendezvous transfer: either
/// the user buffer via the MR cache, or the offloading send buffer's
/// host twin. Held until the remote side confirms the data has moved.
enum SendLease {
    Mr(MrLease),
    Offload(OffloadLease),
}

enum ReqState {
    /// Eager RDMA write in flight; completes on local WC.
    EagerSend {
        status: Status,
    },
    /// RTS sent; waiting for the receiver's DONE. The lease pins the
    /// advertised source until then (the peer RDMA-READs from it). `hdr`
    /// keeps the full RTS so the handshake watchdog can re-issue it.
    RndvSendAwaitDone {
        dst: Rank,
        seq: u64,
        status: Status,
        lease: SendLease,
        hdr: PacketHeader,
    },
    /// Receiver-first: our RDMA write is in flight.
    RndvSendWriting {
        dst: Rank,
        seq: u64,
        full_len: u64,
        status: Status,
        lease: SendLease,
    },
    /// Posted receive sitting in the match queue.
    RecvQueued,
    /// Sender-first: our RDMA read is in flight; the lease pins the
    /// destination buffer's registration.
    RndvRecvReading {
        src: Rank,
        seq: u64,
        status: Status,
        truncated: Option<MpiError>,
        lease: MrLease,
    },
    /// Receiver-first: RTR sent, waiting for the sender's DONE.
    RecvAwaitDone,
    Done(Status),
    Failed(MpiError),
}

struct PostedRecv {
    req: u64,
    buf: Buffer,
    src: Src,
    tag: TagSel,
    /// Pair sequence id; `None` while locked behind an any-source receive.
    seq: Option<u64>,
    rtr_sent: bool,
    /// Pin on the buffer registration advertised by our RTR; released
    /// when the receive resolves (DONE-WRITE, or the eager/simultaneous
    /// mis-prediction paths).
    rtr_lease: Option<MrLease>,
    /// The RTR we advertised, kept for watchdog re-issue.
    rtr_hdr: Option<PacketHeader>,
}

enum Unexpected {
    Eager {
        src: Rank,
        tag: Tag,
        seq: u64,
        data: Vec<u8>,
    },
    Rts {
        hdr: PacketHeader,
    },
    /// A sender-side transport abort that arrived before its matching
    /// receive was posted; the receive fails with `RemoteTransport`.
    Nack {
        src: Rank,
        tag: Tag,
        seq: u64,
    },
}

/// Protocol/traffic counters for one rank (exposed via
/// `Comm::stats`; used by tests and the ablation benches to verify
/// protocol selection without timing heuristics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent with the eager protocol.
    pub eager_sends: u64,
    /// Messages sent with a rendezvous protocol (either flavour).
    pub rndv_sends: u64,
    /// Rendezvous sends that took the receiver-first (RTR) path.
    pub rndv_recv_first: u64,
    /// Sends that synced through the offloading send buffer.
    pub offload_syncs: u64,
    /// Application payload bytes sent.
    pub bytes_sent: u64,
    /// Application payload bytes received.
    pub bytes_received: u64,
    /// Ring packets processed (all kinds).
    pub packets_processed: u64,
    /// Stale RTRs dropped thanks to sequence ids (mis-predictions).
    pub stale_rtrs_dropped: u64,
    /// CREDIT packets transmitted (flow-control slot recycling).
    pub credit_grants: u64,
    /// Error work completions observed (before retry classification).
    pub wr_faults: u64,
    /// Transiently failed work requests re-posted after backoff.
    pub wr_retries: u64,
    /// Transfers abandoned permanently (the owning request failed).
    pub transport_failures: u64,
    /// Rendezvous handshakes re-issued by the watchdog.
    pub handshake_reissues: u64,
    /// Control packets dropped because the QP refused the post outright.
    pub ctrl_abandoned: u64,
    /// Rendezvous sends that wanted the offloading send buffer but fell
    /// back to sourcing the Phi buffer directly (twin unavailable, or the
    /// rank degraded after repeated failures).
    pub offload_fallbacks: u64,
    /// Handshake-replay entries (`served_done`/`served_dw`) pruned on
    /// peer-acknowledged sequence advance (CREDIT watermarks).
    pub replay_pruned: u64,
    /// Queued control packets posted without ringing a fresh doorbell
    /// (coalesced behind the first post of the same ctrl drain).
    pub doorbells_coalesced: u64,
    /// Peer pairs actually established (lazily, on first touch). The
    /// scale gate checks this stays far below `ranks²` for sparse
    /// communication patterns.
    pub pairs_established: u64,
    /// Bytes of communication buffer memory (rings + staging + SRQ
    /// pool) this rank allocated — the memory-per-rank curve.
    pub comm_buffer_bytes: u64,
    /// High-water mark of concurrently unconsumed SRQ pool slots (0 on
    /// the per-pair ring path).
    pub srq_highwater: u64,
    /// Peers this rank observed transition to `Dead` on the health board
    /// (heartbeat staleness or QP-flush snooping) and reaped.
    pub peer_deaths_detected: u64,
    /// Distinct peers this rank ever observed in the `Suspect` state
    /// (stale heartbeat, not yet past the dead line).
    pub peers_suspected: u64,
    /// Communicator revocations this rank observed and drained.
    pub revokes_observed: u64,
    /// Protocol objects reclaimed from dead peers: failed requests,
    /// cancelled receives, dropped control packets, stash entries,
    /// purged unexpected messages and replay-map entries.
    pub dead_reclaimed: u64,
    /// Requests drained with [`MpiError::Revoked`] by a revocation.
    pub reqs_revoked: u64,
    /// Lazy-connect Req frames re-issued by the handshake watchdog.
    pub conn_retries: u64,
    /// Shrink-agreement attempts abandoned because a participant died
    /// mid-agreement (the death epoch advanced under the attempt).
    pub agreement_restarts: u64,
    /// Eager data sends that parked waiting for ring credit (the
    /// flow-control window was closed when the send was issued).
    pub credit_parks: u64,
}

/// The per-rank protocol engine.
pub struct Engine {
    pub(crate) rank: Rank,
    pub(crate) size: usize,
    cfg: MpiConfig,
    res: Resources,
    cost: CostModel,
    cq: CompletionQueue,
    progress_event: SimEvent,
    peers: Vec<Option<Peer>>,
    pub(crate) mr_cache: MrCache,
    pub(crate) offload_cache: OffloadCache,
    /// Request table. Slot-indexed with generation-tagged handles: a
    /// consumed/unknown `Request` misses on its generation and reports
    /// `BadRequest`, exactly like the old hash-map lookup did.
    reqs: SlotTable<ReqState>,
    recv_q: Vec<PostedRecv>,
    unexpected: Vec<Unexpected>,
    mpi_call: SimDuration,
    pub(crate) stats: CommStats,
    /// Seqlock publication point for [`StatsReport`]s: observers on other
    /// threads read the last published snapshot without tearing.
    stats_cell: Arc<StatsCell>,
    trace: Trace,
    metrics: Metrics,
    /// Open latency spans, slot-indexed in step with `reqs` (the stored
    /// full id disambiguates slot reuse): one asynchronous protocol stage
    /// per request, closed when the request resolves.
    open_spans: Vec<Option<(u64, Span)>>,
    /// Re-entrancy guard: progress() invoked from within progress() (via
    /// a packet handler) is a no-op; the outer sweep picks up the work.
    in_progress: bool,
    /// Every posted send-side work request until its completion is
    /// classified (success / retry / permanent failure). The table handle
    /// IS the wr_id: every send-side WR's id is drawn from here, so a
    /// completion — success or error — always finds its owner, and a
    /// handle that went stale (request failed under the retry) simply
    /// misses on its generation.
    inflight: SlotTable<InflightWr>,
    /// Transiently failed WRs waiting out their backoff, by due time.
    retry_due: TimerHeap<u64>,
    /// Armed rendezvous-handshake watchdogs, by due time.
    rndv_timeouts: TimerHeap<TimeoutKind>,
    /// Reusable scratch: elapsed retry wr_ids popped per sweep.
    retry_scratch: Vec<u64>,
    /// Reusable scratch: fired watchdogs popped per sweep.
    timeout_scratch: Vec<TimeoutKind>,
    /// Reusable scratch: completions drained per CQ batch.
    cq_scratch: Vec<Wc>,
    /// Reusable scratch: staging-copy bounce buffer for payload moves.
    copy_scratch: Vec<u8>,
    /// Recycled payload buffers for the unexpected-message queue: eager
    /// copy-out pops one here instead of allocating, and consuming the
    /// unexpected message pushes it back.
    payload_pool: Vec<Vec<u8>>,
    /// Set by `flush_ctrl` for the second and later posts of one drain:
    /// their doorbells coalesce behind the first post's.
    coalesce_next_post: bool,
    /// Receives that failed permanently, keyed by (peer, pair seq): the
    /// peer's late data packet for that seq is answered with a NACK (RTS)
    /// or dropped (EAGER) instead of matching a later receive.
    dead_rx: HashSet<(Rank, u64)>,
    /// DCFA control epoch the caches were last validated against. A bump
    /// (daemon respawn / lease loss) flushes dead entries from both cache
    /// pools before their stale keys can reach the wire.
    seen_ctrl_epoch: u64,
    /// Offloading send buffer degraded off: repeated twin-registration
    /// failure switches this rank to direct-from-Phi rendezvous sends.
    offload_down: bool,
    /// Consecutive twin-registration failures (reset on success).
    offload_fail_streak: u32,
    /// The world's lazy-connect directory (see [`crate::connect`]).
    conn: Arc<ConnDirectory>,
    /// Reusable scratch: connect messages drained per sweep.
    conn_scratch: Vec<ConnMsg>,
    /// Established peer indices, in establishment order — the progress
    /// sweep iterates these instead of all `size` slots, so a rank that
    /// talks to 4 of 512 peers pays for 4.
    active_peers: Vec<usize>,
    /// Shared receive pool (SRQ mode); `None` on the per-pair ring path.
    srq: Option<SrqPool>,
    /// The world's failure-detection board (`None` outside `launch`, e.g.
    /// in unit harnesses). All hot-path health checks are plain atomic
    /// loads; the expensive reap runs only on a death-epoch transition.
    health: Option<Arc<HealthBoard>>,
    /// Death epoch the engine last reaped at (board transitions trigger
    /// [`Self::reap_dead_peers`]).
    seen_death_epoch: u64,
    /// Revocation epoch the engine last drained at.
    seen_revoke_epoch: u64,
    /// Whether the communicator is currently revoked: pending work has
    /// been drained with [`MpiError::Revoked`] and new operations outside
    /// the shrink-agreement tag band are refused.
    revoked: bool,
    /// Peers already reaped (a death epoch can cover several deaths; each
    /// peer is reaped exactly once).
    reaped_peers: Vec<bool>,
    /// Peers ever counted into `peers_suspected` (count distinct peers,
    /// not observations).
    suspect_noted: Vec<bool>,
    /// Shrink epoch the communicator last completed: unexpected messages
    /// from shrink attempts at or below this epoch are stale and purged.
    shrink_purge_floor: u64,
    /// MPI entry operations (`isend`/`irecv`) issued so far — the kill
    /// schedule's op counter.
    ops_posted: u64,
    /// Fail-stop trigger: when set, the rank kills itself (teardown +
    /// [`KillMarker`] unwind) upon issuing its `kill_after`-th entry op.
    kill_after: Option<u64>,
    /// Hand-off for a stashed SRQ payload: set just before `handle_packet`
    /// when draining the reorder stash (the bytes are no longer in any
    /// pool slot), consumed by the eager delivery paths, recycled by the
    /// drain loop if the handler bailed early.
    srq_inline: Option<Vec<u8>>,
}

impl Engine {
    /// Size in bytes of one ring slot for `cfg`.
    pub fn slot_size(cfg: &MpiConfig) -> u64 {
        cfg.ring_slot_payload + SLOT_OVERHEAD
    }

    /// Ring bytes per ordered peer pair for `cfg`.
    pub fn ring_bytes(cfg: &MpiConfig) -> u64 {
        Self::slot_size(cfg) * cfg.ring_slots as u64
    }

    /// Create a rank's engine. No per-peer resources are allocated here:
    /// QPs and rings materialize lazily on first touch (see
    /// [`crate::connect`]), so a 512-rank world that only exchanges with
    /// neighbours never pays for the all-pairs matrix.
    pub fn create(
        ctx: &mut Ctx,
        rank: Rank,
        size: usize,
        cfg: MpiConfig,
        res: Resources,
        conn: Arc<ConnDirectory>,
    ) -> Engine {
        cfg.validate();
        let cost = res.cluster().config().cost.clone();
        let progress_event = SimEvent::new();
        conn.register(rank, progress_event.clone());
        let cq = res.create_cq(ctx, progress_event.clone());
        let peers: Vec<Option<Peer>> = (0..size).map(|_| None).collect();
        let mpi_call = match cfg.placement {
            Placement::Phi => cost.mpi_call_phi,
            Placement::Host => cost.mpi_call_host,
        };
        let max_requests = cfg.max_requests;
        let mr_cache = MrCache::new(cfg.mr_cache_capacity);
        let offload_cache = OffloadCache::new(16);
        let mut stats = CommStats::default();
        // SRQ mode: one shared receive pool per rank, posted up front.
        // Inbound Send completions wake the same progress event as the
        // send CQ, so a blocked rank resumes on arrival.
        let srq = cfg.srq_depth.map(|depth| {
            let slot_size = Self::slot_size(&cfg);
            let pool_bytes = depth as u64 * slot_size;
            let srq = res.create_srq(ctx);
            let recv_cq = res.create_cq(ctx, progress_event.clone());
            let pool = res
                .cluster()
                .alloc_pages(res.mem(), pool_bytes)
                .expect("SRQ pool allocation failed");
            let pool_mr = res.reg_mr(ctx, pool.clone());
            for i in 0..depth {
                let sge = pool_mr.sge(i as u64 * slot_size, slot_size);
                srq.post_recv(ctx, RecvWr::new(i as u64, vec![sge]))
                    .expect("SRQ initial post failed");
            }
            stats.comm_buffer_bytes += pool_bytes;
            SrqPool {
                srq,
                recv_cq,
                pool,
                pool_mr,
                outstanding: 0,
                src_ranks: HashMap::new(),
                pending: Vec::new(),
            }
        });
        Engine {
            rank,
            size,
            cfg,
            res,
            cost,
            cq,
            progress_event,
            peers,
            mr_cache,
            offload_cache,
            reqs: SlotTable::with_limit(max_requests),
            recv_q: Vec::new(),
            unexpected: Vec::new(),
            mpi_call,
            stats,
            stats_cell: Arc::new(StatsCell::new()),
            trace: Trace::default(),
            metrics: Metrics::default(),
            open_spans: Vec::new(),
            in_progress: false,
            inflight: SlotTable::with_capacity(64),
            retry_due: TimerHeap::new(),
            rndv_timeouts: TimerHeap::new(),
            retry_scratch: Vec::new(),
            timeout_scratch: Vec::new(),
            cq_scratch: Vec::with_capacity(CQ_BATCH),
            copy_scratch: Vec::new(),
            payload_pool: Vec::new(),
            coalesce_next_post: false,
            dead_rx: HashSet::new(),
            seen_ctrl_epoch: 0,
            offload_down: false,
            offload_fail_streak: 0,
            conn,
            conn_scratch: Vec::new(),
            active_peers: Vec::new(),
            srq,
            srq_inline: None,
            health: None,
            seen_death_epoch: 0,
            seen_revoke_epoch: 0,
            revoked: false,
            reaped_peers: vec![false; size],
            suspect_noted: vec![false; size],
            shrink_purge_floor: 0,
            ops_posted: 0,
            kill_after: None,
        }
    }

    /// Allocate this rank's half of the pair with `p`: QP, inbound ring
    /// (registered with the progress event so an inbound packet wakes
    /// us) and the staging region mirroring the peer's ring. Returns the
    /// endpoint to advertise. The outbound half stays unwired until the
    /// peer's endpoint arrives (`Req` or `Ack`).
    fn alloc_peer(&mut self, ctx: &mut Ctx, p: usize) -> PeerEndpoint {
        debug_assert!(self.peers[p].is_none(), "peer {p} already established");
        // Resource setup is a device/control excursion, not steady-state
        // message traffic.
        let _dev = crate::hotpath::pause();
        let ring_bytes = Self::ring_bytes(&self.cfg);
        let mem = self.res.mem();
        // SRQ mode: the QP draws receives from the shared pool and needs
        // no per-pair inbound ring — only the outbound stage scales with
        // the number of touched peers.
        let (qp, in_ring, in_ring_mr) = match &self.srq {
            Some(pool) => {
                let qp = self
                    .res
                    .create_qp_with_srq(ctx, &self.cq, &pool.recv_cq, &pool.srq);
                (qp, None, None)
            }
            None => {
                let qp = self.res.create_qp(ctx, &self.cq, &self.cq);
                let in_ring = self
                    .res
                    .cluster()
                    .alloc_pages(mem, ring_bytes)
                    .expect("ring allocation failed");
                let in_ring_mr = {
                    // Registration cost through the placement-appropriate
                    // path, then attach the shared progress event.
                    let mr = self.res.reg_mr(ctx, in_ring.clone());
                    self.res
                        .ib()
                        .set_write_event(mr.key(), self.progress_event.clone())
                        .expect("ring MR vanished")
                };
                (qp, Some(in_ring), Some(in_ring_mr))
            }
        };
        let stage = self
            .res
            .cluster()
            .alloc_pages(mem, ring_bytes)
            .expect("stage allocation failed");
        let stage_mr = self.res.reg_mr(ctx, stage.clone());
        let ep = PeerEndpoint {
            qpn: qp.qpn(),
            node: qp.node(),
            ring_addr: in_ring.as_ref().map_or(0, |r| r.addr),
            ring_rkey: in_ring_mr.as_ref().map_or(MrKey(0), |mr| mr.key()),
        };
        self.peers[p] = Some(Peer {
            qp,
            connected: false,
            out_ring_addr: 0,
            out_ring_rkey: MrKey(0),
            out_slot_seq: 0,
            out_consumed: 0,
            stage,
            stage_mr,
            in_ring,
            in_ring_mr,
            in_next_seq: 0,
            in_unreported: 0,
            in_noncredit_pending: false,
            tx_seq: 0,
            rx_seq: 0,
            stashed_rtrs: Vec::new(),
            pending_ctrl: std::collections::VecDeque::new(),
            rx_data_high: None,
            served_done: HashMap::new(),
            served_dw: HashMap::new(),
            srq_stash: Vec::new(),
        });
        let pos = self.active_peers.partition_point(|&q| q < p);
        self.active_peers.insert(pos, p);
        self.stats.pairs_established += 1;
        self.stats.comm_buffer_bytes += if self.srq.is_some() {
            ring_bytes // stage only; receives share the pool
        } else {
            2 * ring_bytes
        };
        ep
    }

    /// First-touch connection establishment: allocate our half and post
    /// the connect request. The caller's packet queues in `pending_ctrl`
    /// (or waits in `send_packet`) until the peer's answer wires the
    /// outbound ring.
    fn ensure_peer(&mut self, ctx: &mut Ctx, p: usize) {
        if self.peers[p].is_some() {
            return;
        }
        let ep = self.alloc_peer(ctx, p);
        {
            let _dev = crate::hotpath::pause();
            let sched = self.res.cluster().scheduler();
            self.conn.post(
                sched,
                p,
                ConnMsg::Req {
                    from: self.rank,
                    ep,
                },
            );
        }
        // The out-of-band channel can lose the Req (or its Ack): watch
        // the handshake and re-issue with bounded retries.
        self.arm_conn_timeout(ctx, p, 1);
    }

    /// Rebuild the endpoint advertisement for our already-allocated half
    /// of the pair with `p` (connect-handshake re-issue).
    fn local_endpoint(&self, p: usize) -> PeerEndpoint {
        let peer = self.peers[p].as_ref().expect("no peer");
        PeerEndpoint {
            qpn: peer.qp.qpn(),
            node: peer.qp.node(),
            ring_addr: peer.in_ring.as_ref().map_or(0, |r| r.addr),
            ring_rkey: peer.in_ring_mr.as_ref().map_or(MrKey(0), |mr| mr.key()),
        }
    }

    /// Arm (or re-arm) the lazy-connect handshake watchdog for `peer`.
    fn arm_conn_timeout(&mut self, ctx: &mut Ctx, peer: Rank, attempt: u32) {
        let due = ctx.now() + self.cfg.cmd_timeout;
        self.rndv_timeouts
            .push(due, TimeoutKind::Conn { peer, attempt });
        self.progress_event
            .notify_at(self.res.cluster().scheduler(), due);
    }

    /// The connect handshake toward `peer` timed out: re-issue the Req
    /// (the directory deduplicates via the idempotent wire/ack paths), or
    /// — past the retry budget — declare the peer dead rather than
    /// retrying forever against a corpse.
    fn handle_conn_timeout(&mut self, ctx: &mut Ctx, peer: Rank, attempt: u32) {
        let unwired = self.peers[peer].as_ref().is_some_and(|p| !p.connected);
        if !unwired {
            return; // handshake resolved (or the pair was never allocated)
        }
        if self
            .health
            .as_ref()
            .is_some_and(|b| b.state(peer) == PeerState::Dead)
        {
            return; // the reap already failed everything toward it
        }
        if attempt > self.cfg.cmd_retry_limit {
            if let Some(board) = self.health.clone() {
                {
                    let cluster = self.res.cluster();
                    let sched = cluster.scheduler();
                    board.promote_dead(sched, peer, sched.now());
                }
                self.observe_health(ctx);
            }
            // Without a board there is nothing better than keeping the
            // queued packets parked; the caller's own timeout machinery
            // (or test harness) owns the verdict.
            return;
        }
        let ep = self.local_endpoint(peer);
        {
            let _dev = crate::hotpath::pause();
            let sched = self.res.cluster().scheduler();
            self.conn.post(
                sched,
                peer,
                ConnMsg::Req {
                    from: self.rank,
                    ep,
                },
            );
        }
        self.stats.conn_retries += 1;
        let rank = self.rank;
        self.trace.record(|| TraceEvent::ConnRetry {
            rank,
            peer,
            attempt,
        });
        self.arm_conn_timeout(ctx, peer, attempt + 1);
    }

    /// Wire the outbound half of the pair from the peer's endpoint.
    fn wire_peer(&mut self, p: usize, ep: &PeerEndpoint) {
        let peer = self.peers[p].as_mut().expect("no peer");
        peer.qp.connect(ep.node, ep.qpn);
        peer.out_ring_addr = ep.ring_addr;
        peer.out_ring_rkey = ep.ring_rkey;
        peer.connected = true;
        if let Some(pool) = self.srq.as_mut() {
            // Inbound Send completions carry the sender's (node, qpn);
            // map it to the rank so `pump_srq` can route packets.
            pool.src_ranks.insert((ep.node, ep.qpn), p);
        }
    }

    /// Serve the lazy-connect mailbox: establish passively on `Req`,
    /// wire on `Req`/`Ack`. Queued packets for freshly wired peers drain
    /// in the same progress sweep (it flushes every active peer).
    fn pump_conn(&mut self, ctx: &mut Ctx) {
        let mut msgs = std::mem::take(&mut self.conn_scratch);
        msgs.clear();
        self.conn.drain(self.rank, &mut msgs);
        for msg in msgs.drain(..) {
            match msg {
                ConnMsg::Req { from, ep } => {
                    if self.peers[from].is_none() {
                        // Passive establishment: allocate our half, wire
                        // toward the initiator, answer with our endpoint.
                        let ours = self.alloc_peer(ctx, from);
                        self.wire_peer(from, &ep);
                        let _dev = crate::hotpath::pause();
                        let sched = self.res.cluster().scheduler();
                        self.conn.post(
                            sched,
                            from,
                            ConnMsg::Ack {
                                from: self.rank,
                                ep: ours,
                            },
                        );
                    } else if !self.peers[from].as_ref().expect("no peer").connected {
                        // Cross-connect: both sides initiated at once.
                        // Each wires from the other's Req; an Ack would
                        // be redundant.
                        self.wire_peer(from, &ep);
                    } else {
                        // A re-issued Req at an already-wired pair: our
                        // Ack was lost. Re-answer idempotently with the
                        // endpoint we allocated the first time.
                        let ours = self.local_endpoint(from);
                        let _dev = crate::hotpath::pause();
                        let sched = self.res.cluster().scheduler();
                        self.conn.post(
                            sched,
                            from,
                            ConnMsg::Ack {
                                from: self.rank,
                                ep: ours,
                            },
                        );
                    }
                }
                ConnMsg::Ack { from, ep } => {
                    if self.peers[from].as_ref().is_some_and(|p| !p.connected) {
                        self.wire_peer(from, &ep);
                    }
                }
            }
        }
        self.conn_scratch = msgs;
    }

    pub fn mem(&self) -> MemRef {
        self.res.mem()
    }

    pub fn resources(&self) -> &Resources {
        &self.res
    }

    pub fn cluster(&self) -> &std::sync::Arc<fabric::Cluster> {
        self.res.cluster()
    }

    pub fn config(&self) -> &MpiConfig {
        &self.cfg
    }

    fn new_req(&mut self, state: ReqState) -> u64 {
        self.reqs.insert(state)
    }

    // ---- public operations -------------------------------------------------

    /// Non-blocking send.
    pub fn isend(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        dst: Rank,
        tag: Tag,
    ) -> Result<Request, MpiError> {
        if dst >= self.size || dst == self.rank {
            return Err(MpiError::BadRank(dst));
        }
        self.note_op();
        self.observe_health(ctx);
        if self.revoked && !is_shrink_tag(tag) {
            return Err(MpiError::Revoked);
        }
        if self.peer_dead(dst) {
            return Err(MpiError::PeerFailed(dst));
        }
        // Backpressure before the pair-sequence increment: a send that
        // cannot get a request slot must not burn a sequence id, or the
        // stream would carry a permanent hole and wedge matching.
        if self.reqs.is_full() {
            return Err(MpiError::ResourceExhausted);
        }
        self.ensure_peer(ctx, dst);
        let _hot = crate::hotpath::enter();
        ctx.sleep(self.mpi_call);
        // Late failure gate: the guards above ran before `ensure_peer`
        // (which may block through a lazy-connect handshake) and the
        // entry sleep. A death or revocation that landed meanwhile has
        // already run its one-shot reap/drain, which could not see this
        // send — fail here instead of burning a sequence id toward a
        // corpse or enqueueing into a revoked stream.
        if self.revoked && !is_shrink_tag(tag) {
            return Err(MpiError::Revoked);
        }
        if self.peer_dead(dst) {
            return Err(MpiError::PeerFailed(dst));
        }
        let len = buf.len;
        let seq = {
            let peer = self.peers[dst].as_mut().expect("no peer");
            let s = peer.tx_seq;
            peer.tx_seq += 1;
            s
        };
        // The message is born: its (src, dst, seq) id is now pinned.
        self.msg_life(ctx, self.rank, dst, seq, MsgStage::Post, len);
        let status = Status {
            source: dst,
            tag,
            len,
        };

        self.stats.bytes_sent += len;
        if len <= self.cfg.eager_threshold {
            self.stats.eager_sends += 1;
            let req = self.new_req(ReqState::EagerSend { status });
            self.open_span(ctx, Phase::Eager, req, len, dst);
            let hdr = PacketHeader {
                kind: PacketKind::Eager,
                src_rank: self.rank,
                tag,
                seq,
                len,
                addr: 0,
                rkey: 0,
            };
            self.send_packet(ctx, dst, hdr, Some(buf), Some(req));
            return Ok(Request(req));
        }

        // Rendezvous. Pick the data source: offloaded host twin or the user
        // buffer registered directly.
        self.stats.rndv_sends += 1;
        let (src_addr, src_rkey, lease) = self.rndv_source(ctx, buf);
        // Source-staging edge: the PCIe sync into the host twin, or the
        // MR pin/registration round-trip for a direct-from-Phi source.
        let src_stage = match &lease {
            SendLease::Offload(_) => MsgStage::OffloadSync,
            SendLease::Mr(_) => MsgStage::MrAcquire,
        };
        self.msg_life(ctx, self.rank, dst, seq, src_stage, len);

        // Receiver-first? A stashed RTR with our sequence id means the
        // receiver already advertised its buffer.
        let stashed = {
            let peer = self.peers[dst].as_mut().expect("no peer");
            peer.stashed_rtrs
                .iter()
                .position(|r| r.seq == seq)
                .map(|i| peer.stashed_rtrs.swap_remove(i))
        };
        if let Some(rtr) = stashed {
            self.stats.rndv_recv_first += 1;
            let req = self.new_req(ReqState::RndvSendWriting {
                dst,
                seq,
                full_len: len,
                status,
                lease,
            });
            self.open_span(ctx, Phase::RndvWrite, req, len, dst);
            self.rndv_write(ctx, dst, req, src_addr, src_rkey, len, &rtr);
            return Ok(Request(req));
        }

        // Sender-first: RTS with our buffer info, then await DONE.
        let hdr = PacketHeader {
            kind: PacketKind::Rts,
            src_rank: self.rank,
            tag,
            seq,
            len,
            addr: src_addr,
            rkey: src_rkey.0,
        };
        let req = self.new_req(ReqState::RndvSendAwaitDone {
            dst,
            seq,
            status,
            lease,
            hdr,
        });
        self.open_span(ctx, Phase::RtsWait, req, len, dst);
        self.send_ctrl(ctx, dst, hdr);
        self.arm_rndv_timeout(ctx, TimeoutKind::Rts { req });
        Ok(Request(req))
    }

    /// Non-blocking receive.
    pub fn irecv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Request, MpiError> {
        if let Src::Rank(r) = src {
            if r >= self.size || r == self.rank {
                return Err(MpiError::BadRank(r));
            }
        }
        self.note_op();
        self.observe_health(ctx);
        if self.revoked && !matches!(tag, TagSel::Tag(t) if is_shrink_tag(t)) {
            return Err(MpiError::Revoked);
        }
        if let Src::Rank(r) = src {
            if self.peer_dead(r) {
                return Err(MpiError::PeerFailed(r));
            }
        }
        if self.reqs.is_full() {
            return Err(MpiError::ResourceExhausted);
        }
        if let Src::Rank(r) = src {
            // A known-source receive touches the pair (sequence ids, and
            // possibly an RTR advertisement) — establish it.
            self.ensure_peer(ctx, r);
        }
        let _hot = crate::hotpath::enter();
        ctx.sleep(self.mpi_call);
        // Drain anything already sitting in the rings so protocol
        // selection sees the latest state (an RTS that already arrived
        // must match here instead of triggering a needless RTR).
        self.progress(ctx);
        let req = self.new_req(ReqState::RecvQueued);

        // Try the unexpected queue first.
        if let Some(idx) = self.match_unexpected(src, tag) {
            let u = self.unexpected.remove(idx);
            self.consume_unexpected(ctx, req, buf, u);
            return Ok(Request(req));
        }

        // Sequence assignment: locked while an unmatched any-source receive
        // sits ahead of us (paper §IV-B3).
        let locked = self.recv_q.iter().any(|r| r.seq.is_none());
        let seq = match (src, locked) {
            (Src::Rank(s), false) => {
                let peer = self.peers[s].as_mut().expect("no peer");
                let q = peer.rx_seq;
                peer.rx_seq += 1;
                Some(q)
            }
            _ => None, // any-source gets its id when it meets its packet
        };
        let mut posted = PostedRecv {
            req,
            buf: buf.clone(),
            src,
            tag,
            seq,
            rtr_sent: false,
            rtr_lease: None,
            rtr_hdr: None,
        };

        // Receiver-first rendezvous initiation: a large receive with a known
        // source advertises its buffer immediately.
        if let (Src::Rank(s), Some(q)) = (src, seq) {
            if buf.len > self.cfg.eager_threshold {
                self.send_rtr(ctx, s, q, &mut posted);
            }
        }
        // Late failure gate. The entry guards above ran before this call
        // slept, drove progress and possibly blocked for ring credit —
        // any death or revocation observed meanwhile has already had its
        // one-shot reap/drain pass, which could not see this receive.
        // Enqueueing it now would strand it forever (nothing will ever
        // match it and no later sweep revisits the corpse), so gate
        // again immediately before it becomes reachable only by those
        // sweeps.
        let late = if self.revoked && !matches!(tag, TagSel::Tag(t) if is_shrink_tag(t)) {
            Some(MpiError::Revoked)
        } else {
            match src {
                Src::Rank(r) if self.peer_dead(r) => Some(MpiError::PeerFailed(r)),
                _ => None,
            }
        };
        if let Some(e) = late {
            if let Some(l) = posted.rtr_lease.take() {
                self.mr_cache.release(ctx, &self.res, l);
            }
            self.reqs.remove(req);
            return Err(e);
        }
        self.recv_q.push(posted);
        Ok(Request(req))
    }

    /// Non-blocking completion test. `Some` removes the request.
    pub fn test(&mut self, ctx: &mut Ctx, req: Request) -> Option<Result<Status, MpiError>> {
        let _hot = crate::hotpath::enter();
        self.progress(ctx);
        match self.reqs.get(req.0) {
            Some(ReqState::Done(_)) => match self.reqs.remove(req.0) {
                Some(ReqState::Done(s)) => Some(Ok(s)),
                _ => unreachable!(),
            },
            Some(ReqState::Failed(_)) => match self.reqs.remove(req.0) {
                Some(ReqState::Failed(e)) => Some(Err(e)),
                _ => unreachable!(),
            },
            Some(_) => None,
            None => Some(Err(MpiError::BadRequest)),
        }
    }

    /// Block until the request completes.
    pub fn wait(&mut self, ctx: &mut Ctx, req: Request) -> Result<Status, MpiError> {
        let _hot = crate::hotpath::enter();
        loop {
            let seen = self.progress_event.epoch();
            if let Some(r) = self.test(ctx, req) {
                return r;
            }
            // Parking the simulated process is simulator plumbing, not
            // library work.
            let _dev = crate::hotpath::pause();
            ctx.wait_event(&self.progress_event, seen, "mpi wait");
        }
    }

    /// Wait for all requests, returning the first error (like
    /// `MPI_Waitall`). Every request is driven to completion even when an
    /// earlier one fails — abandoning the rest would leak their protocol
    /// state and strand the peers mid-handshake.
    pub fn waitall(&mut self, ctx: &mut Ctx, reqs: &[Request]) -> Result<Vec<Status>, MpiError> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for &r in reqs {
            match self.wait(ctx, r) {
                Ok(s) => out.push(s),
                Err(e) => {
                    out.push(Status {
                        source: 0,
                        tag: 0,
                        len: 0,
                    });
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Non-blocking probe: is a matching message available to receive
    /// right now? Returns its envelope without consuming it (an arrived
    /// eager payload or rendezvous RTS in the unexpected queue).
    pub fn iprobe(&mut self, ctx: &mut Ctx, src: Src, tag: TagSel) -> Option<Status> {
        self.progress(ctx);
        self.match_unexpected(src, tag)
            .map(|i| match &self.unexpected[i] {
                Unexpected::Eager { src, tag, data, .. } => Status {
                    source: *src,
                    tag: *tag,
                    len: data.len() as u64,
                },
                Unexpected::Rts { hdr } => Status {
                    source: hdr.src_rank,
                    tag: hdr.tag,
                    len: hdr.len,
                },
                Unexpected::Nack { src, tag, .. } => Status {
                    source: *src,
                    tag: *tag,
                    len: 0,
                },
            })
    }

    /// Blocking probe.
    pub fn probe(&mut self, ctx: &mut Ctx, src: Src, tag: TagSel) -> Status {
        loop {
            let seen = self.progress_event.epoch();
            if let Some(st) = self.iprobe(ctx, src, tag) {
                return st;
            }
            let _dev = crate::hotpath::pause();
            ctx.wait_event(&self.progress_event, seen, "mpi probe");
        }
    }

    /// Wait until any of `reqs` completes; returns `(index, result)` and
    /// consumes only that request.
    pub fn waitany(
        &mut self,
        ctx: &mut Ctx,
        reqs: &[Request],
    ) -> (usize, Result<Status, MpiError>) {
        assert!(!reqs.is_empty(), "waitany on empty set");
        let _hot = crate::hotpath::enter();
        loop {
            let seen = self.progress_event.epoch();
            self.progress(ctx);
            // Unknown handles (already consumed or never issued) are
            // *inactive*: they must not mask a still-pending request's
            // real completion, so they are skipped unless the whole set
            // is inactive.
            let mut all_inactive = true;
            for (i, &r) in reqs.iter().enumerate() {
                match self.reqs.get(r.0) {
                    Some(ReqState::Done(_)) | Some(ReqState::Failed(_)) => {
                        return (i, self.test(ctx, r).expect("just checked"));
                    }
                    Some(_) => all_inactive = false,
                    None => {}
                }
            }
            if all_inactive {
                return (0, Err(MpiError::BadRequest));
            }
            let _dev = crate::hotpath::pause();
            ctx.wait_event(&self.progress_event, seen, "mpi waitany");
        }
    }

    /// Protocol/traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Consolidated counter snapshot: protocol counters plus both cache
    /// pools' hit/miss/lifetime statistics. Also publishes the snapshot
    /// into the rank's [`StatsCell`] for concurrent observers.
    pub fn dump(&self) -> StatsReport {
        let report = StatsReport {
            rank: self.rank,
            comm: self.stats,
            mr_cache: self.mr_cache.stats(),
            offload: self.offload_cache.stats(),
            mr_cached: self.mr_cache.cached_regions(),
            mr_pinned: self.mr_cache.pinned_regions(),
        };
        self.stats_cell.publish(report);
        report
    }

    /// The rank's seqlock stats cell: share the handle with any thread to
    /// read the last published [`StatsReport`] without tearing. See the
    /// staleness contract on [`StatsCell`].
    pub fn stats_cell(&self) -> Arc<StatsCell> {
        self.stats_cell.clone()
    }

    /// Live handshake-replay entries (`served_done` + `served_dw`) across
    /// all peers. Bounded by the unresolved-handshake window thanks to
    /// CREDIT watermark pruning — the soak regression test pins this.
    pub fn replay_entries(&self) -> usize {
        self.peers
            .iter()
            .flatten()
            .map(|p| p.served_done.len() + p.served_dw.len())
            .sum()
    }

    /// Request-table slots currently occupied (issued, not yet consumed).
    pub fn requests_live(&self) -> usize {
        self.reqs.len()
    }

    /// Attach this engine (and its caches) to a shared structured trace
    /// ring. Recording is a no-op until this is called.
    pub fn set_tracer(&mut self, buf: TraceBuf) {
        self.trace.attach(buf);
        self.mr_cache.set_trace(self.trace.clone(), self.rank);
        self.offload_cache.set_trace(self.trace.clone(), self.rank);
    }

    /// Attach this engine (and its caches) to a shared metrics hub.
    /// Latency recording — histograms and phase spans — is a no-op until
    /// this is called.
    pub fn set_metrics(&mut self, hub: MetricsHub) {
        self.metrics.attach(hub);
        self.mr_cache.set_metrics(self.metrics.clone());
        self.offload_cache.set_metrics(self.metrics.clone());
    }

    /// Attach this engine to the world's failure-detection board. Health
    /// checks (dead-peer refusal, revoke draining, kill unwinding) are
    /// no-ops until this is called.
    pub fn set_health(&mut self, board: Arc<HealthBoard>) {
        self.health = Some(board);
    }

    /// The attached health board, if any.
    pub(crate) fn health(&self) -> Option<&Arc<HealthBoard>> {
        self.health.as_ref()
    }

    /// Arm the fail-stop trigger: this rank tears down and unwinds with
    /// [`KillMarker`] upon issuing its `n`-th MPI entry operation.
    pub fn set_kill_after(&mut self, n: u64) {
        self.kill_after = Some(n);
    }

    /// Whether the communicator is currently revoked.
    pub(crate) fn is_revoked(&self) -> bool {
        self.revoked
    }

    /// The progress event's current epoch (for epoch/wait loops outside
    /// the engine, e.g. the shrink agreement).
    pub(crate) fn progress_epoch(&self) -> u64 {
        self.progress_event.epoch()
    }

    /// Park the simulated process until the progress event advances past
    /// `seen`.
    pub(crate) fn wait_progress(&mut self, ctx: &mut Ctx, seen: u64, reason: &'static str) {
        let _dev = crate::hotpath::pause();
        ctx.wait_event(&self.progress_event, seen, reason);
    }

    /// A clone of the progress event, for registering as a health-board
    /// watcher (death/revoke/commit transitions must wake blocked ranks).
    pub fn progress_event_handle(&self) -> SimEvent {
        self.progress_event.clone()
    }

    // ---- failure handling --------------------------------------------------

    /// Count one MPI entry operation and fire the fail-stop trigger when
    /// the kill schedule says so: tear the rank's fabric presence down
    /// through the board (QPs error, daemon sessions die) and unwind.
    fn note_op(&mut self) {
        self.ops_posted += 1;
        if let Some(k) = self.kill_after {
            if self.ops_posted >= k {
                let rank = self.rank;
                self.trace.record(|| TraceEvent::RankKilled { rank });
                self.res.abandon();
                self.res.cluster().kill_rank(self.rank);
                std::panic::panic_any(KillMarker);
            }
        }
    }

    /// Observe the health board: unwind if this rank was fail-stopped
    /// externally, reap on a death-epoch transition, drain on a
    /// revocation-epoch transition. Steady state is three atomic loads.
    fn observe_health(&mut self, ctx: &mut Ctx) {
        let Some(board) = self.health.clone() else {
            return;
        };
        if board.is_killed(self.rank) {
            let rank = self.rank;
            self.trace.record(|| TraceEvent::RankKilled { rank });
            self.res.abandon();
            std::panic::panic_any(KillMarker);
        }
        let de = board.death_epoch();
        if de != self.seen_death_epoch {
            self.seen_death_epoch = de;
            self.reap_dead_peers(ctx, &board);
        }
        let re = board.revoke_epoch();
        if re != self.seen_revoke_epoch {
            self.seen_revoke_epoch = re;
            self.pump_revoke(ctx);
        }
    }

    /// Whether the board has promoted `r` to `Dead`. Counts first-time
    /// `Suspect` observations along the way.
    fn peer_dead(&mut self, r: Rank) -> bool {
        let Some(board) = &self.health else {
            return false;
        };
        match board.state(r) {
            PeerState::Dead => true,
            PeerState::Suspect => {
                if !self.suspect_noted[r] {
                    self.suspect_noted[r] = true;
                    self.stats.peers_suspected += 1;
                }
                false
            }
            PeerState::Alive => false,
        }
    }

    /// Reap every newly dead peer: fail requests that can never complete
    /// with [`MpiError::PeerFailed`], release their buffer pins, drop
    /// in-flight and queued traffic toward the corpse, and reclaim its
    /// stash/replay state. Runs only on a death-epoch transition.
    fn reap_dead_peers(&mut self, ctx: &mut Ctx, board: &Arc<HealthBoard>) {
        let _dev = crate::hotpath::pause();
        for d in 0..self.size {
            if d == self.rank || self.reaped_peers[d] || !board.is_dead(d) {
                continue;
            }
            self.reaped_peers[d] = true;
            self.stats.peer_deaths_detected += 1;
            let rank = self.rank;
            self.trace
                .record(|| TraceEvent::PeerReaped { rank, peer: d });
            self.reap_one(ctx, d);
        }
    }

    /// Reap a single dead peer `d` (see [`Self::reap_dead_peers`]).
    fn reap_one(&mut self, ctx: &mut Ctx, d: Rank) {
        let mut reclaimed = 0u64;
        // In-flight WRs toward the corpse first: removing them here means
        // their eventual flush completions miss in `handle_wc` (stale
        // wr_id) instead of triggering NACK recovery toward a dead QP.
        let dead_wrs: Vec<u64> = self
            .inflight
            .iter()
            .filter_map(|(id, e)| (e.dst == d).then_some(id))
            .collect();
        for id in dead_wrs {
            self.inflight.remove(id);
            reclaimed += 1;
        }
        // Requests whose progress depends on the corpse. The owning
        // request fails; everything else on this rank stays alive.
        let dead_reqs: Vec<u64> = self
            .reqs
            .iter()
            .filter_map(|(id, st)| {
                let hit = match st {
                    ReqState::EagerSend { status } => status.source == d,
                    ReqState::RndvSendAwaitDone { dst, .. }
                    | ReqState::RndvSendWriting { dst, .. } => *dst == d,
                    ReqState::RndvRecvReading { src, .. } => *src == d,
                    _ => false,
                };
                hit.then_some(id)
            })
            .collect();
        for id in dead_reqs {
            self.close_span(ctx, id);
            match self
                .reqs
                .replace(id, ReqState::Failed(MpiError::PeerFailed(d)))
            {
                Some(ReqState::RndvSendAwaitDone { lease, .. })
                | Some(ReqState::RndvSendWriting { lease, .. }) => {
                    self.release_send_lease(ctx, lease);
                }
                Some(ReqState::RndvRecvReading { lease, .. }) => {
                    self.mr_cache.release(ctx, &self.res, lease);
                }
                _ => {}
            }
            reclaimed += 1;
        }
        // Posted receives sourced from the corpse (any-source receives may
        // still match a live sender and stay).
        let mut i = 0;
        while i < self.recv_q.len() {
            if matches!(self.recv_q[i].src, Src::Rank(s) if s == d) {
                let mut posted = self.recv_q.remove(i);
                if let Some(l) = posted.rtr_lease.take() {
                    self.mr_cache.release(ctx, &self.res, l);
                }
                self.reqs
                    .replace(posted.req, ReqState::Failed(MpiError::PeerFailed(d)));
                reclaimed += 1;
            } else {
                i += 1;
            }
        }
        // Unexpected messages from the corpse have no receiver left to
        // claim them.
        let mut j = 0;
        while j < self.unexpected.len() {
            let from_dead = match &self.unexpected[j] {
                Unexpected::Eager { src, .. } | Unexpected::Nack { src, .. } => *src == d,
                Unexpected::Rts { hdr } => hdr.src_rank == d,
            };
            if from_dead {
                if let Unexpected::Eager { data, .. } = self.unexpected.remove(j) {
                    recycle_payload(
                        &mut self.payload_pool,
                        data,
                        self.cfg.eager_threshold as usize,
                    );
                }
                reclaimed += 1;
            } else {
                j += 1;
            }
        }
        // Pair-local state: queued control packets, reorder stash,
        // handshake replay maps, stashed RTRs, dead-receive tombstones.
        if let Some(peer) = self.peers[d].as_mut() {
            reclaimed += peer.pending_ctrl.len() as u64;
            peer.pending_ctrl.clear();
            reclaimed += peer.stashed_rtrs.len() as u64;
            peer.stashed_rtrs.clear();
            reclaimed += (peer.served_done.len() + peer.served_dw.len()) as u64;
            peer.served_done.clear();
            peer.served_dw.clear();
            let stash = std::mem::take(&mut peer.srq_stash);
            reclaimed += stash.len() as u64;
            for (_, _, data) in stash {
                recycle_payload(
                    &mut self.payload_pool,
                    data,
                    self.cfg.ring_slot_payload as usize,
                );
            }
        }
        let before = self.dead_rx.len();
        self.dead_rx.retain(|&(r, _)| r != d);
        reclaimed += (before - self.dead_rx.len()) as u64;
        self.stats.dead_reclaimed += reclaimed;
    }

    /// Drain this rank's side of a revocation: every pending request and
    /// posted receive resolves with [`MpiError::Revoked`]; unexpected
    /// messages are discarded (their pair-sequence ids are consumed so
    /// the stream stays in step for post-shrink traffic).
    fn pump_revoke(&mut self, ctx: &mut Ctx) {
        let _dev = crate::hotpath::pause();
        self.revoked = true;
        self.stats.revokes_observed += 1;
        let rank = self.rank;
        self.trace.record(|| TraceEvent::RevokeObserved { rank });
        // The shrink-agreement band is exempt from the drain throughout:
        // `shrink` runs *on* the revoked communicator (ULFM semantics),
        // so a second revocation arriving mid-agreement must not eat the
        // agreement's own messages — that would wedge the recovery at an
        // unchanged death epoch.
        // Posted receives first — they hold RTR leases.
        let mut spared: Vec<u64> = Vec::new();
        let mut i = 0;
        while i < self.recv_q.len() {
            if matches!(self.recv_q[i].tag, TagSel::Tag(t) if is_shrink_tag(t)) {
                spared.push(self.recv_q[i].req);
                i += 1;
                continue;
            }
            let mut posted = self.recv_q.remove(i);
            if let Some(l) = posted.rtr_lease.take() {
                self.mr_cache.release(ctx, &self.res, l);
            }
            self.reqs
                .replace(posted.req, ReqState::Failed(MpiError::Revoked));
            self.stats.reqs_revoked += 1;
        }
        // Every other live request.
        let live: Vec<u64> = self
            .reqs
            .iter()
            .filter_map(|(id, st)| {
                let live = match st {
                    ReqState::Done(_) | ReqState::Failed(_) => false,
                    ReqState::EagerSend { status } => !is_shrink_tag(status.tag),
                    _ => !spared.contains(&id),
                };
                live.then_some(id)
            })
            .collect();
        for id in live {
            self.close_span(ctx, id);
            match self.reqs.replace(id, ReqState::Failed(MpiError::Revoked)) {
                Some(ReqState::RndvSendAwaitDone { lease, .. })
                | Some(ReqState::RndvSendWriting { lease, .. }) => {
                    self.release_send_lease(ctx, lease);
                }
                Some(ReqState::RndvRecvReading { lease, .. }) => {
                    self.mr_cache.release(ctx, &self.res, lease);
                }
                _ => {}
            }
            self.stats.reqs_revoked += 1;
        }
        // Unexpected messages are dropped, consuming their sequence ids:
        // the sender already burnt them, so skipping the receive-side
        // note would desync the pair counters for post-shrink traffic.
        // Shrink-band arrivals stay (an agreement report that landed
        // before its gather recv was posted).
        let mut j = 0;
        while j < self.unexpected.len() {
            let shrink_band = match &self.unexpected[j] {
                Unexpected::Eager { tag, .. } | Unexpected::Nack { tag, .. } => is_shrink_tag(*tag),
                Unexpected::Rts { hdr } => is_shrink_tag(hdr.tag),
            };
            if shrink_band {
                j += 1;
                continue;
            }
            match self.unexpected.remove(j) {
                Unexpected::Eager { src, seq, data, .. } => {
                    if self.peers[src].is_some() {
                        self.note_rx_seq(src, seq);
                    }
                    recycle_payload(
                        &mut self.payload_pool,
                        data,
                        self.cfg.eager_threshold as usize,
                    );
                }
                Unexpected::Rts { hdr } => {
                    if self.peers[hdr.src_rank].is_some() {
                        self.note_rx_seq(hdr.src_rank, hdr.seq);
                    }
                }
                Unexpected::Nack { src, seq, .. } => {
                    if self.peers[src].is_some() {
                        self.note_rx_seq(src, seq);
                    }
                }
            }
            self.stats.dead_reclaimed += 1;
        }
    }

    /// Complete a shrink at `epoch`: the communicator is un-revoked and
    /// unexpected messages from stale shrink attempts (epoch at or below
    /// the new floor) are purged.
    pub(crate) fn complete_shrink(&mut self, epoch: u64, survivors: u64) {
        self.revoked = false;
        self.shrink_purge_floor = epoch;
        self.trace
            .record(|| TraceEvent::ShrinkCommit { epoch, survivors });
        let floor_tag = SHRINK_TAG_BASE + (epoch & 0xFFFF) as Tag;
        let mut k = 0;
        while k < self.unexpected.len() {
            let stale = match &self.unexpected[k] {
                Unexpected::Eager { tag, .. } | Unexpected::Nack { tag, .. } => {
                    is_shrink_tag(*tag) && *tag <= floor_tag
                }
                Unexpected::Rts { hdr } => is_shrink_tag(hdr.tag) && hdr.tag <= floor_tag,
            };
            if stale {
                match self.unexpected.remove(k) {
                    Unexpected::Eager { src, seq, data, .. } => {
                        if self.peers[src].is_some() {
                            self.note_rx_seq(src, seq);
                        }
                        recycle_payload(
                            &mut self.payload_pool,
                            data,
                            self.cfg.eager_threshold as usize,
                        );
                    }
                    Unexpected::Rts { hdr } => {
                        if self.peers[hdr.src_rank].is_some() {
                            self.note_rx_seq(hdr.src_rank, hdr.seq);
                        }
                    }
                    Unexpected::Nack { src, seq, .. } => {
                        if self.peers[src].is_some() {
                            self.note_rx_seq(src, seq);
                        }
                    }
                }
                self.stats.dead_reclaimed += 1;
            } else {
                k += 1;
            }
        }
    }

    /// Note a shrink-agreement restart (a participant died mid-attempt).
    pub(crate) fn note_agreement_restart(&mut self) {
        self.stats.agreement_restarts += 1;
    }

    /// Cancel a posted receive that will never be waited on (shrink
    /// agreement restart): the request handle is consumed and any RTR
    /// pin released. The message may still arrive — it lands in the
    /// unexpected queue and is purged by the shrink floor.
    pub(crate) fn cancel_recv(&mut self, ctx: &mut Ctx, req: Request) {
        if let Some(i) = self.recv_q.iter().position(|r| r.req == req.0) {
            let mut posted = self.recv_q.remove(i);
            if let Some(l) = posted.rtr_lease.take() {
                self.mr_cache.release(ctx, &self.res, l);
            }
        }
        self.close_span(ctx, req.0);
        self.reqs.remove(req.0);
    }

    /// Open a latency span for request `id` and mirror it into the trace
    /// stream (auditor invariant 6 pairs opens and closes).
    fn open_span(&mut self, ctx: &Ctx, phase: Phase, id: u64, bytes: u64, peer: Rank) {
        if let Some(span) = self
            .metrics
            .span_begin(phase, id, bytes, Some(peer), || ctx.now())
        {
            let slot = id as u32 as usize;
            if self.open_spans.len() <= slot {
                self.open_spans.resize(slot + 1, None);
            }
            self.open_spans[slot] = Some((id, span));
            let rank = self.rank;
            self.trace
                .record(|| TraceEvent::SpanOpen { rank, id, phase });
        }
    }

    /// Close request `id`'s span, attributing its lifetime to the phase
    /// it opened under. No-op when no span is open (metrics detached).
    fn close_span(&mut self, ctx: &Ctx, id: u64) {
        let slot = id as u32 as usize;
        match self.open_spans.get(slot) {
            Some(Some((owner, _))) if *owner == id => {}
            _ => return,
        }
        if let Some(Some((_, span))) = self.open_spans.get_mut(slot).map(|s| s.take()) {
            let phase = span.phase;
            self.metrics.span_end(span, || ctx.now());
            let rank = self.rank;
            self.trace
                .record(|| TraceEvent::SpanClose { rank, id, phase });
        }
    }

    /// Host twin of a Phi buffer (creating/caching it on first use), for
    /// host-staged operations. `None` on host placement or when the
    /// offloading send buffer is disabled.
    pub fn host_twin(&mut self, ctx: &mut Ctx, buf: &Buffer) -> Option<Buffer> {
        if self.cfg.placement != Placement::Phi
            || self.cfg.offload_threshold.is_none()
            || buf.mem.domain != fabric::Domain::Phi
            || self.offload_down
        {
            return None;
        }
        self.refresh_ctrl();
        let omr = self.offload_cache.get_or_create(ctx, &self.res, buf)?;
        let off = buf.addr - omr.phi.addr;
        Some(omr.host_mr.buffer().slice(off, buf.len))
    }

    /// DMA the latest bytes of `buf` up into its host twin (blocking).
    pub fn sync_to_twin(&mut self, ctx: &mut Ctx, buf: &Buffer, twin: &Buffer) {
        let t = self.res.cluster().pci_dma(buf, twin, ctx.now());
        ctx.wait_reason(&t.completion, "sync to twin");
    }

    /// DMA the host twin's bytes back down into `buf` (blocking).
    pub fn sync_from_twin(&mut self, ctx: &mut Ctx, twin: &Buffer, buf: &Buffer) {
        let t = self.res.cluster().pci_dma(twin, buf, ctx.now());
        ctx.wait_reason(&t.completion, "sync from twin");
    }

    /// Drain queued control packets (DONEs, credits) before teardown so a
    /// peer still waiting on one of them can complete. Called by the
    /// launcher before the finalize barrier.
    pub fn quiesce(&mut self, ctx: &mut Ctx) {
        loop {
            let seen = self.progress_event.epoch();
            self.progress(ctx);
            let pending = self
                .peers
                .iter()
                .flatten()
                .any(|p| !p.pending_ctrl.is_empty())
                || !self.inflight.is_empty()
                || !self.retry_due.is_empty();
            if !pending {
                self.dump(); // publish final pre-teardown counters
                return;
            }
            ctx.wait_event(&self.progress_event, seen, "finalize quiesce");
        }
    }

    /// Tear down: drain caches and tell the DCFA daemon we're done.
    pub fn finalize(&mut self, ctx: &mut Ctx) {
        self.mr_cache.clear(ctx, &self.res);
        self.offload_cache.clear(ctx, &self.res);
        self.res.close(ctx);
        self.dump();
    }

    // ---- protocol internals ------------------------------------------------

    /// Consecutive twin-registration failures after which the rank stops
    /// trying the offloading send buffer altogether.
    const OFFLOAD_FAIL_LIMIT: u32 = 3;

    /// Re-validate the cache pools against the DCFA control epoch. A bump
    /// means the rank re-attached (daemon respawn or lease loss): flush
    /// every cached entry whose registration died with the old daemon
    /// incarnation before its stale key can reach the wire.
    fn refresh_ctrl(&mut self) {
        let epoch = self.res.ctrl_epoch();
        if epoch != self.seen_ctrl_epoch {
            self.seen_ctrl_epoch = epoch;
            self.mr_cache.invalidate_dead(&self.res);
            self.offload_cache.invalidate_dead(&self.res);
        }
    }

    /// Choose the rendezvous data source: the offloaded host twin (synced
    /// first) above the offload threshold, otherwise the user buffer via
    /// the MR cache. If the daemon cannot provide a twin the send falls
    /// back to sourcing the Phi buffer directly; [`Self::OFFLOAD_FAIL_LIMIT`]
    /// consecutive failures degrade the rank off the offload path for
    /// good. The returned lease pins the source until the remote side
    /// confirms the transfer; release with [`Self::release_send_lease`].
    fn rndv_source(&mut self, ctx: &mut Ctx, buf: &Buffer) -> (u64, MrKey, SendLease) {
        self.refresh_ctrl();
        if let Some(thr) = self.cfg.offload_threshold {
            // Only Phi-resident buffers need the host twin; a buffer that
            // already lives in host memory (e.g. a host-staged collective)
            // is sourced directly at full speed.
            if buf.len >= thr
                && self.cfg.placement == Placement::Phi
                && buf.mem.domain == fabric::Domain::Phi
                && !self.offload_down
            {
                match self.offload_cache.try_acquire(ctx, &self.res, buf) {
                    Some(lease) => {
                        self.offload_fail_streak = 0;
                        let off = buf.addr - lease.phi.addr;
                        let (host_addr, host_key) =
                            (lease.host_mr.addr() + off, lease.host_mr.key());
                        // Sync the latest bytes into the twin (blocking DMA).
                        let src = lease.phi.slice(off, buf.len);
                        let dst = lease.host_mr.buffer().slice(off, buf.len);
                        let rank = self.rank;
                        let len = buf.len;
                        self.trace
                            .record(|| TraceEvent::OffloadSyncStart { rank, len });
                        let t0 = self.metrics.start(|| ctx.now());
                        let t = self.res.cluster().pci_dma(&src, &dst, ctx.now());
                        ctx.wait_reason(&t.completion, "offload sync");
                        self.metrics
                            .record_since(t0, || ctx.now(), Phase::OffloadSync, len, None);
                        self.stats.offload_syncs += 1;
                        self.trace
                            .record(|| TraceEvent::OffloadSyncEnd { rank, len });
                        return (host_addr, host_key, SendLease::Offload(lease));
                    }
                    None => {
                        self.stats.offload_fallbacks += 1;
                        self.offload_fail_streak += 1;
                        if self.offload_fail_streak >= Self::OFFLOAD_FAIL_LIMIT {
                            self.offload_down = true;
                            let rank = self.rank;
                            self.trace.record(|| TraceEvent::OffloadDegraded { rank });
                        }
                        // Fall through: source the Phi buffer directly.
                    }
                }
            }
        }
        let lease = self.mr_cache.acquire(ctx, &self.res, buf);
        let key = lease.mr().key();
        (buf.addr, key, SendLease::Mr(lease))
    }

    /// Give back a rendezvous source lease once the peer has the data.
    fn release_send_lease(&mut self, ctx: &mut Ctx, lease: SendLease) {
        match lease {
            SendLease::Mr(l) => self.mr_cache.release(ctx, &self.res, l),
            SendLease::Offload(l) => self.offload_cache.release(ctx, &self.res, l),
        }
    }

    /// The message id a wire packet's lifecycle events record under. A
    /// message is identified by (sender rank, receiver rank, pair
    /// sequence id); packets that flow sender→receiver (EAGER, RTS,
    /// NACK-SEND, DONE-WRITE, NACK-WRITE) and packets that flow
    /// receiver→sender (RTR, DONE, NACK) map onto it from opposite
    /// ends. CREDITs belong to no message.
    fn msg_id(&self, kind: PacketKind, peer: Rank, outbound: bool) -> Option<(Rank, Rank)> {
        let forward = match kind {
            PacketKind::Eager
            | PacketKind::Rts
            | PacketKind::NackSend
            | PacketKind::DoneWrite
            | PacketKind::NackWrite => true,
            PacketKind::Rtr | PacketKind::Done | PacketKind::Nack => false,
            PacketKind::Credit => return None,
        };
        // On a forward packet the transmitting rank is the message's
        // sender; on a backward packet it is the receiver.
        Some(if forward == outbound {
            (self.rank, peer)
        } else {
            (peer, self.rank)
        })
    }

    /// Record one message-lifecycle edge event (the post-run stitcher's
    /// input). The timestamp is taken inside the record closure, so a
    /// detached trace — or the `trace` feature compiled out — pays
    /// nothing and the allocation-free hot path is unchanged.
    #[inline]
    fn msg_life(&self, ctx: &Ctx, src: Rank, dst: Rank, seq: u64, stage: MsgStage, len: u64) {
        let at = self.rank;
        self.trace.record(move || TraceEvent::MsgLife {
            at,
            src,
            dst,
            seq,
            stage,
            t: ctx.now().as_nanos(),
            len,
        });
    }

    /// Lifecycle edge for an outbound packet hitting the wire: NACKs
    /// record a `Nack` edge, everything else a `Doorbell`.
    fn msg_life_tx(&self, ctx: &Ctx, dst: Rank, hdr: &PacketHeader) {
        if let Some((src, mdst)) = self.msg_id(hdr.kind, dst, true) {
            let stage = match hdr.kind {
                PacketKind::NackSend | PacketKind::Nack | PacketKind::NackWrite => MsgStage::Nack,
                _ => MsgStage::Doorbell,
            };
            self.msg_life(ctx, src, mdst, hdr.seq, stage, hdr.len);
        }
    }

    /// Receiver-first: advertise the receive buffer. The registration is
    /// pinned via `posted.rtr_lease` until the receive resolves.
    fn send_rtr(&mut self, ctx: &mut Ctx, src: Rank, seq: u64, posted: &mut PostedRecv) {
        let lease = self.mr_cache.acquire(ctx, &self.res, &posted.buf);
        let tag = match posted.tag {
            TagSel::Tag(t) => t,
            TagSel::Any => 0,
        };
        let hdr = PacketHeader {
            kind: PacketKind::Rtr,
            src_rank: self.rank,
            tag,
            seq,
            len: posted.buf.len,
            addr: posted.buf.addr,
            rkey: lease.mr().key().0,
        };
        posted.rtr_lease = Some(lease);
        posted.rtr_hdr = Some(hdr);
        self.send_ctrl(ctx, src, hdr);
        posted.rtr_sent = true;
        self.reqs.replace(posted.req, ReqState::RecvAwaitDone);
        self.arm_rndv_timeout(ctx, TimeoutKind::Rtr { req: posted.req });
    }

    /// Receiver-first data movement on the sender: RDMA WRITE into the
    /// advertised buffer, then DONE on completion (driven by `handle_wc`).
    #[allow(clippy::too_many_arguments)]
    fn rndv_write(
        &mut self,
        ctx: &mut Ctx,
        dst: Rank,
        req: u64,
        src_addr: u64,
        src_rkey: MrKey,
        len: u64,
        rtr: &PacketHeader,
    ) {
        let write_len = len.min(rtr.len);
        let sge = verbs::Sge {
            addr: src_addr,
            len: write_len,
            lkey: src_rkey,
        };
        let wr = SendWr::rdma_write(0, sge, rtr.addr, MrKey(rtr.rkey));
        self.post_tracked(ctx, dst, wr, WrKind::RndvWrite { req });
        self.msg_life(ctx, self.rank, dst, rtr.seq, MsgStage::RdmaStart, write_len);
    }

    /// Ring window for a packet kind: CREDITs may use the 2 reserve slots
    /// so flow control can always make progress.
    fn window_for(&self, kind: PacketKind) -> u64 {
        let slots = self.cfg.ring_slots as u64;
        if kind == PacketKind::Credit {
            slots
        } else {
            slots - 2
        }
    }

    /// Queue a control packet (RTS/RTR/DONE/CREDIT) for `dst` and drain as
    /// much of the queue as current credit allows. Never blocks — safe to
    /// call from inside the progress engine.
    fn send_ctrl(&mut self, ctx: &mut Ctx, dst: Rank, hdr: PacketHeader) {
        {
            let peer = self.peers[dst].as_mut().expect("no peer");
            peer.pending_ctrl.push_back(hdr);
        }
        self.flush_ctrl(ctx, dst);
    }

    /// Transmit queued control packets while the window allows. Posts
    /// after the first of one drain ride the first post's doorbell (the
    /// HCA fetches batched WQEs on one ring).
    fn flush_ctrl(&mut self, ctx: &mut Ctx, dst: Rank) {
        let mut posted_any = false;
        loop {
            let hdr = {
                let Some(peer) = self.peers[dst].as_ref() else {
                    break;
                };
                if !peer.connected {
                    break; // queue until the lazy-connect handshake wires us
                }
                let Some(front) = peer.pending_ctrl.front() else {
                    break;
                };
                if peer.out_slot_seq - peer.out_consumed >= self.window_for(front.kind) {
                    break; // still no room
                }
                *front
            };
            self.peers[dst]
                .as_mut()
                .expect("no peer")
                .pending_ctrl
                .pop_front();
            self.coalesce_next_post = posted_any;
            self.transmit_packet(ctx, dst, hdr, None, None);
            posted_any = true;
        }
        // The ring reserves two slots beyond the non-credit window so
        // CREDIT packets can always flow — but that reserve is useless
        // if a queued credit sits behind a window-blocked RTS/DONE at
        // the queue front. Let credits bypass the stalled front: two
        // rings that fill simultaneously would otherwise each wait for
        // the other's ack and wedge. Bypassing is safe — a credit's
        // `out_consumed` watermark is applied with `max` and its replay
        // prune watermarks only ever claim already-resolved handshakes,
        // so neither interacts with the non-credit packets it overtakes.
        loop {
            let idx = {
                let Some(peer) = self.peers[dst].as_ref() else {
                    break;
                };
                if !peer.connected {
                    break;
                }
                if peer.out_slot_seq - peer.out_consumed >= self.window_for(PacketKind::Credit) {
                    break;
                }
                match peer
                    .pending_ctrl
                    .iter()
                    .position(|h| h.kind == PacketKind::Credit)
                {
                    Some(i) => i,
                    None => break,
                }
            };
            let hdr = self.peers[dst]
                .as_mut()
                .expect("no peer")
                .pending_ctrl
                .remove(idx)
                .expect("indexed");
            self.coalesce_next_post = posted_any;
            self.transmit_packet(ctx, dst, hdr, None, None);
            posted_any = true;
        }
        self.coalesce_next_post = false;
    }

    /// Send a data-bearing (eager) packet: waits for ring credit at top
    /// level, draining queued control packets first so packet order on
    /// the ring matches issue order.
    fn send_packet(
        &mut self,
        ctx: &mut Ctx,
        dst: Rank,
        hdr: PacketHeader,
        payload: Option<&Buffer>,
        owner: Option<u64>,
    ) {
        let mut stalled = false;
        loop {
            self.flush_ctrl(ctx, dst);
            let ready = {
                let peer = self.peers[dst].as_ref().expect("no peer");
                peer.connected
                    && peer.pending_ctrl.is_empty()
                    && peer.out_slot_seq - peer.out_consumed < self.window_for(hdr.kind)
            };
            if ready {
                break;
            }
            let seen = self.progress_event.epoch();
            self.progress(ctx);
            let ready = {
                let peer = self.peers[dst].as_ref().expect("no peer");
                peer.connected
                    && peer.pending_ctrl.is_empty()
                    && peer.out_slot_seq - peer.out_consumed < self.window_for(hdr.kind)
            };
            if ready {
                break;
            }
            // A dead peer grants no more credits (and never answers the
            // connect handshake): fail the owner instead of blocking the
            // rank forever.
            if self
                .health
                .as_ref()
                .is_some_and(|b| b.state(dst) == PeerState::Dead)
            {
                if let Some(id) = owner {
                    self.close_span(ctx, id);
                    self.reqs
                        .replace(id, ReqState::Failed(MpiError::PeerFailed(dst)));
                }
                return;
            }
            stalled = true;
            ctx.wait_event(&self.progress_event, seen, "eager ring credit");
        }
        if stalled {
            // The send parked for ring credit; the edge ending here is
            // the credit-stall interval.
            self.stats.credit_parks += 1;
            self.msg_life(ctx, self.rank, dst, hdr.seq, MsgStage::CreditStall, hdr.len);
        }
        self.transmit_packet(ctx, dst, hdr, payload, owner);
    }

    /// Unconditionally place one packet into the peer's ring (caller has
    /// verified the window).
    fn transmit_packet(
        &mut self,
        ctx: &mut Ctx,
        dst: Rank,
        hdr: PacketHeader,
        payload: Option<&Buffer>,
        owner: Option<u64>,
    ) {
        let slots = self.cfg.ring_slots as u64;

        let slot_size = Self::slot_size(&self.cfg);
        let payload_len = payload.map_or(0, |b| b.len);
        assert!(
            payload_len <= self.cfg.ring_slot_payload,
            "payload exceeds slot"
        );
        let (slot_seq, base) = {
            let peer = self.peers[dst].as_mut().expect("no peer");
            let s = peer.out_slot_seq;
            peer.out_slot_seq += 1;
            (s, (s % slots) * slot_size)
        };
        let total = HEADER_LEN + payload_len + TAIL_LEN;

        // Assemble header ‖ payload ‖ tail in the staging slot. The payload
        // copy is the eager protocol's "one copy" (charged at the local
        // domain's memcpy bandwidth).
        let cluster = self.res.cluster().clone();
        let mem_domain = self.res.mem().domain;
        let (stage, stage_mr, out_ring_addr, out_ring_rkey) = {
            let peer = self.peers[dst].as_ref().expect("no peer");
            (
                peer.stage.clone(),
                peer.stage_mr.clone(),
                peer.out_ring_addr,
                peer.out_ring_rkey,
            )
        };
        let mut hdr_bytes = [0u8; HEADER_BYTES];
        hdr.encode_into(&mut hdr_bytes);
        cluster.write(&stage, base, &hdr_bytes);
        if let Some(p) = payload {
            // Bounce through the reusable scratch buffer — the eager
            // protocol's "one copy", allocation-free in steady state.
            let mut data = std::mem::take(&mut self.copy_scratch);
            data.clear();
            data.resize(p.len as usize, 0);
            cluster.read(p, 0, &mut data);
            cluster.write(&stage, base + HEADER_LEN, &data);
            self.copy_scratch = data;
            let t0 = self.metrics.start(|| ctx.now());
            ctx.sleep(cluster.copy_duration(mem_domain, payload_len));
            self.metrics
                .record_since(t0, || ctx.now(), Phase::EagerCopy, payload_len, Some(dst));
            if hdr.kind == PacketKind::Eager {
                // The eager protocol's one copy, now in the staging slot.
                self.msg_life(ctx, self.rank, dst, hdr.seq, MsgStage::Copy, payload_len);
            }
        }
        cluster.write(
            &stage,
            base + HEADER_LEN + payload_len,
            &tail_word(slot_seq).to_le_bytes(),
        );

        if ctx.has_trace() {
            ctx.trace(&format!(
                "rank{} -> rank{dst}: {:?} seq={} len={} (slot {})",
                self.rank,
                hdr.kind,
                hdr.seq,
                hdr.len,
                slot_seq % slots
            ));
        }
        let rank = self.rank;
        self.trace.record(|| TraceEvent::PacketTx {
            from: rank,
            to: dst,
            kind: hdr.kind,
            seq: hdr.seq,
            len: hdr.len,
        });
        if hdr.kind == PacketKind::Credit {
            self.stats.credit_grants += 1;
            self.trace.record(|| TraceEvent::CreditGrant {
                from: rank,
                to: dst,
                consumed: hdr.len,
            });
        }
        self.msg_life_tx(ctx, dst, &hdr);
        let off_in_stage = stage.addr + base;
        let sge = verbs::Sge {
            addr: off_in_stage,
            len: total,
            lkey: stage_mr.key(),
        };
        // Every ring write is signaled and tracked: a failed control
        // packet must be retried (dropping it would wedge the peer's
        // ring), and that needs the WR and its slot to still be known
        // when the error completion arrives. The wr_id is assigned by
        // `post_tracked` from the inflight table. SRQ mode ships the same
        // bytes as a two-sided Send into the peer's shared pool; the
        // slot sequence travels in the tail either way.
        let wr = if self.srq.is_some() {
            SendWr::send(0, sge)
        } else {
            SendWr::rdma_write(0, sge, out_ring_addr + base, out_ring_rkey)
        };
        self.post_tracked(
            ctx,
            dst,
            wr,
            WrKind::Ring {
                hdr,
                slot_seq,
                req: owner,
            },
        );
    }

    /// Rewrite an already-claimed outbound ring slot with a replacement
    /// packet (transport-abort path). The slot's original write failed
    /// and delivered nothing, so the receiver is still polling this very
    /// slot sequence; the stream stays consumable only if *something*
    /// valid lands there. The slot index cannot have been reused: the
    /// flow-control window never advances past an unconsumed slot.
    fn transmit_into_slot(&mut self, ctx: &mut Ctx, dst: Rank, hdr: PacketHeader, slot_seq: u64) {
        let slots = self.cfg.ring_slots as u64;
        let slot_size = Self::slot_size(&self.cfg);
        let base = (slot_seq % slots) * slot_size;
        let cluster = self.res.cluster().clone();
        let (stage, stage_mr, out_ring_addr, out_ring_rkey) = {
            let peer = self.peers[dst].as_ref().expect("no peer");
            (
                peer.stage.clone(),
                peer.stage_mr.clone(),
                peer.out_ring_addr,
                peer.out_ring_rkey,
            )
        };
        let mut hdr_bytes = [0u8; HEADER_BYTES];
        hdr.encode_into(&mut hdr_bytes);
        cluster.write(&stage, base, &hdr_bytes);
        cluster.write(
            &stage,
            base + HEADER_LEN,
            &tail_word(slot_seq).to_le_bytes(),
        );
        let rank = self.rank;
        self.trace.record(|| TraceEvent::PacketTx {
            from: rank,
            to: dst,
            kind: hdr.kind,
            seq: hdr.seq,
            len: hdr.len,
        });
        if hdr.kind == PacketKind::Credit {
            self.stats.credit_grants += 1;
            self.trace.record(|| TraceEvent::CreditGrant {
                from: rank,
                to: dst,
                consumed: hdr.len,
            });
        }
        self.msg_life_tx(ctx, dst, &hdr);
        let sge = verbs::Sge {
            addr: stage.addr + base,
            len: HEADER_LEN + TAIL_LEN,
            lkey: stage_mr.key(),
        };
        let wr = if self.srq.is_some() {
            SendWr::send(0, sge)
        } else {
            SendWr::rdma_write(0, sge, out_ring_addr + base, out_ring_rkey)
        };
        self.post_tracked(
            ctx,
            dst,
            wr,
            WrKind::Ring {
                hdr,
                slot_seq,
                req: None,
            },
        );
    }

    /// Post a send-side work request with its completion routing recorded
    /// in the inflight table. A synchronous post failure (the QP refused
    /// the WR — no completion will ever arrive) is treated as a fatal
    /// completion, but without the recovery traffic: the QP itself is the
    /// thing that is broken.
    fn post_tracked(&mut self, ctx: &mut Ctx, dst: Rank, mut wr: SendWr, kind: WrKind) {
        let coalesce = std::mem::replace(&mut self.coalesce_next_post, false);
        // The inflight-table handle IS the wr_id: insert first to obtain
        // it, then stamp the WR (both the posted one and the stored copy
        // used for retries).
        let wr_id = self.inflight.insert(InflightWr {
            wr,
            dst,
            attempts: 1,
            kind,
        });
        wr.wr_id = wr_id;
        self.inflight
            .get_mut(wr_id)
            .expect("just inserted")
            .wr
            .wr_id = wr_id;
        let qp = &self.peers[dst].as_mut().expect("no peer").qp;
        // Posting is a device-model excursion: the simulated HCA may
        // allocate (scheduling its completion event) without that
        // counting against the library's zero-alloc budget.
        let _dev = crate::hotpath::pause();
        let res = if coalesce {
            self.stats.doorbells_coalesced += 1;
            qp.post_send_coalesced(ctx, wr)
        } else {
            qp.post_send(ctx, wr)
        };
        if res.is_err() {
            if let Some(entry) = self.inflight.remove(wr_id) {
                self.fail_wr(ctx, entry, WcStatus::RemoteAccessError, false);
            }
        }
    }

    /// One progress sweep: drain CQ completions, then inbound rings.
    pub fn progress(&mut self, ctx: &mut Ctx) {
        if self.in_progress {
            return; // re-entered from a handler; the outer sweep continues
        }
        let _hot = crate::hotpath::enter();
        self.in_progress = true;
        self.progress_inner(ctx);
        self.in_progress = false;
    }

    fn progress_inner(&mut self, ctx: &mut Ctx) {
        self.observe_health(ctx);
        self.pump_conn(ctx);
        self.pump_retries(ctx);
        self.pump_rndv_timeouts(ctx);
        // Drain completions in batches: one CQ lock per CQ_BATCH entries
        // instead of one per completion.
        let mut batch = std::mem::take(&mut self.cq_scratch);
        loop {
            batch.clear();
            if self.cq.poll_batch(&mut batch, CQ_BATCH) == 0 {
                break;
            }
            for wc in batch.drain(..) {
                self.handle_wc(ctx, wc);
            }
        }
        self.cq_scratch = batch;
        self.pump_srq(ctx);
        // Only established pairs have rings to sweep; by-index iteration
        // tolerates pairs established mid-sweep (picked up next sweep).
        for i in 0..self.active_peers.len() {
            let p = self.active_peers[i];
            while let Some((hdr, slot_base)) = self.peek_ring(p) {
                // Consume the slot before handling so handlers can send.
                {
                    let peer = self.peers[p].as_mut().expect("no peer");
                    peer.in_next_seq += 1;
                    peer.in_unreported += 1;
                }
                ctx.sleep(self.cost.cpu_op(self.res.mem().domain));
                self.stats.packets_processed += 1;
                if hdr.kind != PacketKind::Credit {
                    if let Some(peer) = self.peers[p].as_mut() {
                        peer.in_noncredit_pending = true;
                    }
                }
                self.handle_packet(ctx, p, hdr, slot_base);
            }
            self.maybe_credit(ctx, p);
            self.flush_ctrl(ctx, p);
        }
    }

    /// Check the next inbound slot of peer `p` (ring path only — SRQ-mode
    /// arrivals surface as completions, drained by `pump_srq`).
    fn peek_ring(&self, p: usize) -> Option<(PacketHeader, u64)> {
        let peer = self.peers[p].as_ref()?;
        let in_ring = peer.in_ring.as_ref()?;
        let slots = self.cfg.ring_slots as u64;
        let slot_size = Self::slot_size(&self.cfg);
        let base = (peer.in_next_seq % slots) * slot_size;
        let cluster = self.res.cluster();
        let mut hdr_bytes = [0u8; HEADER_BYTES];
        cluster.read(in_ring, base, &mut hdr_bytes);
        let hdr = PacketHeader::decode(&hdr_bytes)?;
        let payload_len = match hdr.kind {
            PacketKind::Eager => hdr.len,
            _ => 0,
        };
        if HEADER_LEN + payload_len + TAIL_LEN > slot_size {
            return None; // corrupt / stale
        }
        let mut tail = [0u8; 8];
        cluster.read(in_ring, base + HEADER_LEN + payload_len, &mut tail);
        (tail_seq(u64::from_le_bytes(tail)) == Some(peer.in_next_seq)).then_some((hdr, base))
    }

    /// The buffer holding peer `p`'s current inbound slot: the shared SRQ
    /// pool, or the per-pair ring.
    fn in_slot_buf(&self, p: usize) -> Buffer {
        match &self.srq {
            Some(pool) => pool.pool.clone(),
            None => self.peers[p]
                .as_ref()
                .expect("no peer")
                .in_ring
                .clone()
                .expect("ring path"),
        }
    }

    /// SRQ mode: drain inbound Send completions from the shared pool's
    /// recv CQ and feed them — in per-peer slot-sequence order — into the
    /// same packet handler the ring path uses.
    fn pump_srq(&mut self, ctx: &mut Ctx) {
        if self.srq.is_none() {
            return;
        }
        // Completions parked because their source QP wasn't mapped yet:
        // `pump_conn` ran just before us, so the Ack that maps them may
        // have landed. Their slots were counted outstanding on first
        // sight — no re-count.
        let pending = std::mem::take(&mut self.srq.as_mut().expect("srq").pending);
        for wc in pending {
            self.handle_srq_wc(ctx, wc);
        }
        let mut batch = std::mem::take(&mut self.cq_scratch);
        loop {
            batch.clear();
            let recv_cq = self.srq.as_ref().expect("srq").recv_cq.clone();
            if recv_cq.poll_batch(&mut batch, CQ_BATCH) == 0 {
                break;
            }
            for wc in batch.drain(..) {
                // Each fresh completion is one consumed pool slot; it
                // stays counted until `repost_srq_slot` returns it.
                let pool = self.srq.as_mut().expect("srq");
                pool.outstanding += 1;
                self.stats.srq_highwater = self.stats.srq_highwater.max(pool.outstanding as u64);
                self.handle_srq_wc(ctx, wc);
            }
        }
        self.cq_scratch = batch;
    }

    /// Route one inbound-Send completion: map the source QP to a rank,
    /// parse the packet out of the pool slot, deliver in-order packets
    /// directly and stash overtakers, then recycle the slot.
    fn handle_srq_wc(&mut self, ctx: &mut Ctx, wc: Wc) {
        let slot = wc.wr_id as usize;
        let Some(src) = wc.src else {
            self.repost_srq_slot(ctx, slot);
            return;
        };
        let p = match self.srq.as_ref().expect("srq").src_ranks.get(&src) {
            Some(&p) => p,
            None => {
                // Data raced the connect Ack that maps this QP — park the
                // completion; the slot stays consumed until then.
                self.srq.as_mut().expect("srq").pending.push(wc);
                return;
            }
        };
        if wc.status != WcStatus::Success {
            // Scatter failure (defensive): recycle; the sender's retry
            // machinery owns recovery.
            self.repost_srq_slot(ctx, slot);
            return;
        }
        let slot_size = Self::slot_size(&self.cfg);
        let base = slot as u64 * slot_size;
        let cluster = self.res.cluster().clone();
        let pool_buf = self.srq.as_ref().expect("srq").pool.clone();
        let mut hdr_bytes = [0u8; HEADER_BYTES];
        cluster.read(&pool_buf, base, &mut hdr_bytes);
        let Some(hdr) = PacketHeader::decode(&hdr_bytes) else {
            self.repost_srq_slot(ctx, slot);
            return;
        };
        let payload_len = match hdr.kind {
            PacketKind::Eager => hdr.len,
            _ => 0,
        };
        let mut tail = [0u8; 8];
        cluster.read(&pool_buf, base + HEADER_LEN + payload_len, &mut tail);
        let Some(slot_seq) = tail_seq(u64::from_le_bytes(tail)) else {
            self.repost_srq_slot(ctx, slot);
            return;
        };
        let next = self.peers[p].as_ref().expect("no peer").in_next_seq;
        if slot_seq < next {
            // Below the consumed watermark — already superseded. Cannot
            // happen in the current protocol (a failed Send moves no
            // data, so its slot sequence is only ever delivered once),
            // but recycling is always safe.
            self.repost_srq_slot(ctx, slot);
            return;
        }
        if slot_seq > next {
            // An overtaker: a retried packet's successors arrived first.
            // Copy it off the pool so the slot recycles; drain later.
            let _dev = crate::hotpath::pause();
            let mut data = self.payload_pool.pop().unwrap_or_default();
            debug_assert!(data.is_empty(), "pooled buffer returned dirty");
            data.resize(payload_len as usize, 0);
            if payload_len > 0 {
                cluster.read(&pool_buf, base + HEADER_LEN, &mut data);
            }
            let peer = self.peers[p].as_mut().expect("no peer");
            peer.srq_stash.push((slot_seq, hdr, data));
            if let Some((src, dst)) = self.msg_id(hdr.kind, p, false) {
                self.msg_life(ctx, src, dst, hdr.seq, MsgStage::SrqStash, hdr.len);
            }
            self.repost_srq_slot(ctx, slot);
            return;
        }
        // In order: consume straight from the pool slot, then recycle it
        // and drain any stashed successors.
        self.consume_srq_packet(ctx, p, hdr, base, None);
        self.repost_srq_slot(ctx, slot);
        loop {
            let next = self.peers[p].as_ref().expect("no peer").in_next_seq;
            let peer = self.peers[p].as_mut().expect("no peer");
            let Some(i) = peer.srq_stash.iter().position(|&(s, _, _)| s == next) else {
                break;
            };
            let (_, hdr, data) = peer.srq_stash.swap_remove(i);
            self.consume_srq_packet(ctx, p, hdr, 0, Some(data));
        }
    }

    /// Advance peer `p`'s inbound sequence and run the shared packet
    /// handler. `inline` carries a stashed payload (no longer in any pool
    /// slot); otherwise the payload is read from the pool at `slot_base`.
    fn consume_srq_packet(
        &mut self,
        ctx: &mut Ctx,
        p: usize,
        hdr: PacketHeader,
        slot_base: u64,
        inline: Option<Vec<u8>>,
    ) {
        {
            let peer = self.peers[p].as_mut().expect("no peer");
            peer.in_next_seq += 1;
            peer.in_unreported += 1;
        }
        ctx.sleep(self.cost.cpu_op(self.res.mem().domain));
        self.stats.packets_processed += 1;
        if hdr.kind != PacketKind::Credit {
            if let Some(peer) = self.peers[p].as_mut() {
                peer.in_noncredit_pending = true;
            }
        }
        self.srq_inline = inline;
        self.handle_packet(ctx, p, hdr, slot_base);
        // The handler bailed before consuming a stashed payload (dup,
        // dead receive, truncation): recycle it here so it can never
        // masquerade as the next packet's payload.
        if let Some(data) = self.srq_inline.take() {
            recycle_payload(
                &mut self.payload_pool,
                data,
                self.cfg.ring_slot_payload as usize,
            );
        }
    }

    /// Return a consumed pool slot to the SRQ. May immediately complete a
    /// backlogged Send (pool ran dry) — the new completion is picked up
    /// by the `pump_srq` drain loop in the same sweep.
    fn repost_srq_slot(&mut self, ctx: &mut Ctx, slot: usize) {
        let _dev = crate::hotpath::pause();
        let slot_size = Self::slot_size(&self.cfg);
        let pool = self.srq.as_ref().expect("srq");
        let sge = pool.pool_mr.sge(slot as u64 * slot_size, slot_size);
        pool.srq
            .post_recv(ctx, RecvWr::new(slot as u64, vec![sge]))
            .expect("SRQ repost failed");
        self.srq.as_mut().expect("srq").outstanding -= 1;
    }

    /// Smallest pair sequence toward `p` whose sender-first handshake is
    /// still unresolved on our side — the watchdog could re-issue its RTS,
    /// so the peer must keep its `served_done` reply for it. Everything
    /// below is acknowledged: the peer may forget those replies.
    fn ack_tx_watermark(&self, p: usize) -> u64 {
        let mut w = self.peers[p].as_ref().map_or(0, |peer| peer.tx_seq);
        for (_, state) in self.reqs.iter() {
            if let ReqState::RndvSendAwaitDone { dst, seq, .. } = state {
                if *dst == p {
                    w = w.min(*seq);
                }
            }
        }
        w
    }

    /// Smallest pair sequence from `p` whose receiver-first handshake is
    /// still unresolved on our side — the watchdog could re-issue its RTR,
    /// so the peer must keep its `served_dw` reply for it. New receives
    /// always advertise sequences at or above `rx_seq`, so the watermark
    /// never moves backwards.
    fn ack_rx_watermark(&self, p: usize) -> u64 {
        let mut w = self.peers[p].as_ref().map_or(0, |peer| peer.rx_seq);
        for r in &self.recv_q {
            if r.rtr_sent && r.src == Src::Rank(p) {
                if let Some(seq) = r.seq {
                    w = w.min(seq);
                }
            }
        }
        w
    }

    /// Build a CREDIT packet for peer `p`: `len` reports consumed ring
    /// slots, and the otherwise-unused `seq`/`addr` fields piggyback the
    /// handshake-resolution watermarks that let the peer prune its
    /// `served_done`/`served_dw` replay maps (see `handle_packet`). Old
    /// peers that sent zeros here simply prune nothing.
    fn credit_header(&self, p: usize) -> PacketHeader {
        let consumed = self.peers[p].as_ref().expect("no peer").in_next_seq;
        let mut hdr = PacketHeader::control(
            PacketKind::Credit,
            self.rank,
            0,
            self.ack_tx_watermark(p),
            consumed,
        );
        hdr.addr = self.ack_rx_watermark(p);
        hdr
    }

    fn maybe_credit(&mut self, ctx: &mut Ctx, p: usize) {
        let Some(peer) = self.peers[p].as_ref() else {
            return;
        };
        // Two thresholds: consumption involving real packets reports at
        // slots/4; *pure credit* consumption reports only at slots/2.
        // The 2:1 ratio makes credit-only exchanges decay geometrically
        // (no ping-pong livelock) while still recycling the slots that
        // CREDIT packets themselves occupy (no ack-stream starvation).
        let data_threshold = (self.cfg.ring_slots / 4).max(1) as u64;
        let pure_threshold = (self.cfg.ring_slots / 2).max(2) as u64;
        let due = if peer.in_noncredit_pending {
            peer.in_unreported >= data_threshold
        } else {
            peer.in_unreported >= pure_threshold
        };
        if !due {
            return;
        }
        let hdr = self.credit_header(p);
        self.send_ctrl(ctx, p, hdr);
        if let Some(peer) = self.peers[p].as_mut() {
            peer.in_unreported = 0;
            peer.in_noncredit_pending = false;
        }
    }

    /// Route one work completion: success completes the tracked WR;
    /// errors are classified into bounded retry (transient statuses),
    /// unbounded retry (ownerless control packets, which must eventually
    /// land or the peer's ring wedges), or permanent failure of the
    /// owning request — never a panic, never a dead rank.
    fn handle_wc(&mut self, ctx: &mut Ctx, wc: Wc) {
        let Some(entry) = self.inflight.remove(wc.wr_id) else {
            return;
        };
        if wc.status == WcStatus::Success {
            self.complete_wr(ctx, entry);
            return;
        }
        self.stats.wr_faults += 1;
        let rank = self.rank;
        let (peer, wr_id, transient) = (entry.dst, wc.wr_id, wc.status.is_transient());
        self.trace.record(|| TraceEvent::WrFault {
            rank,
            peer,
            wr_id,
            transient,
        });
        if wc.status == WcStatus::WrFlushErr {
            // The QP toward this peer flushed: the peer is dead. Snoop it
            // onto the health board (faster than heartbeat staleness) and
            // let the reap fail the owner with `PeerFailed` — recovery
            // traffic toward a corpse would only flush again.
            match self.health.clone() {
                Some(board) => {
                    {
                        let cluster = self.res.cluster();
                        let sched = cluster.scheduler();
                        board.promote_dead(sched, entry.dst, sched.now());
                    }
                    let _ = entry; // the sweep below resolves its owner
                    self.observe_health(ctx);
                    // The epoch-transition reap in `observe_health` is
                    // one-shot per peer: a WR posted after the corpse was
                    // already reaped (its entry guards raced the
                    // promotion) would otherwise leave its owner pending
                    // forever. `reap_one` is an idempotent sweep of
                    // everything currently toward the corpse, so re-run
                    // it for every flush.
                    self.reap_one(ctx, peer);
                }
                None => self.fail_wr(ctx, entry, wc.status, false),
            }
            return;
        }
        let ownerless_ctrl = matches!(
            &entry.kind,
            WrKind::Ring { hdr, req: None, .. } if matches!(
                hdr.kind,
                PacketKind::Done
                    | PacketKind::DoneWrite
                    | PacketKind::Credit
                    | PacketKind::NackSend
                    | PacketKind::Nack
                    | PacketKind::NackWrite
            )
        );
        if ownerless_ctrl || (transient && entry.attempts <= self.cfg.retry_limit) {
            self.schedule_retry(ctx, entry);
        } else {
            self.fail_wr(ctx, entry, wc.status, true);
        }
    }

    /// A tracked work request completed successfully.
    fn complete_wr(&mut self, ctx: &mut Ctx, entry: InflightWr) {
        match entry.kind {
            WrKind::Ring { hdr, req, .. } => {
                let Some(id) = req else { return };
                match self.reqs.get(id) {
                    Some(ReqState::EagerSend { status }) => {
                        let status = *status;
                        self.close_span(ctx, id);
                        self.reqs.replace(id, ReqState::Done(status));
                        let (dst, seq, len) = (entry.dst, hdr.seq, hdr.len);
                        self.msg_life(ctx, self.rank, dst, seq, MsgStage::Complete, len);
                    }
                    // Already failed out-of-band (peer death reap or a
                    // revocation drained it): the late success changes
                    // nothing.
                    Some(ReqState::Failed(_)) => {}
                    Some(_) => {
                        panic!("unexpected ring WC for request {id} ({:?})", hdr.kind);
                    }
                    None => {}
                }
            }
            // State transitions below swap the state out (the handle stays
            // valid, so the request keeps its id), work on the old fields,
            // then swap the final state in.
            WrKind::RndvRead { req } => match self.reqs.replace(req, ReqState::RecvAwaitDone) {
                Some(ReqState::RndvRecvReading {
                    src,
                    seq,
                    status,
                    truncated,
                    lease,
                }) => {
                    self.close_span(ctx, req);
                    self.msg_life(ctx, src, self.rank, seq, MsgStage::RdmaDone, status.len);
                    self.mr_cache.release(ctx, &self.res, lease);
                    self.stats.bytes_received += status.len;
                    let hdr = PacketHeader::control(
                        PacketKind::Done,
                        self.rank,
                        status.tag,
                        seq,
                        status.len,
                    );
                    if let Some(peer) = self.peers[src].as_mut() {
                        peer.served_done.insert(seq, hdr);
                    }
                    self.send_ctrl(ctx, src, hdr);
                    let completed = truncated.is_none();
                    let final_state = match truncated {
                        Some(e) => ReqState::Failed(e),
                        None => ReqState::Done(status),
                    };
                    self.reqs.replace(req, final_state);
                    if completed {
                        self.msg_life(ctx, src, self.rank, seq, MsgStage::Complete, status.len);
                    }
                }
                Some(failed @ ReqState::Failed(_)) => {
                    // Failed out-of-band (revocation) while the read was
                    // in flight; keep the failure.
                    self.reqs.replace(req, failed);
                }
                Some(other) => {
                    self.reqs.replace(req, other);
                    panic!("unexpected RDMA-read WC for request {req}");
                }
                None => {}
            },
            WrKind::RndvWrite { req } => {
                match self.reqs.replace(req, ReqState::RecvAwaitDone) {
                    Some(ReqState::RndvSendWriting {
                        dst,
                        seq,
                        full_len,
                        status,
                        lease,
                    }) => {
                        // Data placed; the source is free again. Tell the
                        // receiver.
                        self.close_span(ctx, req);
                        self.msg_life(ctx, self.rank, dst, seq, MsgStage::RdmaDone, full_len);
                        self.release_send_lease(ctx, lease);
                        let hdr = PacketHeader::control(
                            PacketKind::DoneWrite,
                            self.rank,
                            status.tag,
                            seq,
                            full_len,
                        );
                        if let Some(peer) = self.peers[dst].as_mut() {
                            peer.served_dw.insert(seq, hdr);
                        }
                        self.send_ctrl(ctx, dst, hdr);
                        self.reqs.replace(req, ReqState::Done(status));
                        self.msg_life(ctx, self.rank, dst, seq, MsgStage::Complete, full_len);
                    }
                    Some(failed @ ReqState::Failed(_)) => {
                        self.reqs.replace(req, failed);
                    }
                    Some(other) => {
                        self.reqs.replace(req, other);
                        panic!("unexpected RDMA-write WC for request {req}");
                    }
                    None => {}
                }
            }
        }
    }

    /// Put a transiently failed WR back on the wire after an exponential
    /// backoff (scheduled through the simulation clock; the progress
    /// event is poked at the due time so a waiting rank wakes up).
    fn schedule_retry(&mut self, ctx: &mut Ctx, mut entry: InflightWr) {
        let shift = (entry.attempts - 1).min(20);
        let backoff = self.cfg.retry_backoff * (1u64 << shift);
        self.metrics
            .record_ns(Phase::Backoff, 0, Some(entry.dst), backoff.as_nanos());
        if let WrKind::Ring { hdr, .. } = entry.kind {
            if let Some((src, dst)) = self.msg_id(hdr.kind, entry.dst, true) {
                self.msg_life(ctx, src, dst, hdr.seq, MsgStage::Backoff, hdr.len);
            }
        }
        entry.attempts += 1;
        // Re-insert under a fresh handle (the caller removed the entry to
        // classify its completion). The WR is re-stamped with the current
        // handle at each re-post, so the eventual completion still routes.
        let new_id = self.inflight.insert(entry);
        let due = ctx.now() + backoff;
        self.retry_due.push(due, new_id);
        self.progress_event
            .notify_at(self.res.cluster().scheduler(), due);
    }

    /// Re-post WRs whose backoff has elapsed.
    fn pump_retries(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        if self.retry_due.peek_due().is_none_or(|d| d > now) {
            return;
        }
        let mut due = std::mem::take(&mut self.retry_scratch);
        due.clear();
        self.retry_due.drain_due(now, &mut due);
        for wr_id in due.drain(..) {
            let Some(entry) = self.inflight.get(wr_id) else {
                continue;
            };
            let (dst, mut wr, attempt, kind) = (entry.dst, entry.wr, entry.attempts, entry.kind);
            wr.wr_id = wr_id;
            let rank = self.rank;
            self.trace.record(|| TraceEvent::WrRetry {
                rank,
                peer: dst,
                wr_id,
                attempt,
            });
            self.stats.wr_retries += 1;
            if let WrKind::Ring { hdr, .. } = kind {
                if let Some((src, mdst)) = self.msg_id(hdr.kind, dst, true) {
                    self.msg_life(ctx, src, mdst, hdr.seq, MsgStage::Retry, hdr.len);
                }
            }
            let res = self.peers[dst]
                .as_mut()
                .expect("no peer")
                .qp
                .post_send(ctx, wr);
            if res.is_err() {
                if let Some(entry) = self.inflight.remove(wr_id) {
                    self.fail_wr(ctx, entry, WcStatus::RemoteAccessError, false);
                }
            }
        }
        self.retry_scratch = due;
    }

    /// A send-side work request failed permanently: fail the owning
    /// request (only that request — the rank and all other traffic stay
    /// alive), notify the peer so its side resolves too, and keep the
    /// ring consumable. `recover` is false only for synchronous post
    /// failures, where the QP itself refused the WR and recovery traffic
    /// through it would be futile.
    fn fail_wr(&mut self, ctx: &mut Ctx, entry: InflightWr, status: WcStatus, recover: bool) {
        self.stats.transport_failures += 1;
        let rank = self.rank;
        let dst = entry.dst;
        let attempts = entry.attempts;
        match entry.kind {
            WrKind::Ring { hdr, slot_seq, req } => match hdr.kind {
                PacketKind::Eager => {
                    let seq = hdr.seq;
                    self.trace.record(|| TraceEvent::TransportFail {
                        rank,
                        peer: dst,
                        seq,
                    });
                    if let Some(id) = req {
                        self.close_span(ctx, id);
                        self.reqs.replace(
                            id,
                            ReqState::Failed(MpiError::Transport {
                                status,
                                op: TransportOp::EagerWrite,
                                attempts,
                            }),
                        );
                    }
                    if recover {
                        let nack = PacketHeader::control(
                            PacketKind::NackSend,
                            self.rank,
                            hdr.tag,
                            hdr.seq,
                            0,
                        );
                        self.transmit_into_slot(ctx, dst, nack, slot_seq);
                    }
                }
                PacketKind::Rts => {
                    let seq = hdr.seq;
                    self.trace.record(|| TraceEvent::TransportFail {
                        rank,
                        peer: dst,
                        seq,
                    });
                    // The owning send is discovered through (dst, seq):
                    // control packets carry no request id.
                    let owner = self.reqs.iter().find_map(|(id, st)| match st {
                        ReqState::RndvSendAwaitDone { dst: d, seq: s, .. }
                            if *d == dst && *s == hdr.seq =>
                        {
                            Some(id)
                        }
                        _ => None,
                    });
                    if let Some(id) = owner {
                        self.close_span(ctx, id);
                        if let Some(ReqState::RndvSendAwaitDone { lease, .. }) = self.reqs.replace(
                            id,
                            ReqState::Failed(MpiError::Transport {
                                status,
                                op: TransportOp::CtrlWrite,
                                attempts,
                            }),
                        ) {
                            self.release_send_lease(ctx, lease);
                        }
                    }
                    if recover {
                        let nack = PacketHeader::control(
                            PacketKind::NackSend,
                            self.rank,
                            hdr.tag,
                            hdr.seq,
                            0,
                        );
                        self.transmit_into_slot(ctx, dst, nack, slot_seq);
                    }
                }
                PacketKind::Rtr => {
                    let seq = hdr.seq;
                    self.trace.record(|| TraceEvent::TransportFail {
                        rank,
                        peer: dst,
                        seq,
                    });
                    let idx = self.recv_q.iter().position(|r| {
                        r.rtr_sent
                            && r.seq == Some(hdr.seq)
                            && matches!(r.src, Src::Rank(s) if s == dst)
                    });
                    if let Some(i) = idx {
                        let mut posted = self.recv_q.remove(i);
                        if let Some(l) = posted.rtr_lease.take() {
                            self.mr_cache.release(ctx, &self.res, l);
                        }
                        self.reqs.replace(
                            posted.req,
                            ReqState::Failed(MpiError::Transport {
                                status,
                                op: TransportOp::CtrlWrite,
                                attempts,
                            }),
                        );
                        // The sender never saw our RTR; its RTS (or eager
                        // packet) for this seq will arrive later and must
                        // not match another receive.
                        self.dead_rx.insert((dst, hdr.seq));
                    }
                    if recover {
                        let filler = self.credit_header(dst);
                        self.transmit_into_slot(ctx, dst, filler, slot_seq);
                    }
                }
                // Ownerless control packets retry without bound, so they
                // only land here on a synchronous post failure.
                _ => self.stats.ctrl_abandoned += 1,
            },
            WrKind::RndvRead { req } => {
                if let Some(ReqState::RndvRecvReading {
                    src,
                    seq,
                    status: st,
                    lease,
                    ..
                }) = self.reqs.replace(
                    req,
                    ReqState::Failed(MpiError::Transport {
                        status,
                        op: TransportOp::RndvRead,
                        attempts,
                    }),
                ) {
                    self.close_span(ctx, req);
                    self.mr_cache.release(ctx, &self.res, lease);
                    self.trace.record(|| TraceEvent::TransportFail {
                        rank,
                        peer: src,
                        seq,
                    });
                    if recover {
                        let nack =
                            PacketHeader::control(PacketKind::Nack, self.rank, st.tag, seq, 0);
                        if let Some(peer) = self.peers[src].as_mut() {
                            peer.served_done.insert(seq, nack);
                        }
                        self.send_ctrl(ctx, src, nack);
                    }
                }
            }
            WrKind::RndvWrite { req } => {
                if let Some(ReqState::RndvSendWriting {
                    dst: d,
                    seq,
                    status: st,
                    lease,
                    ..
                }) = self.reqs.replace(
                    req,
                    ReqState::Failed(MpiError::Transport {
                        status,
                        op: TransportOp::RndvWrite,
                        attempts,
                    }),
                ) {
                    self.close_span(ctx, req);
                    self.release_send_lease(ctx, lease);
                    self.trace
                        .record(|| TraceEvent::TransportFail { rank, peer: d, seq });
                    if recover {
                        let nack =
                            PacketHeader::control(PacketKind::NackWrite, self.rank, st.tag, seq, 0);
                        if let Some(peer) = self.peers[d].as_mut() {
                            peer.served_dw.insert(seq, nack);
                        }
                        self.send_ctrl(ctx, d, nack);
                    }
                }
            }
        }
    }

    /// Arm the rendezvous-handshake watchdog for `kind` (no-op when the
    /// watchdog is disabled).
    fn arm_rndv_timeout(&mut self, ctx: &mut Ctx, kind: TimeoutKind) {
        let Some(t) = self.cfg.rndv_timeout else {
            return;
        };
        let due = ctx.now() + t;
        self.rndv_timeouts.push(due, kind);
        self.progress_event
            .notify_at(self.res.cluster().scheduler(), due);
    }

    /// Fire elapsed handshake watchdogs. A watchdog whose request has
    /// resolved (completed or failed) is simply dropped.
    fn pump_rndv_timeouts(&mut self, ctx: &mut Ctx) {
        // Evict resolved handshakes' watchdogs once they dominate the
        // heap — thousands of ranks re-arming rendezvous watchdogs would
        // otherwise grow it without bound between (rare) fires.
        let Engine {
            rndv_timeouts,
            reqs,
            peers,
            ..
        } = self;
        rndv_timeouts.maybe_compact(|k| match *k {
            TimeoutKind::Rts { req } => {
                matches!(reqs.get(req), Some(ReqState::RndvSendAwaitDone { .. }))
            }
            TimeoutKind::Rtr { req } => matches!(reqs.get(req), Some(ReqState::RecvAwaitDone)),
            TimeoutKind::Conn { peer, .. } => peers[peer].as_ref().is_some_and(|p| !p.connected),
        });
        let now = ctx.now();
        if self.rndv_timeouts.peek_due().is_none_or(|d| d > now) {
            return;
        }
        let mut fired = std::mem::take(&mut self.timeout_scratch);
        fired.clear();
        self.rndv_timeouts.drain_due(now, &mut fired);
        for kind in fired.drain(..) {
            self.handle_rndv_timeout(ctx, kind);
        }
        self.timeout_scratch = fired;
    }

    /// Whether the handshake packet `hdr` is still on its way out of this
    /// rank (queued for credit, in flight, or awaiting a retry) — in
    /// which case re-issuing it would be premature.
    fn ctrl_outstanding(&self, dst: Rank, hdr: &PacketHeader) -> bool {
        let queued = self.peers[dst].as_ref().is_some_and(|p| {
            p.pending_ctrl
                .iter()
                .any(|h| h.kind == hdr.kind && h.seq == hdr.seq)
        });
        queued
            || self.inflight.iter().any(|(_, e)| {
                e.dst == dst
                    && matches!(&e.kind, WrKind::Ring { hdr: h, .. }
                        if h.kind == hdr.kind && h.seq == hdr.seq)
            })
    }

    fn handle_rndv_timeout(&mut self, ctx: &mut Ctx, kind: TimeoutKind) {
        let (dst, hdr) = match kind {
            TimeoutKind::Conn { peer, attempt } => {
                self.handle_conn_timeout(ctx, peer, attempt);
                return;
            }
            TimeoutKind::Rts { req } => {
                let Some(ReqState::RndvSendAwaitDone { dst, hdr, .. }) = self.reqs.get(req) else {
                    return;
                };
                (*dst, *hdr)
            }
            TimeoutKind::Rtr { req } => {
                if !matches!(self.reqs.get(req), Some(ReqState::RecvAwaitDone)) {
                    return;
                }
                let Some(posted) = self.recv_q.iter().find(|r| r.req == req) else {
                    return;
                };
                let (Some(hdr), Src::Rank(dst)) = (posted.rtr_hdr, posted.src) else {
                    return;
                };
                (dst, hdr)
            }
        };
        if self.ctrl_outstanding(dst, &hdr) {
            // Still in our own pipeline (e.g. waiting out a retry
            // backoff); give it another period.
            self.arm_rndv_timeout(ctx, kind);
            return;
        }
        let rank = self.rank;
        let (pkind, seq) = (hdr.kind, hdr.seq);
        self.trace.record(|| TraceEvent::Retrans {
            from: rank,
            to: dst,
            kind: pkind,
            seq,
        });
        self.stats.handshake_reissues += 1;
        self.send_ctrl(ctx, dst, hdr);
        self.arm_rndv_timeout(ctx, kind);
    }

    /// Whether data-stream sequence `seq` from peer `p` has been seen
    /// before (data packets arrive in sequence order, so a dup means a
    /// re-issued handshake).
    fn is_dup_data(&self, p: usize, seq: u64) -> bool {
        self.peers[p]
            .as_ref()
            .expect("no peer")
            .rx_data_high
            .is_some_and(|h| seq <= h)
    }

    /// Record the arrival of data-stream sequence `seq` from peer `p`.
    fn note_data_seq(&mut self, p: usize, seq: u64) {
        let peer = self.peers[p].as_mut().expect("no peer");
        peer.rx_data_high = Some(peer.rx_data_high.map_or(seq, |h| h.max(seq)));
    }

    fn handle_packet(&mut self, ctx: &mut Ctx, p: usize, hdr: PacketHeader, slot_base: u64) {
        if ctx.has_trace() {
            ctx.trace(&format!(
                "rank{} <- rank{p}: {:?} seq={} len={}",
                self.rank, hdr.kind, hdr.seq, hdr.len
            ));
        }
        let rank = self.rank;
        self.trace.record(|| TraceEvent::PacketRx {
            at: rank,
            from: p,
            kind: hdr.kind,
            seq: hdr.seq,
            len: hdr.len,
        });
        if let Some((src, dst)) = self.msg_id(hdr.kind, p, false) {
            self.msg_life(ctx, src, dst, hdr.seq, MsgStage::Wire, hdr.len);
        }
        match hdr.kind {
            PacketKind::Credit => {
                self.trace.record(|| TraceEvent::CreditApply {
                    at: rank,
                    from: p,
                    consumed: hdr.len,
                });
                let peer = self.peers[p].as_mut().expect("no peer");
                peer.out_consumed = peer.out_consumed.max(hdr.len);
                // Prune replayed-handshake answers the peer has resolved.
                // `seq`/`addr` carry the peer's resolution watermarks (see
                // `credit_header`); ring FIFO guarantees any still-replayable
                // duplicate RTS/RTR was processed before this credit, so
                // dropping entries below the watermarks is safe. Zeros (old
                // peers, bootstrap) prune nothing.
                let before = peer.served_done.len() + peer.served_dw.len();
                peer.served_done.retain(|&seq, _| seq >= hdr.seq);
                peer.served_dw.retain(|&seq, _| seq >= hdr.addr);
                let after = peer.served_done.len() + peer.served_dw.len();
                self.stats.replay_pruned += (before - after) as u64;
            }
            PacketKind::Eager => {
                if self.is_dup_data(p, hdr.seq) {
                    return;
                }
                self.note_data_seq(p, hdr.seq);
                if self.dead_rx.remove(&(p, hdr.seq)) {
                    // The matching receive already failed (its RTR write
                    // died); the payload has nowhere to go.
                    return;
                }
                match self.match_posted(hdr.src_rank, hdr.tag, hdr.seq) {
                    Some(idx) => {
                        let mut posted = self.recv_q.remove(idx);
                        // Eager mis-prediction into an RTR-coupled receive:
                        // the advertised buffer is no longer an RDMA target.
                        if let Some(l) = posted.rtr_lease.take() {
                            self.mr_cache.release(ctx, &self.res, l);
                        }
                        self.msg_life(ctx, p, rank, hdr.seq, MsgStage::Match, hdr.len);
                        self.deliver_eager_to(ctx, &posted, &hdr, p, slot_base);
                        self.after_match(ctx, posted.seq.is_none(), hdr.src_rank, hdr.seq);
                    }
                    None => {
                        // Copy out so the slot can be reused (unexpected
                        // message queue). Recycled buffers come back via
                        // `payload_pool` when the message is consumed. A
                        // stashed SRQ payload is already off-slot: adopt
                        // its buffer directly.
                        let cluster = self.res.cluster().clone();
                        let data = match self.srq_inline.take() {
                            Some(data) => data,
                            None => {
                                let src_buf = self.in_slot_buf(p);
                                let mut data = self.payload_pool.pop().unwrap_or_default();
                                debug_assert!(data.is_empty(), "pooled buffer returned dirty");
                                data.resize(hdr.len as usize, 0);
                                cluster.read(&src_buf, slot_base + HEADER_LEN, &mut data);
                                data
                            }
                        };
                        ctx.sleep(cluster.copy_duration(self.res.mem().domain, hdr.len));
                        self.unexpected.push(Unexpected::Eager {
                            src: hdr.src_rank,
                            tag: hdr.tag,
                            seq: hdr.seq,
                            data,
                        });
                        self.msg_life(ctx, p, rank, hdr.seq, MsgStage::UnexpStash, hdr.len);
                    }
                }
            }
            PacketKind::Rts => {
                if self.is_dup_data(p, hdr.seq) {
                    // Re-issued handshake. If we already answered it
                    // (DONE or NACK), replay the answer — the original
                    // may have been what got lost; otherwise the first
                    // copy is still being served and the dup is dropped.
                    let answer = self.peers[p]
                        .as_ref()
                        .expect("no peer")
                        .served_done
                        .get(&hdr.seq)
                        .cloned();
                    if let Some(ans) = answer {
                        let (akind, aseq) = (ans.kind, ans.seq);
                        self.trace.record(|| TraceEvent::Retrans {
                            from: rank,
                            to: p,
                            kind: akind,
                            seq: aseq,
                        });
                        self.send_ctrl(ctx, p, ans);
                    }
                    return;
                }
                self.note_data_seq(p, hdr.seq);
                if self.dead_rx.remove(&(p, hdr.seq)) {
                    // The matching receive failed (its RTR write died):
                    // answer negatively so the sender resolves too.
                    let nack =
                        PacketHeader::control(PacketKind::Nack, self.rank, hdr.tag, hdr.seq, 0);
                    if let Some(peer) = self.peers[p].as_mut() {
                        peer.served_done.insert(hdr.seq, nack);
                    }
                    self.send_ctrl(ctx, p, nack);
                    return;
                }
                match self.match_posted(hdr.src_rank, hdr.tag, hdr.seq) {
                    Some(idx) => {
                        let posted = self.recv_q.remove(idx);
                        let was_any = posted.seq.is_none();
                        self.msg_life(ctx, p, rank, hdr.seq, MsgStage::Match, hdr.len);
                        self.start_rndv_read(ctx, posted, &hdr);
                        self.after_match(ctx, was_any, hdr.src_rank, hdr.seq);
                    }
                    None => {
                        self.unexpected.push(Unexpected::Rts { hdr });
                        self.msg_life(ctx, p, rank, hdr.seq, MsgStage::UnexpStash, hdr.len);
                    }
                }
            }
            PacketKind::Rtr => {
                // Find the send awaiting this sequence id.
                let awaiting = self.reqs.iter().find_map(|(id, st)| match st {
                    ReqState::RndvSendAwaitDone { dst, seq, .. }
                        if *dst == hdr.src_rank && *seq == hdr.seq =>
                    {
                        Some(id)
                    }
                    _ => None,
                });
                if awaiting.is_some() {
                    // Simultaneous send/receive: "The sender will disregard
                    // the RTR and still wait for the receiver's RDMA read."
                    return;
                }
                // A re-issued RTR for a write we already answered
                // (DONE-WRITE or NACK-WRITE): replay the answer.
                let answer = self.peers[p]
                    .as_ref()
                    .expect("no peer")
                    .served_dw
                    .get(&hdr.seq)
                    .cloned();
                if let Some(ans) = answer {
                    let (akind, aseq) = (ans.kind, ans.seq);
                    self.trace.record(|| TraceEvent::Retrans {
                        from: rank,
                        to: p,
                        kind: akind,
                        seq: aseq,
                    });
                    self.send_ctrl(ctx, p, ans);
                    return;
                }
                // A re-issued RTR whose first copy already started our
                // RDMA write: the answer is coming, drop the dup.
                let writing = self.reqs.iter().any(|(_, st)| {
                    matches!(st, ReqState::RndvSendWriting { dst, seq, .. }
                        if *dst == p && *seq == hdr.seq)
                });
                if writing {
                    return;
                }
                // Completed or eager-satisfied sends: drop ("the sender
                // drops the RTR packet ... thanks to the sequence id").
                let peer = self.peers[p].as_mut().expect("no peer");
                if hdr.seq >= peer.tx_seq {
                    // Send not posted yet: receiver-first, stash for later
                    // (a re-issued RTR must not stash twice).
                    if !peer.stashed_rtrs.iter().any(|r| r.seq == hdr.seq) {
                        peer.stashed_rtrs.push(hdr);
                    }
                } else {
                    self.stats.stale_rtrs_dropped += 1;
                    self.trace.record(|| TraceEvent::StaleRtrDrop {
                        rank,
                        from: p,
                        seq: hdr.seq,
                    });
                }
            }
            PacketKind::Done => {
                // Sender-first: the receiver finished its RDMA READ;
                // completes our RndvSendAwaitDone with this id.
                let sender_req = self.reqs.iter().find_map(|(id, st)| match st {
                    ReqState::RndvSendAwaitDone { dst, seq, .. }
                        if *dst == hdr.src_rank && *seq == hdr.seq =>
                    {
                        Some(id)
                    }
                    _ => None,
                });
                if let Some(id) = sender_req {
                    if let Some(ReqState::RndvSendAwaitDone { status, lease, .. }) =
                        self.reqs.replace(id, ReqState::RecvAwaitDone)
                    {
                        self.close_span(ctx, id);
                        self.release_send_lease(ctx, lease);
                        self.reqs.replace(id, ReqState::Done(status));
                        self.msg_life(ctx, rank, p, hdr.seq, MsgStage::Complete, hdr.len);
                        self.note_watchdog_resolved();
                    }
                }
            }
            PacketKind::DoneWrite => {
                // Receiver-first: the sender finished its RDMA WRITE into
                // our advertised buffer; completes our RecvAwaitDone.
                let recv_idx = self.recv_q.iter().position(|r| {
                    r.rtr_sent
                        && r.seq == Some(hdr.seq)
                        && matches!(r.src, Src::Rank(s) if s == hdr.src_rank)
                });
                if let Some(idx) = recv_idx {
                    let mut posted = self.recv_q.remove(idx);
                    if let Some(l) = posted.rtr_lease.take() {
                        self.mr_cache.release(ctx, &self.res, l);
                    }
                    let completed = hdr.len <= posted.buf.len;
                    let state = if hdr.len > posted.buf.len {
                        // Sender had more data than our buffer: MPI error.
                        ReqState::Failed(MpiError::Truncated {
                            got: hdr.len,
                            capacity: posted.buf.len,
                        })
                    } else {
                        self.stats.bytes_received += hdr.len;
                        ReqState::Done(Status {
                            source: hdr.src_rank,
                            tag: hdr.tag,
                            len: hdr.len,
                        })
                    };
                    self.reqs.replace(posted.req, state);
                    if completed {
                        self.msg_life(ctx, p, rank, hdr.seq, MsgStage::Complete, hdr.len);
                    }
                    self.note_watchdog_resolved();
                }
            }
            PacketKind::NackSend => {
                // The sender's EAGER or RTS for this seq died; whatever
                // receive was (or will be) paired with it must fail
                // instead of waiting forever. Occupies the dead packet's
                // slot in the data stream, keeping later seqs matchable.
                if self.is_dup_data(p, hdr.seq) {
                    return;
                }
                self.note_data_seq(p, hdr.seq);
                if self.dead_rx.remove(&(p, hdr.seq)) {
                    return; // both ends already failed this transfer
                }
                match self.match_posted(hdr.src_rank, hdr.tag, hdr.seq) {
                    Some(idx) => {
                        let mut posted = self.recv_q.remove(idx);
                        if let Some(l) = posted.rtr_lease.take() {
                            self.mr_cache.release(ctx, &self.res, l);
                        }
                        let was_any = posted.seq.is_none();
                        self.reqs.replace(
                            posted.req,
                            ReqState::Failed(MpiError::RemoteTransport {
                                peer: hdr.src_rank,
                                seq: hdr.seq,
                            }),
                        );
                        self.after_match(ctx, was_any, hdr.src_rank, hdr.seq);
                    }
                    None => self.unexpected.push(Unexpected::Nack {
                        src: hdr.src_rank,
                        tag: hdr.tag,
                        seq: hdr.seq,
                    }),
                }
            }
            PacketKind::Nack => {
                // Negative DONE: the receiver could not complete its RDMA
                // READ (or its receive was already dead). Fails our send.
                let sender_req = self.reqs.iter().find_map(|(id, st)| match st {
                    ReqState::RndvSendAwaitDone { dst, seq, .. }
                        if *dst == hdr.src_rank && *seq == hdr.seq =>
                    {
                        Some(id)
                    }
                    _ => None,
                });
                if let Some(id) = sender_req {
                    self.close_span(ctx, id);
                    if let Some(ReqState::RndvSendAwaitDone { lease, .. }) = self.reqs.replace(
                        id,
                        ReqState::Failed(MpiError::RemoteTransport {
                            peer: hdr.src_rank,
                            seq: hdr.seq,
                        }),
                    ) {
                        self.release_send_lease(ctx, lease);
                    }
                    self.note_watchdog_resolved();
                }
            }
            PacketKind::NackWrite => {
                // Negative DONE-WRITE: the sender's RDMA WRITE into our
                // advertised buffer failed. Fails our receive.
                let recv_idx = self.recv_q.iter().position(|r| {
                    r.rtr_sent
                        && r.seq == Some(hdr.seq)
                        && matches!(r.src, Src::Rank(s) if s == hdr.src_rank)
                });
                if let Some(idx) = recv_idx {
                    let mut posted = self.recv_q.remove(idx);
                    if let Some(l) = posted.rtr_lease.take() {
                        self.mr_cache.release(ctx, &self.res, l);
                    }
                    self.reqs.replace(
                        posted.req,
                        ReqState::Failed(MpiError::RemoteTransport {
                            peer: hdr.src_rank,
                            seq: hdr.seq,
                        }),
                    );
                    self.note_watchdog_resolved();
                }
            }
        }
    }

    /// A rendezvous handshake with an armed watchdog just resolved: its
    /// heap entry is now dead weight. Report it so `pump_rndv_timeouts`
    /// can compact once dead entries dominate.
    fn note_watchdog_resolved(&mut self) {
        if self.cfg.rndv_timeout.is_some() {
            self.rndv_timeouts.note_cancel();
        }
    }

    /// Account a *pairing*: sequence id `seq` of peer `p`'s stream has
    /// been consumed by a receive. Only pairings may advance the receive
    /// counter — bumping on mere packet arrival would make later-posted
    /// receives skip ids and fall out of step with the sender's counter.
    fn note_rx_seq(&mut self, p: usize, seq: u64) {
        let peer = self.peers[p].as_mut().expect("no peer");
        peer.rx_seq = peer.rx_seq.max(seq + 1);
    }

    /// Match an inbound data packet against the posted-receive queue,
    /// honouring the any-source sequence lock: scanning stops at the first
    /// unassigned entry unless that entry itself matches.
    fn match_posted(&self, src: Rank, tag: Tag, seq: u64) -> Option<usize> {
        for (i, r) in self.recv_q.iter().enumerate() {
            // Receives that already sent an RTR are *coupled to one
            // sequence id*: they only match the packet carrying that id.
            // An arriving RTS with the id is the simultaneous case (the
            // receiver switches to the sender-first RDMA read); an
            // arriving EAGER with the id is the sender-eager
            // mis-prediction (the receiver copies the data and completes;
            // the sender drops the stale RTR by sequence id). Packets for
            // *later* sends with the same (src, tag) must skip the
            // coupled receive — that's exactly what the paper's sequence
            // ids are for.
            if r.rtr_sent && r.seq != Some(seq) {
                continue;
            }
            let src_ok = match r.src {
                Src::Rank(s) => s == src,
                Src::Any => true,
            };
            let matches = src_ok && r.tag.matches(tag);
            if r.seq.is_none() {
                // The lock: this (and everything behind it) has no sequence
                // id yet. Only this entry itself may match.
                return matches.then_some(i);
            }
            if matches {
                return Some(i);
            }
        }
        None
    }

    /// Match the unexpected queue at post time.
    fn match_unexpected(&self, src: Src, tag: TagSel) -> Option<usize> {
        self.unexpected.iter().position(|u| {
            let (usrc, utag) = match u {
                Unexpected::Eager { src, tag, .. } => (*src, *tag),
                Unexpected::Rts { hdr } => (hdr.src_rank, hdr.tag),
                Unexpected::Nack { src, tag, .. } => (*src, *tag),
            };
            let src_ok = match src {
                Src::Rank(s) => s == usrc,
                Src::Any => true,
            };
            src_ok && tag.matches(utag)
        })
    }

    fn consume_unexpected(&mut self, ctx: &mut Ctx, req: u64, buf: &Buffer, u: Unexpected) {
        match u {
            Unexpected::Eager {
                src,
                tag,
                seq,
                data,
            } => {
                self.msg_life(ctx, src, self.rank, seq, MsgStage::Match, data.len() as u64);
                if data.len() as u64 > buf.len {
                    self.reqs.replace(
                        req,
                        ReqState::Failed(MpiError::Truncated {
                            got: data.len() as u64,
                            capacity: buf.len,
                        }),
                    );
                    return;
                }
                let cluster = self.res.cluster().clone();
                cluster.write(buf, 0, &data);
                ctx.sleep(cluster.copy_duration(self.res.mem().domain, data.len() as u64));
                self.msg_life(ctx, src, self.rank, seq, MsgStage::Copy, data.len() as u64);
                self.note_rx_seq(src, seq);
                self.stats.bytes_received += data.len() as u64;
                self.reqs.replace(
                    req,
                    ReqState::Done(Status {
                        source: src,
                        tag,
                        len: data.len() as u64,
                    }),
                );
                self.msg_life(
                    ctx,
                    src,
                    self.rank,
                    seq,
                    MsgStage::Complete,
                    data.len() as u64,
                );
                // Recycle the copy-out buffer for the next unexpected
                // message.
                recycle_payload(
                    &mut self.payload_pool,
                    data,
                    self.cfg.eager_threshold as usize,
                );
            }
            Unexpected::Rts { hdr } => {
                self.msg_life(
                    ctx,
                    hdr.src_rank,
                    self.rank,
                    hdr.seq,
                    MsgStage::Match,
                    hdr.len,
                );
                self.note_rx_seq(hdr.src_rank, hdr.seq);
                let posted = PostedRecv {
                    req,
                    buf: buf.clone(),
                    src: Src::Rank(hdr.src_rank),
                    tag: TagSel::Tag(hdr.tag),
                    seq: Some(hdr.seq),
                    rtr_sent: false,
                    rtr_lease: None,
                    rtr_hdr: None,
                };
                self.start_rndv_read(ctx, posted, &hdr);
            }
            Unexpected::Nack { src, seq, .. } => {
                self.note_rx_seq(src, seq);
                self.reqs.replace(
                    req,
                    ReqState::Failed(MpiError::RemoteTransport { peer: src, seq }),
                );
            }
        }
    }

    /// Copy an in-ring eager payload straight into the matched user buffer.
    fn deliver_eager_to(
        &mut self,
        ctx: &mut Ctx,
        posted: &PostedRecv,
        hdr: &PacketHeader,
        p: usize,
        slot_base: u64,
    ) {
        if hdr.len > posted.buf.len {
            self.reqs.replace(
                posted.req,
                ReqState::Failed(MpiError::Truncated {
                    got: hdr.len,
                    capacity: posted.buf.len,
                }),
            );
            return;
        }
        let cluster = self.res.cluster().clone();
        match self.srq_inline.take() {
            Some(data) => {
                // Stashed SRQ payload: already off-slot, write directly.
                cluster.write(&posted.buf, 0, &data);
                recycle_payload(
                    &mut self.payload_pool,
                    data,
                    self.cfg.ring_slot_payload as usize,
                );
            }
            None => {
                let src_buf = self.in_slot_buf(p);
                let mut data = std::mem::take(&mut self.copy_scratch);
                data.clear();
                data.resize(hdr.len as usize, 0);
                cluster.read(&src_buf, slot_base + HEADER_LEN, &mut data);
                cluster.write(&posted.buf, 0, &data);
                self.copy_scratch = data;
            }
        }
        ctx.sleep(cluster.copy_duration(self.res.mem().domain, hdr.len));
        self.msg_life(
            ctx,
            hdr.src_rank,
            self.rank,
            hdr.seq,
            MsgStage::Copy,
            hdr.len,
        );
        self.stats.bytes_received += hdr.len;
        self.reqs.replace(
            posted.req,
            ReqState::Done(Status {
                source: hdr.src_rank,
                tag: hdr.tag,
                len: hdr.len,
            }),
        );
        self.msg_life(
            ctx,
            hdr.src_rank,
            self.rank,
            hdr.seq,
            MsgStage::Complete,
            hdr.len,
        );
    }

    /// Sender-first rendezvous on the receiver: RDMA READ from the RTS
    /// buffer into the user buffer.
    fn start_rndv_read(&mut self, ctx: &mut Ctx, mut posted: PostedRecv, hdr: &PacketHeader) {
        let read_len = hdr.len.min(posted.buf.len);
        let truncated = (hdr.len > posted.buf.len).then_some(MpiError::Truncated {
            got: hdr.len,
            capacity: posted.buf.len,
        });
        // Simultaneous rendezvous reuses the pin taken for our RTR (same
        // buffer); a plain sender-first receive pins it now.
        let lease = match posted.rtr_lease.take() {
            Some(l) => l,
            None => self.mr_cache.acquire(ctx, &self.res, &posted.buf),
        };
        self.msg_life(
            ctx,
            hdr.src_rank,
            self.rank,
            hdr.seq,
            MsgStage::MrAcquire,
            read_len,
        );
        let sge = verbs::Sge {
            addr: posted.buf.addr,
            len: read_len,
            lkey: lease.mr().key(),
        };
        let status = Status {
            source: hdr.src_rank,
            tag: hdr.tag,
            len: read_len,
        };
        self.reqs.replace(
            posted.req,
            ReqState::RndvRecvReading {
                src: hdr.src_rank,
                seq: hdr.seq,
                status,
                truncated,
                lease,
            },
        );
        let req = posted.req;
        self.open_span(ctx, Phase::RndvRead, req, read_len, hdr.src_rank);
        let wr = SendWr::rdma_read(0, sge, hdr.addr, MrKey(hdr.rkey));
        self.post_tracked(ctx, hdr.src_rank, wr, WrKind::RndvRead { req });
        self.msg_life(
            ctx,
            hdr.src_rank,
            self.rank,
            hdr.seq,
            MsgStage::RdmaStart,
            read_len,
        );
    }

    /// After matching an any-source receive, assign sequence ids to the
    /// receives it was locking, fire deferred RTRs and recheck the
    /// unexpected queue ("all the sequences locked will be unlocked and
    /// later receive requests can also get their ids").
    fn after_match(&mut self, ctx: &mut Ctx, was_any_lock: bool, src: Rank, seq: u64) {
        if !was_any_lock {
            return;
        }
        // The any-source receive consumed `seq` of `src`'s stream ("the
        // MPI ANY SOURCE request will get its sequence id when it first
        // meets the matching packet").
        self.note_rx_seq(src, seq);
        let mut i = 0;
        while i < self.recv_q.len() {
            if self.recv_q[i].seq.is_some() {
                i += 1;
                continue;
            }
            match self.recv_q[i].src {
                Src::Any => break, // the next any-source lock takes over
                Src::Rank(s) => {
                    let q = {
                        let peer = self.peers[s].as_mut().expect("no peer");
                        let q = peer.rx_seq;
                        peer.rx_seq += 1;
                        q
                    };
                    self.recv_q[i].seq = Some(q);
                    // Re-check the unexpected queue for this receive.
                    let (rsrc, rtag) = (self.recv_q[i].src, self.recv_q[i].tag);
                    if let Some(uidx) = self.match_unexpected(rsrc, rtag) {
                        let posted = self.recv_q.remove(i);
                        let u = self.unexpected.remove(uidx);
                        let req = posted.req;
                        let buf = posted.buf.clone();
                        self.consume_unexpected(ctx, req, &buf, u);
                        continue; // don't advance: entry removed
                    }
                    // Deferred receiver-first initiation.
                    if self.recv_q[i].buf.len > self.cfg.eager_threshold {
                        let mut posted = self.recv_q.remove(i);
                        self.send_rtr(ctx, s, q, &mut posted);
                        self.recv_q.insert(i, posted);
                    }
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_payload_buffers_come_back_empty() {
        let mut pool = Vec::new();
        let mut data = vec![0xAAu8; 128];
        data.reserve(64);
        recycle_payload(&mut pool, data, 8 << 10);
        assert_eq!(pool.len(), 1);
        assert!(pool[0].is_empty(), "stale bytes must not survive pooling");
        assert!(pool[0].capacity() >= 128, "capacity is what gets reused");
    }

    #[test]
    fn oversized_payload_buffers_are_dropped_not_pooled() {
        let mut pool = Vec::new();
        // A jumbo one-off: its high-water capacity must not be pinned.
        recycle_payload(&mut pool, vec![1u8; 1 << 20], 8 << 10);
        assert!(pool.is_empty(), "over-threshold capacity must be dropped");
        // At-threshold buffers are kept.
        recycle_payload(&mut pool, Vec::with_capacity(8 << 10), 8 << 10);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn payload_pool_is_capped() {
        let mut pool = Vec::new();
        for _ in 0..2 * PAYLOAD_POOL_CAP {
            recycle_payload(&mut pool, vec![7u8; 16], 8 << 10);
        }
        assert_eq!(pool.len(), PAYLOAD_POOL_CAP);
    }
}
