//! Derived datatypes (contiguous, strided vector, indexed) with pack /
//! unpack through a staging buffer.
//!
//! The paper lists "communication using user defined data types" as future
//! work to be offloaded to the host CPU (§VI); this module implements the
//! datatype layer itself: non-contiguous layouts are packed into a
//! contiguous staging buffer (charged at the local memcpy rate) and sent
//! with the ordinary byte path — the classic YAMPII-era design. Column
//! halos of a 2-D grid are the motivating case (see the
//! `column_halo` example).

use fabric::Buffer;
use simcore::Ctx;

use crate::comm::Communicator;
use crate::types::{MpiError, Rank, Src, Status, Tag, TagSel};

/// A data layout over a base buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    /// `len` contiguous bytes starting at `offset`.
    Contiguous { offset: u64, len: u64 },
    /// `count` blocks of `block_len` bytes, the start of consecutive
    /// blocks `stride` bytes apart (`stride >= block_len`). An `MPI_Type_vector`
    /// in byte units — e.g. one matrix column.
    Vector {
        offset: u64,
        count: u64,
        block_len: u64,
        stride: u64,
    },
    /// Arbitrary `(offset, len)` blocks (an `MPI_Type_indexed`).
    Indexed { blocks: Vec<(u64, u64)> },
}

impl Layout {
    /// One matrix column of `rows` elements of `elem` bytes in a
    /// row-major `rows x cols` matrix.
    pub fn column(col: u64, rows: u64, cols: u64, elem: u64) -> Layout {
        Layout::Vector {
            offset: col * elem,
            count: rows,
            block_len: elem,
            stride: cols * elem,
        }
    }

    /// Total packed size in bytes.
    pub fn packed_len(&self) -> u64 {
        match self {
            Layout::Contiguous { len, .. } => *len,
            Layout::Vector {
                count, block_len, ..
            } => count * block_len,
            Layout::Indexed { blocks } => blocks.iter().map(|(_, l)| l).sum(),
        }
    }

    /// Extent: bytes of the base buffer the layout touches.
    pub fn extent(&self) -> u64 {
        match self {
            Layout::Contiguous { offset, len } => offset + len,
            Layout::Vector {
                offset,
                count,
                block_len,
                stride,
            } => {
                if *count == 0 {
                    *offset
                } else {
                    offset + (count - 1) * stride + block_len
                }
            }
            Layout::Indexed { blocks } => blocks.iter().map(|(o, l)| o + l).max().unwrap_or(0),
        }
    }

    /// Validate against a base buffer.
    pub fn check(&self, base: &Buffer) {
        if let Layout::Vector {
            block_len, stride, ..
        } = self
        {
            assert!(stride >= block_len, "overlapping vector blocks");
        }
        assert!(self.extent() <= base.len, "layout exceeds base buffer");
    }

    /// Visit each `(offset, len)` block in order.
    fn for_each_block(&self, mut f: impl FnMut(u64, u64)) {
        match self {
            Layout::Contiguous { offset, len } => f(*offset, *len),
            Layout::Vector {
                offset,
                count,
                block_len,
                stride,
            } => {
                for i in 0..*count {
                    f(offset + i * stride, *block_len);
                }
            }
            Layout::Indexed { blocks } => {
                for (o, l) in blocks {
                    f(*o, *l);
                }
            }
        }
    }
}

/// Pack `layout` of `base` into contiguous `stage` (which must hold
/// `layout.packed_len()` bytes). Charges the local memcpy rate.
pub fn pack<C: Communicator>(
    ctx: &mut Ctx,
    comm: &C,
    base: &Buffer,
    layout: &Layout,
    stage: &Buffer,
) {
    layout.check(base);
    let need = layout.packed_len();
    assert!(stage.len >= need, "staging buffer too small");
    let cl = comm.cluster().clone();
    let mut cursor = 0u64;
    layout.for_each_block(|off, len| {
        let mut tmp = vec![0u8; len as usize];
        cl.read(base, off, &mut tmp);
        cl.write(stage, cursor, &tmp);
        cursor += len;
    });
    let d = cl.copy_duration(comm.mem().domain, need);
    ctx.sleep(d);
}

/// Unpack contiguous `stage` into `layout` of `base`.
pub fn unpack<C: Communicator>(
    ctx: &mut Ctx,
    comm: &C,
    stage: &Buffer,
    layout: &Layout,
    base: &Buffer,
) {
    layout.check(base);
    let need = layout.packed_len();
    assert!(stage.len >= need, "staging buffer too small");
    let cl = comm.cluster().clone();
    let mut cursor = 0u64;
    layout.for_each_block(|off, len| {
        let mut tmp = vec![0u8; len as usize];
        cl.read(stage, cursor, &mut tmp);
        cl.write(base, off, &tmp);
        cursor += len;
    });
    let d = cl.copy_duration(comm.mem().domain, need);
    ctx.sleep(d);
}

/// Typed send: pack + send. Allocates (and frees) a staging buffer.
pub fn send_typed<C: Communicator>(
    ctx: &mut Ctx,
    comm: &mut C,
    base: &Buffer,
    layout: &Layout,
    dst: Rank,
    tag: Tag,
) -> Result<(), MpiError> {
    let stage = comm
        .cluster()
        .alloc_pages(comm.mem(), layout.packed_len().max(1))
        .map_err(|_| MpiError::OutOfMemory)?;
    pack(ctx, comm, base, layout, &stage);
    let r = comm.send(ctx, &stage, dst, tag);
    comm.cluster().free(&stage);
    r
}

/// Typed receive: receive + unpack. The incoming message must be exactly
/// `layout.packed_len()` bytes (or shorter).
pub fn recv_typed<C: Communicator>(
    ctx: &mut Ctx,
    comm: &mut C,
    base: &Buffer,
    layout: &Layout,
    src: Src,
    tag: TagSel,
) -> Result<Status, MpiError> {
    let stage = comm
        .cluster()
        .alloc_pages(comm.mem(), layout.packed_len().max(1))
        .map_err(|_| MpiError::OutOfMemory)?;
    let st = comm.recv(ctx, &stage, src, tag)?;
    unpack(ctx, comm, &stage, layout, base);
    comm.cluster().free(&stage);
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_and_extent() {
        let c = Layout::Contiguous {
            offset: 8,
            len: 100,
        };
        assert_eq!(c.packed_len(), 100);
        assert_eq!(c.extent(), 108);

        let v = Layout::Vector {
            offset: 0,
            count: 4,
            block_len: 8,
            stride: 32,
        };
        assert_eq!(v.packed_len(), 32);
        assert_eq!(v.extent(), 3 * 32 + 8);

        let i = Layout::Indexed {
            blocks: vec![(0, 4), (100, 8)],
        };
        assert_eq!(i.packed_len(), 12);
        assert_eq!(i.extent(), 108);
    }

    #[test]
    fn column_layout() {
        // 4x3 matrix of f64, column 1.
        let l = Layout::column(1, 4, 3, 8);
        assert_eq!(l.packed_len(), 32);
        assert_eq!(l.extent(), 8 + 3 * 24 + 8);
    }

    #[test]
    fn empty_vector_extent() {
        let v = Layout::Vector {
            offset: 16,
            count: 0,
            block_len: 8,
            stride: 32,
        };
        assert_eq!(v.packed_len(), 0);
        assert_eq!(v.extent(), 16);
    }

    #[test]
    #[should_panic(expected = "overlapping vector blocks")]
    fn overlapping_stride_rejected() {
        let base = Buffer {
            mem: fabric::MemRef {
                node: fabric::NodeId(0),
                domain: fabric::Domain::Host,
            },
            addr: 0,
            len: 1024,
        };
        Layout::Vector {
            offset: 0,
            count: 2,
            block_len: 16,
            stride: 8,
        }
        .check(&base);
    }
}
