//! Collective operations built on the point-to-point layer, generic over
//! [`Communicator`] so they run identically over DCFA-MPI and the baseline
//! models. Algorithms are the classic ones a YAMPII-era MPI would ship:
//! dissemination barrier, binomial-tree broadcast/reduce, ring allgather
//! and pairwise alltoall.

use fabric::Buffer;
use simcore::Ctx;

use crate::comm::Communicator;
use crate::types::{Datatype, MpiError, Rank, ReduceOp, Src, Tag, TagSel};

/// Internal tag namespace for collectives (well above application tags).
const COLL_TAG: Tag = 0xF000_0000;

fn tmp(c: &impl Communicator, len: u64) -> Result<Buffer, MpiError> {
    c.cluster()
        .alloc_pages(c.mem(), len.max(1))
        .map_err(|_| MpiError::OutOfMemory)
}

/// Dissemination barrier: ceil(log2(n)) rounds of 1-byte exchanges.
pub fn barrier(c: &mut impl Communicator, ctx: &mut Ctx) -> Result<(), MpiError> {
    let n = c.size();
    if n <= 1 {
        return Ok(());
    }
    let me = c.rank();
    let token = tmp(c, 1)?;
    let sink = tmp(c, 1)?;
    let mut k = 0u32;
    let mut dist = 1usize;
    while dist < n {
        let dst = (me + dist) % n;
        let src = (me + n - dist % n) % n;
        let rr = c.irecv(ctx, &sink, Src::Rank(src), TagSel::Tag(COLL_TAG + k))?;
        let sr = c.isend(ctx, &token, dst, COLL_TAG + k)?;
        c.wait(ctx, sr)?;
        c.wait(ctx, rr)?;
        dist *= 2;
        k += 1;
    }
    c.cluster().free(&token);
    c.cluster().free(&sink);
    Ok(())
}

/// Binomial-tree broadcast of `buf` from `root`.
pub fn bcast(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    buf: &Buffer,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    if n <= 1 {
        return Ok(());
    }
    // Rotate so the root is virtual rank 0.
    let me = (c.rank() + n - root) % n;
    let mut mask = 1usize;
    // Receive phase: find our parent.
    while mask < n {
        if me & mask != 0 {
            let parent = (me - mask + root) % n;
            c.recv(ctx, buf, Src::Rank(parent), TagSel::Tag(COLL_TAG + 64))?;
            break;
        }
        mask *= 2;
    }
    // Send phase: fan out below our bit.
    mask /= 2;
    while mask > 0 {
        if me + mask < n {
            let child = (me + mask + root) % n;
            c.send(ctx, buf, child, COLL_TAG + 64)?;
        }
        mask /= 2;
    }
    Ok(())
}

/// Binomial-tree reduction of `buf` (in place on `root`; all ranks' `buf`
/// contents are combined elementwise with `op`). Non-root buffers are
/// clobbered with partial results.
pub fn reduce(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    buf: &Buffer,
    dtype: Datatype,
    op: ReduceOp,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    if n <= 1 {
        return Ok(());
    }
    let me = (c.rank() + n - root) % n;
    let scratch = tmp(c, buf.len)?;
    let mut mask = 1usize;
    while mask < n {
        if me & mask != 0 {
            // Send our partial to the parent and stop.
            let parent = (me - mask + root) % n;
            c.send(ctx, buf, parent, COLL_TAG + 65)?;
            break;
        }
        let child = me + mask;
        if child < n {
            let child_rank = (child + root) % n;
            c.recv(
                ctx,
                &scratch,
                Src::Rank(child_rank),
                TagSel::Tag(COLL_TAG + 65),
            )?;
            // Combine: read both, apply, write back. Charge the memcpy-rate
            // cost of touching both operands.
            let mut a = c.cluster().read_vec(buf);
            let b = c.cluster().read_vec(&scratch);
            op.apply(dtype, &mut a, &b);
            c.cluster().write(buf, 0, &a);
            let d = c.cluster().copy_duration(c.mem().domain, buf.len * 2);
            ctx.sleep(d);
        }
        mask *= 2;
    }
    c.cluster().free(&scratch);
    Ok(())
}

/// Allreduce = reduce to rank 0 + broadcast.
pub fn allreduce(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    buf: &Buffer,
    dtype: Datatype,
    op: ReduceOp,
) -> Result<(), MpiError> {
    reduce(c, ctx, buf, dtype, op, 0)?;
    bcast(c, ctx, buf, 0)
}

/// Gather equal-size blocks to `root`. `recv` must be `n * send.len` long
/// on the root (ignored elsewhere; pass `None`).
pub fn gather(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: &Buffer,
    recv: Option<&Buffer>,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    let me = c.rank();
    if me == root {
        let recv = recv.expect("root needs a receive buffer");
        assert!(recv.len >= send.len * n as u64, "gather buffer too small");
        // Own block.
        let mine = c.cluster().read_vec(send);
        c.cluster().write(recv, root as u64 * send.len, &mine);
        for p in 0..n {
            if p == root {
                continue;
            }
            let slot = recv.slice(p as u64 * send.len, send.len);
            c.recv(ctx, &slot, Src::Rank(p), TagSel::Tag(COLL_TAG + 66))?;
        }
        Ok(())
    } else {
        c.send(ctx, send, root, COLL_TAG + 66)
    }
}

/// Scatter equal-size blocks from `root`. On the root, `send` holds
/// `n * recv.len` bytes.
pub fn scatter(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: Option<&Buffer>,
    recv: &Buffer,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    let me = c.rank();
    if me == root {
        let send = send.expect("root needs a send buffer");
        assert!(send.len >= recv.len * n as u64, "scatter buffer too small");
        for p in 0..n {
            let slot = send.slice(p as u64 * recv.len, recv.len);
            if p == root {
                let mine = c.cluster().read_vec(&slot);
                c.cluster().write(recv, 0, &mine);
            } else {
                c.send(ctx, &slot, p, COLL_TAG + 67)?;
            }
        }
        Ok(())
    } else {
        c.recv(ctx, recv, Src::Rank(root), TagSel::Tag(COLL_TAG + 67))
            .map(|_| ())
    }
}

/// Ring allgather: every rank contributes `send` and ends with all blocks
/// concatenated (rank-major) in `recv` (`n * send.len` bytes).
pub fn allgather(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: &Buffer,
    recv: &Buffer,
) -> Result<(), MpiError> {
    let n = c.size();
    let me = c.rank();
    let blk = send.len;
    assert!(recv.len >= blk * n as u64, "allgather buffer too small");
    let mine = c.cluster().read_vec(send);
    c.cluster().write(recv, me as u64 * blk, &mine);
    if n == 1 {
        return Ok(());
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    // In round k we forward the block that originated k hops to our left.
    for k in 0..n - 1 {
        let send_block = (me + n - k) % n;
        let recv_block = (me + n - k - 1) % n;
        let sb = recv.slice(send_block as u64 * blk, blk);
        let rb = recv.slice(recv_block as u64 * blk, blk);
        let rr = c.irecv(
            ctx,
            &rb,
            Src::Rank(left),
            TagSel::Tag(COLL_TAG + 68 + k as u32),
        )?;
        let sr = c.isend(ctx, &sb, right, COLL_TAG + 68 + k as u32)?;
        c.wait(ctx, sr)?;
        c.wait(ctx, rr)?;
    }
    Ok(())
}

/// Inclusive prefix reduction (`MPI_Scan`): rank r ends with the
/// combination of ranks 0..=r. Linear chain.
pub fn scan(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    buf: &Buffer,
    dtype: Datatype,
    op: ReduceOp,
) -> Result<(), MpiError> {
    let n = c.size();
    let me = c.rank();
    if me > 0 {
        let scratch = tmp(c, buf.len)?;
        c.recv(ctx, &scratch, Src::Rank(me - 1), TagSel::Tag(COLL_TAG + 90))?;
        let mut a = c.cluster().read_vec(buf);
        let b = c.cluster().read_vec(&scratch);
        // Combine prefix-from-left INTO our value, preserving order
        // semantics (prefix op value).
        let mut combined = b.clone();
        op.apply(dtype, &mut combined, &a);
        a = combined;
        c.cluster().write(buf, 0, &a);
        let d = c.cluster().copy_duration(c.mem().domain, buf.len * 2);
        ctx.sleep(d);
        c.cluster().free(&scratch);
    }
    if me + 1 < n {
        c.send(ctx, buf, me + 1, COLL_TAG + 90)?;
    }
    Ok(())
}

/// Gather variable-size blocks to `root` (`MPI_Gatherv`). `counts[p]` is
/// the byte count contributed by rank `p`; on the root, `recv` holds the
/// blocks packed back-to-back in rank order.
#[allow(clippy::needless_range_loop)]
pub fn gatherv(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: &Buffer,
    recv: Option<&Buffer>,
    counts: &[u64],
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    assert_eq!(counts.len(), n, "one count per rank");
    let me = c.rank();
    assert!(send.len >= counts[me], "send buffer smaller than my count");
    if me == root {
        let recv = recv.expect("root needs a receive buffer");
        let total: u64 = counts.iter().sum();
        assert!(recv.len >= total, "gatherv buffer too small");
        let mut off = 0u64;
        for p in 0..n {
            if counts[p] > 0 {
                let slot = recv.slice(off, counts[p]);
                if p == root {
                    let mine = c.cluster().read_vec(&send.slice(0, counts[p]));
                    c.cluster().write(&slot, 0, &mine);
                } else {
                    c.recv(ctx, &slot, Src::Rank(p), TagSel::Tag(COLL_TAG + 70))?;
                }
            }
            off += counts[p];
        }
        Ok(())
    } else if counts[me] > 0 {
        c.send(ctx, &send.slice(0, counts[me]), root, COLL_TAG + 70)
    } else {
        Ok(())
    }
}

/// Scatter variable-size blocks from `root` (`MPI_Scatterv`).
#[allow(clippy::needless_range_loop)]
pub fn scatterv(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: Option<&Buffer>,
    recv: &Buffer,
    counts: &[u64],
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    assert_eq!(counts.len(), n, "one count per rank");
    let me = c.rank();
    assert!(recv.len >= counts[me], "recv buffer smaller than my count");
    if me == root {
        let send = send.expect("root needs a send buffer");
        let total: u64 = counts.iter().sum();
        assert!(send.len >= total, "scatterv buffer too small");
        let mut off = 0u64;
        for p in 0..n {
            if counts[p] > 0 {
                let slot = send.slice(off, counts[p]);
                if p == root {
                    let mine = c.cluster().read_vec(&slot);
                    c.cluster().write(recv, 0, &mine);
                } else {
                    c.send(ctx, &slot, p, COLL_TAG + 71)?;
                }
            }
            off += counts[p];
        }
        Ok(())
    } else if counts[me] > 0 {
        c.recv(
            ctx,
            &recv.slice(0, counts[me]),
            Src::Rank(root),
            TagSel::Tag(COLL_TAG + 71),
        )
        .map(|_| ())
    } else {
        Ok(())
    }
}

/// Pairwise alltoall with per-pair byte counts (`MPI_Alltoallv`).
/// `send_counts[p]` bytes go to rank `p` from offset `send_offs[p]`;
/// symmetric for the receive side. Counts must agree pairwise
/// (`my send_counts[p] == p's recv_counts[me]`).
#[allow(clippy::too_many_arguments)]
pub fn alltoallv(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: &Buffer,
    send_counts: &[u64],
    send_offs: &[u64],
    recv: &Buffer,
    recv_counts: &[u64],
    recv_offs: &[u64],
) -> Result<(), MpiError> {
    let n = c.size();
    assert!(send_counts.len() == n && send_offs.len() == n);
    assert!(recv_counts.len() == n && recv_offs.len() == n);
    let me = c.rank();
    // Own block.
    if send_counts[me] > 0 {
        let mine = c
            .cluster()
            .read_vec(&send.slice(send_offs[me], send_counts[me]));
        c.cluster()
            .write(&recv.slice(recv_offs[me], recv_counts[me]), 0, &mine);
    }
    for k in 1..n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        let mut reqs = Vec::with_capacity(2);
        if recv_counts[src] > 0 {
            let rb = recv.slice(recv_offs[src], recv_counts[src]);
            reqs.push(c.irecv(
                ctx,
                &rb,
                Src::Rank(src),
                TagSel::Tag(COLL_TAG + 300 + k as u32),
            )?);
        }
        if send_counts[dst] > 0 {
            let sb = send.slice(send_offs[dst], send_counts[dst]);
            reqs.push(c.isend(ctx, &sb, dst, COLL_TAG + 300 + k as u32)?);
        }
        c.waitall(ctx, &reqs)?;
    }
    Ok(())
}

/// Pairwise-exchange alltoall: `send` and `recv` hold `n` equal blocks.
pub fn alltoall(
    c: &mut impl Communicator,
    ctx: &mut Ctx,
    send: &Buffer,
    recv: &Buffer,
    blk: u64,
) -> Result<(), MpiError> {
    let n = c.size();
    let me = c.rank();
    assert!(send.len >= blk * n as u64 && recv.len >= blk * n as u64);
    // Own block.
    let mine = c.cluster().read_vec(&send.slice(me as u64 * blk, blk));
    c.cluster().write(recv, me as u64 * blk, &mine);
    for k in 1..n {
        let dst = (me + k) % n;
        let src = (me + n - k) % n;
        let sb = send.slice(dst as u64 * blk, blk);
        let rb = recv.slice(src as u64 * blk, blk);
        let rr = c.irecv(
            ctx,
            &rb,
            Src::Rank(src),
            TagSel::Tag(COLL_TAG + 200 + k as u32),
        )?;
        let sr = c.isend(ctx, &sb, dst, COLL_TAG + 200 + k as u32)?;
        c.wait(ctx, sr)?;
        c.wait(ctx, rr)?;
    }
    Ok(())
}
