//! Latency histograms and span-based phase profiling.
//!
//! The paper's central claims are latency claims — the Eager/Rendezvous
//! crossover, the >4× Phi→HCA DMA-read penalty, the offload-send recovery —
//! so the reproduction needs latency *distributions*, not just counters.
//! This module provides:
//!
//! * [`Histogram`] — a lock-free log₂-bucketed latency histogram. Recording
//!   touches only atomics (no locks, no allocation); snapshots are plain
//!   values that merge across ranks and answer p50/p90/p99/max queries in
//!   virtual-clock nanoseconds.
//! * [`Span`] — attributes a message's lifetime to a [`Phase`]
//!   (`EagerCopy`, `RtsWait`, `RndvRead`, …), keyed by (phase, size-class,
//!   peer). Asynchronous protocol stages open a span when the stage starts
//!   and close it when the matching completion resolves the request.
//! * [`MetricsHub`] — the shared registry a `World` hands to every rank's
//!   engine; the exporter drains it into the versioned JSON report.
//! * [`Metrics`] — the feature-gated per-engine handle, mirroring
//!   [`crate::trace::Trace`]: without the `trace` feature (or with no hub
//!   attached) every call compiles to nothing / a branch on `None`, so the
//!   disabled build stays zero-cost.
//!
//! Percentiles are computed by inverting the piecewise-linear CDF over the
//! bucket boundaries. Because every histogram shares the same knots, the
//! merged CDF is a weighted average of the parts' CDFs, which guarantees
//! that a merged percentile always lies between the parts' percentiles —
//! a property the proptests in `tests/metrics_prop.rs` pin down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::SimTime;

use crate::types::Rank;

/// Number of log₂ buckets: bucket 0 holds `[0, 2)` ns, bucket `i ≥ 1`
/// holds `[2^i, 2^(i+1))` ns, bucket 63 absorbs everything above.
pub const BUCKETS: usize = 64;

/// A profiled protocol phase. `name`/`parse` round-trip through the JSON
/// report, so renaming a variant is a schema change (bump the report
/// version in `bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Whole eager send: MPI call to remote-ring WRITE completion.
    Eager,
    /// The one copy of an eager send: user buffer → staging slot.
    EagerCopy,
    /// Sender-first rendezvous: RTS issued until DONE (or NACK) arrives.
    RtsWait,
    /// Receiver-side RDMA READ of the source buffer (sender-first rndv).
    RndvRead,
    /// Sender-side RDMA WRITE into the receiver buffer (receiver-first).
    RndvWrite,
    /// Memory registration on an MR-cache miss (Phi-side: delegated).
    MrRegister,
    /// Offloading send buffer: Phi→host twin DMA sync before the send.
    OffloadSync,
    /// One reliable command round-trip on the SCIF control channel.
    CtrlRoundtrip,
    /// Exponential backoff slept before a work-request retry.
    Backoff,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 9] = [
        Phase::Eager,
        Phase::EagerCopy,
        Phase::RtsWait,
        Phase::RndvRead,
        Phase::RndvWrite,
        Phase::MrRegister,
        Phase::OffloadSync,
        Phase::CtrlRoundtrip,
        Phase::Backoff,
    ];

    /// Stable wire name used in the JSON report.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Eager => "Eager",
            Phase::EagerCopy => "EagerCopy",
            Phase::RtsWait => "RtsWait",
            Phase::RndvRead => "RndvRead",
            Phase::RndvWrite => "RndvWrite",
            Phase::MrRegister => "MrRegister",
            Phase::OffloadSync => "OffloadSync",
            Phase::CtrlRoundtrip => "CtrlRoundtrip",
            Phase::Backoff => "Backoff",
        }
    }

    /// Inverse of [`Phase::name`] (used by the report comparator).
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Log₂ size class of a message: `0` for 0–1 bytes, else `floor(log₂ n)`.
pub fn size_class(bytes: u64) -> u8 {
    if bytes < 2 {
        0
    } else {
        (63 - bytes.leading_zeros()) as u8
    }
}

/// Histogram identity: one time series per (phase, size-class, peer).
/// `peer: None` aggregates samples that have no meaningful peer (control
/// round-trips, backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    pub phase: Phase,
    pub size_class: u8,
    pub peer: Option<Rank>,
}

/// Lock-free log₂-bucketed latency histogram. All updates are relaxed
/// atomic RMWs — concurrent recorders never block each other, and a
/// snapshot taken mid-record is merely one sample stale, never torn into
/// an impossible state (each counter is monotone).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `u64::MAX` until the first sample.
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Bucket index for a sample: `floor(log₂ v)`, with 0 and 1 sharing
    /// bucket 0 (a u64 cannot exceed bucket 63, so no clamp is needed).
    pub fn bucket_index(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Exclusive upper bound of bucket `i` (as f64 so bucket 63's bound,
    /// 2⁶⁴, is representable).
    pub fn bucket_hi(i: usize) -> f64 {
        (i as f64 + 1.0).exp2()
    }

    /// Record one latency sample in virtual-clock nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
    }

    /// One-pass snapshot. Counters are monotone, so the result is always a
    /// *valid* histogram; under concurrent recording it may lag the live
    /// counters by in-flight samples (`count` can trail the bucket sums or
    /// vice versa by the records that raced the pass).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Acquire)),
            count: self.count.load(Ordering::Acquire),
            sum: self.sum.load(Ordering::Acquire),
            max: self.max.load(Ordering::Acquire),
            min: self.min.load(Ordering::Acquire),
        }
    }
}

/// Plain-value histogram state: mergeable across ranks, queryable for
/// percentiles, serializable by the bench exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// `u64::MAX` when empty.
    pub min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Build a snapshot from raw samples (test/replay helper).
    pub fn from_samples(samples: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    /// Element-wise merge. Associative and commutative: buckets and sums
    /// add, extrema combine with min/max.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            min: self.min.min(other.min),
        }
    }

    /// The `p`-th percentile (0–100) in virtual ns, by inverting the
    /// piecewise-linear CDF over the bucket boundaries. Returns 0 for an
    /// empty histogram. The estimate is exact up to bucket resolution
    /// (relative error < 1 bucket width).
    ///
    /// The result is always clamped to the observed `[min, max]` range:
    /// within-bucket interpolation can otherwise extrapolate past any
    /// recorded sample — catastrophically so in bucket 63, whose upper
    /// bound is 2⁶⁴ — and a mid-flight snapshot whose `count` leads the
    /// bucket sums can fall off the end of the CDF entirely. A percentile
    /// of real samples can never exceed the largest one.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0).clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut raw = self.max as f64;
        for i in 0..BUCKETS {
            let c = self.buckets[i];
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lo = Histogram::bucket_lo(i) as f64;
                let hi = Histogram::bucket_hi(i);
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                raw = lo + frac * (hi - lo);
                break;
            }
            cum += c;
        }
        // `min` can still be unset (u64::MAX) in a snapshot that raced
        // `record`, and `max` can trail `min` the same way, so clamp with
        // max-then-min rather than `f64::clamp` (which panics on an
        // inverted range); when the bounds cross, the observed `max` wins.
        let lo_bound = if self.min == u64::MAX {
            0.0
        } else {
            self.min as f64
        };
        raw.max(lo_bound).min(self.max as f64)
    }

    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An open span: a protocol stage in flight. Carried in the engine's
/// open-span side table until the matching completion (or failure)
/// resolves the request — protocol stages are asynchronous, so RAII guards
/// cannot model them.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub phase: Phase,
    /// Message/request id the span is attributed to.
    pub id: u64,
    pub bytes: u64,
    pub peer: Option<Rank>,
    pub start: SimTime,
}

impl Span {
    /// Open a span on `phase` at virtual time `start`.
    pub fn begin(phase: Phase, id: u64, bytes: u64, peer: Option<Rank>, start: SimTime) -> Span {
        Span {
            phase,
            id,
            bytes,
            peer,
            start,
        }
    }

    /// Close the span, yielding its (key, elapsed-ns) sample.
    pub fn end(self, now: SimTime) -> (MetricKey, u64) {
        (
            MetricKey {
                phase: self.phase,
                size_class: size_class(self.bytes),
                peer: self.peer,
            },
            now.since(self.start).as_nanos(),
        )
    }
}

#[derive(Debug, Default)]
struct HubInner {
    hists: HashMap<MetricKey, Arc<Histogram>>,
}

/// Shared metrics registry: one per measured run, cloned into every
/// rank's engine. The map is guarded by a mutex only for histogram
/// *creation* (first sample per key); recording into an existing
/// histogram holds the lock just long enough to clone its `Arc`, and the
/// atomic update itself is lock-free.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<HubInner>>,
}

impl MetricsHub {
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Get-or-create the histogram for `key`.
    pub fn histogram(&self, key: MetricKey) -> Arc<Histogram> {
        self.inner
            .lock()
            .hists
            .entry(key)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Record one sample under (phase, size-class of `bytes`, peer).
    pub fn record(&self, phase: Phase, bytes: u64, peer: Option<Rank>, ns: u64) {
        self.record_key(
            MetricKey {
                phase,
                size_class: size_class(bytes),
                peer,
            },
            ns,
        );
    }

    pub fn record_key(&self, key: MetricKey, ns: u64) {
        self.histogram(key).record(ns);
    }

    /// Snapshot every histogram, sorted by key for deterministic output.
    pub fn snapshot(&self) -> Vec<(MetricKey, HistogramSnapshot)> {
        let mut out: Vec<(MetricKey, HistogramSnapshot)> = self
            .inner
            .lock()
            .hists
            .iter()
            .map(|(k, h)| (*k, h.snapshot()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Per-phase roll-up: all size classes and peers merged, sorted by
    /// phase, empty phases omitted.
    pub fn merged_by_phase(&self) -> Vec<(Phase, HistogramSnapshot)> {
        let mut by_phase: HashMap<Phase, HistogramSnapshot> = HashMap::new();
        for (key, snap) in self.snapshot() {
            let entry = by_phase.entry(key.phase).or_default();
            *entry = entry.merge(&snap);
        }
        let mut out: Vec<(Phase, HistogramSnapshot)> = by_phase
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .collect();
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

/// The per-engine metrics handle. Mirrors [`crate::trace::Trace`]: without
/// the `trace` feature the struct is empty and every method body compiles
/// away; with the feature but no hub attached, each call is one branch on
/// `None`. Closures defer `ctx.now()` so disabled builds never read the
/// clock.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    #[cfg(feature = "trace")]
    hub: Option<MetricsHub>,
}

impl Metrics {
    /// Attach a hub; subsequent calls record into it.
    pub fn attach(&mut self, hub: MetricsHub) {
        #[cfg(feature = "trace")]
        {
            self.hub = Some(hub);
        }
        #[cfg(not(feature = "trace"))]
        let _ = hub;
    }

    pub fn enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.hub.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Start timing a synchronous section: `Some(now)` when metrics are
    /// live, `None` (and the clock untouched) otherwise.
    #[inline]
    pub fn start(&self, now: impl FnOnce() -> SimTime) -> Option<SimTime> {
        #[cfg(feature = "trace")]
        {
            self.hub.as_ref().map(|_| now())
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = now;
            None
        }
    }

    /// Close a [`Metrics::start`] section, attributing the elapsed virtual
    /// time to `phase`. No-op if `start` was `None`.
    #[inline]
    pub fn record_since(
        &self,
        start: Option<SimTime>,
        now: impl FnOnce() -> SimTime,
        phase: Phase,
        bytes: u64,
        peer: Option<Rank>,
    ) {
        #[cfg(feature = "trace")]
        if let (Some(hub), Some(t0)) = (&self.hub, start) {
            hub.record(phase, bytes, peer, now().since(t0).as_nanos());
        }
        #[cfg(not(feature = "trace"))]
        let _ = (start, now, phase, bytes, peer);
    }

    /// Record an already-measured duration (used by the control-plane
    /// perf probe, which reports elapsed ns across the crate boundary).
    #[inline]
    pub fn record_ns(&self, phase: Phase, bytes: u64, peer: Option<Rank>, ns: u64) {
        #[cfg(feature = "trace")]
        if let Some(hub) = &self.hub {
            hub.record(phase, bytes, peer, ns);
        }
        #[cfg(not(feature = "trace"))]
        let _ = (phase, bytes, peer, ns);
    }

    /// Open a span for an asynchronous protocol stage. Returns `None`
    /// when metrics are off; the caller stores the span in its open-span
    /// table and must close it exactly once via [`Metrics::span_end`].
    #[inline]
    pub fn span_begin(
        &self,
        phase: Phase,
        id: u64,
        bytes: u64,
        peer: Option<Rank>,
        now: impl FnOnce() -> SimTime,
    ) -> Option<Span> {
        #[cfg(feature = "trace")]
        {
            self.hub
                .as_ref()
                .map(|_| Span::begin(phase, id, bytes, peer, now()))
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (phase, id, bytes, peer, now);
            None
        }
    }

    /// Close a span, recording its lifetime.
    #[inline]
    pub fn span_end(&self, span: Span, now: impl FnOnce() -> SimTime) {
        #[cfg(feature = "trace")]
        if let Some(hub) = &self.hub {
            let (key, ns) = span.end(now());
            hub.record_key(key, ns);
        }
        #[cfg(not(feature = "trace"))]
        let _ = (span, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 holds 0 and 1; bucket i ≥ 1 holds [2^i, 2^(i+1)).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(7), 2);
        assert_eq!(Histogram::bucket_index(8), 3);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        for i in 1..BUCKETS {
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1, "below bucket {i}");
        }
    }

    #[test]
    fn bucket_bounds_round_trip() {
        // [lo, hi) tiles the u64 range: each bucket's hi is the next
        // bucket's lo, lo < hi, and the bounds re-index into the bucket
        // they delimit. Bucket 63's hi is 2^64, representable only as f64
        // — the reason bucket_hi returns one.
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_hi(0), 2.0);
        for i in 0..BUCKETS {
            let (lo, hi) = (Histogram::bucket_lo(i), Histogram::bucket_hi(i));
            assert!((lo as f64) < hi, "bucket {i} is non-empty");
            assert_eq!(Histogram::bucket_index(lo), i, "lo re-indexes into {i}");
            if i + 1 < BUCKETS {
                assert_eq!(
                    hi,
                    Histogram::bucket_lo(i + 1) as f64,
                    "hi({i}) == lo({})",
                    i + 1
                );
                assert_eq!(Histogram::bucket_index(hi as u64), i + 1, "hi is exclusive");
            } else {
                assert_eq!(hi, 2.0f64.powi(64), "last bucket's bound is 2^64");
            }
        }
    }

    #[test]
    fn record_and_snapshot_basics() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_011);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.buckets[0], 2); // 0, 1
        assert_eq!(s.buckets[2], 2); // 5, 5
        assert_eq!(s.buckets[9], 1); // 1000
        assert_eq!(s.buckets[19], 1); // 1_000_000
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn empty_snapshot() {
        let s = HistogramSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        // Merging with an empty histogram is the identity.
        let a = HistogramSnapshot::from_samples(&[3, 9, 27]);
        assert_eq!(a.merge(&s), a);
        assert_eq!(s.merge(&a), a);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = HistogramSnapshot::from_samples(&[1, 2, 3, 100]);
        let b = HistogramSnapshot::from_samples(&[50, 60, 70]);
        let c = HistogramSnapshot::from_samples(&[7, 7_000, 70_000_000]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let abc = a.merge(&b).merge(&c);
        assert_eq!(abc.count, 10);
        assert_eq!(abc.min, 1);
        assert_eq!(abc.max, 70_000_000);
    }

    #[test]
    fn percentile_interpolation() {
        // 100 samples spread uniformly in bucket 10 ([1024, 2048)):
        // the CDF is linear across the bucket, so p50 ≈ the midpoint.
        let samples: Vec<u64> = (0..100).map(|i| 1024 + i * 10).collect();
        let s = HistogramSnapshot::from_samples(&samples);
        let p50 = s.p50();
        assert!((p50 - 1536.0).abs() < 16.0, "p50 = {p50}");
        // All mass in one bucket: p0 → the smallest sample, p100 → the
        // largest (not the bucket bounds — percentiles never extrapolate
        // past observed samples).
        assert!((s.percentile(0.0) - 1024.0).abs() < 1e-9);
        assert!((s.percentile(100.0) - 2014.0).abs() < 1e-9);
        // Percentiles are monotone in p.
        let mut last = -1.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!(v >= last, "percentile({p}) regressed");
            last = v;
        }
    }

    #[test]
    fn percentile_across_buckets() {
        // 90 tiny samples and 10 huge ones: p50 stays in the small bucket,
        // p99 lands in the large one.
        let mut samples = vec![4u64; 90];
        samples.extend(std::iter::repeat_n(1 << 20, 10));
        let s = HistogramSnapshot::from_samples(&samples);
        assert!(s.p50() < 8.0, "p50 = {}", s.p50());
        assert!(s.p99() >= (1 << 20) as f64, "p99 = {}", s.p99());
        assert!(s.p99() < (1 << 21) as f64, "p99 = {}", s.p99());
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        // Samples clustered mid-bucket: interpolation toward the bucket's
        // upper bound would exceed every sample; the observed max caps it.
        let s = HistogramSnapshot::from_samples(&[5000; 100]);
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), 5000.0, "p{p}");
        }
        // Low side symmetrically: p0 is the smallest sample, not the
        // bucket's lower bound.
        let s = HistogramSnapshot::from_samples(&[100, 100]);
        assert_eq!(s.percentile(0.0), 100.0);
    }

    #[test]
    fn percentile_bucket_63_does_not_extrapolate() {
        // Bucket 63's upper bound is 2⁶⁴; interpolation used to run the
        // p100 of a single sample at 2⁶³ up to twice its value.
        let top = 1u64 << 63;
        let s = HistogramSnapshot::from_samples(&[top]);
        assert_eq!(s.percentile(50.0), top as f64);
        assert_eq!(s.percentile(100.0), top as f64);
        // Mixed with a small sample, high percentiles stay <= max.
        let s = HistogramSnapshot::from_samples(&[1, top]);
        assert!(s.percentile(99.0) <= top as f64);
        assert_eq!(s.percentile(100.0), top as f64);
    }

    #[test]
    fn percentile_mid_flight_snapshots() {
        // A snapshot can race `record`: `count` may lead the bucket sums
        // (count read after the bucket pass) or trail them, and min/max
        // may not have landed yet. Percentiles must stay inside whatever
        // range *was* observed — never panic, never extrapolate.
        let mut s = HistogramSnapshot::default();
        // count leads the bucket sums: the CDF walk falls off the end.
        s.buckets[Histogram::bucket_index(2100)] = 1;
        s.count = 4;
        s.max = 2100;
        s.min = 2100;
        assert_eq!(s.percentile(100.0), 2100.0);
        // A partial landing inside the last bucket clamps to max too.
        assert!(s.percentile(20.0) <= 2100.0);
        // count trails the bucket sums (records raced in after the count
        // read): targets are smaller, result still within [min, max].
        s.count = 1;
        assert!(s.percentile(50.0) >= 2048.0 && s.percentile(50.0) <= 2100.0);
        // min not yet recorded (still the u64::MAX sentinel): the clamp
        // must not treat it as a lower bound.
        let mut s = HistogramSnapshot::default();
        s.buckets[0] = 1;
        s.count = 1;
        s.max = 1;
        assert!(s.percentile(50.0) <= 1.0);
    }

    #[test]
    fn size_class_boundaries() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(8192), 13);
        assert_eq!(size_class(65536), 16);
        // Exact powers of two open their class; one below stays in the
        // previous one.
        for p in 1..64u32 {
            let v = 1u64 << p;
            assert_eq!(size_class(v), p as u8, "2^{p}");
            assert_eq!(size_class(v - 1), (p - 1) as u8, "2^{p} - 1");
            if v < u64::MAX {
                assert_eq!(size_class(v + 1), p as u8, "2^{p} + 1");
            }
        }
        assert_eq!(size_class(u64::MAX), 63);
        // Around the default eager threshold (8 KiB): crossing it does
        // not skip a class, so eager and rendezvous latencies straddling
        // the cutover land in adjacent histograms, not the same one.
        let eager = crate::MpiConfig::dcfa().eager_threshold;
        assert_eq!(eager, 8192);
        assert_eq!(size_class(eager - 1), 12);
        assert_eq!(size_class(eager), 13);
        assert_eq!(size_class(eager + 1), 13);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p));
        }
        assert_eq!(Phase::parse("NotAPhase"), None);
    }

    #[test]
    fn hub_snapshot_sorted_and_merged() {
        let hub = MetricsHub::new();
        hub.record(Phase::RndvRead, 65536, Some(1), 5_000);
        hub.record(Phase::Eager, 512, Some(1), 900);
        hub.record(Phase::Eager, 512, Some(2), 1_100);
        hub.record(Phase::Eager, 64, Some(1), 400);
        let snap = hub.snapshot();
        assert_eq!(snap.len(), 4);
        let keys: Vec<MetricKey> = snap.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let phases = hub.merged_by_phase();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, Phase::Eager);
        assert_eq!(phases[0].1.count, 3);
        assert_eq!(phases[1].0, Phase::RndvRead);
        assert_eq!(phases[1].1.count, 1);
    }

    #[test]
    fn span_end_attributes_elapsed_time() {
        let span = Span::begin(Phase::RtsWait, 7, 65536, Some(3), SimTime(1_000));
        let (key, ns) = span.end(SimTime(43_000));
        assert_eq!(ns, 42_000);
        assert_eq!(key.phase, Phase::RtsWait);
        assert_eq!(key.size_class, 16);
        assert_eq!(key.peer, Some(3));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn metrics_handle_gates_on_attachment() {
        let m = Metrics::default();
        assert!(!m.enabled());
        // Unattached: closures never run, spans never open.
        assert_eq!(m.start(|| unreachable!()), None);
        assert!(m
            .span_begin(Phase::Eager, 1, 64, None, || unreachable!())
            .is_none());

        let hub = MetricsHub::new();
        let mut m = Metrics::default();
        m.attach(hub.clone());
        assert!(m.enabled());
        let t0 = m.start(|| SimTime(10));
        m.record_since(t0, || SimTime(25), Phase::EagerCopy, 512, Some(1));
        let span = m
            .span_begin(Phase::Eager, 9, 512, Some(1), || SimTime(10))
            .expect("span opens when attached");
        m.span_end(span, || SimTime(110));
        let phases = hub.merged_by_phase();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, Phase::Eager);
        assert_eq!(phases[0].1.sum, 100);
        assert_eq!(phases[1].0, Phase::EagerCopy);
        assert_eq!(phases[1].1.sum, 15);
    }
}
