//! Host-staged collectives — the paper's stated future work realized:
//! "some heavy functions, such as collective communication ... are planned
//! to be offloaded to the host CPU" (§VI).
//!
//! The plain collectives in [`crate::collectives`] move data between
//! Phi-resident buffers: every tree hop re-stages through the offloading
//! send buffer (sync up, wire, write down into Phi), so a `log2(n)`-deep
//! broadcast pays the PCIe crossing at *every* level. The host-staged
//! variants stage each rank's buffer into its host twin **once**, run the
//! whole tree over host-resident memory at full host-sourced InfiniBand
//! speed, and DMA the result down **once** at the end:
//!
//! ```text
//! plain     :  phi →(sync)→ host →(wire)→ phi →(sync)→ host →(wire)→ phi ...
//! host-staged: phi →(sync)→ host →(wire)→ host →(wire)→ host →(dma)→ phi
//! ```
//!
//! Falls back to the plain algorithms transparently on host placement or
//! when the offloading buffer is disabled. The ablation bench
//! `ablation_host_staged_bcast` quantifies the win.

use fabric::Buffer;
use simcore::Ctx;

use crate::collectives;
use crate::comm::{Comm, Communicator};
use crate::types::{Datatype, MpiError, Rank, ReduceOp, Src, TagSel};

const HTAG: u32 = 0xF100_0000;

/// Binomial-tree broadcast through host twins.
pub fn bcast_host_staged(
    c: &mut Comm,
    ctx: &mut Ctx,
    buf: &Buffer,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    if n <= 1 {
        return Ok(());
    }
    let Some(twin) = c.host_twin(ctx, buf) else {
        return collectives::bcast(c, ctx, buf, root);
    };
    let me = (c.rank() + n - root) % n;
    if me == 0 {
        // Root stages its payload up once.
        c.sync_to_twin(ctx, buf, &twin);
    }
    // Receive phase: find our parent, receive *into the twin*.
    let mut mask = 1usize;
    while mask < n {
        if me & mask != 0 {
            let parent = (me - mask + root) % n;
            c.recv(ctx, &twin, Src::Rank(parent), TagSel::Tag(HTAG))?;
            break;
        }
        mask *= 2;
    }
    // Send phase: forward from the twin (host-sourced, no re-sync).
    mask /= 2;
    while mask > 0 {
        if me + mask < n {
            let child = (me + mask + root) % n;
            c.send(ctx, &twin, child, HTAG)?;
        }
        mask /= 2;
    }
    // One DMA down at the end.
    if me != 0 {
        c.sync_from_twin(ctx, &twin, buf);
    }
    Ok(())
}

/// Binomial-tree reduce through host twins (result on `root`'s `buf`).
pub fn reduce_host_staged(
    c: &mut Comm,
    ctx: &mut Ctx,
    buf: &Buffer,
    dtype: Datatype,
    op: ReduceOp,
    root: Rank,
) -> Result<(), MpiError> {
    let n = c.size();
    if n <= 1 {
        return Ok(());
    }
    let Some(twin) = c.host_twin(ctx, buf) else {
        return collectives::reduce(c, ctx, buf, dtype, op, root);
    };
    let me = (c.rank() + n - root) % n;
    c.sync_to_twin(ctx, buf, &twin);
    // Scratch for incoming partials, in host memory next to the twin.
    let scratch = c
        .cluster()
        .alloc_pages(twin.mem, buf.len)
        .map_err(|_| MpiError::OutOfMemory)?;
    let mut mask = 1usize;
    while mask < n {
        if me & mask != 0 {
            let parent = (me - mask + root) % n;
            c.send(ctx, &twin, parent, HTAG + 1)?;
            break;
        }
        let child = me + mask;
        if child < n {
            let child_rank = (child + root) % n;
            c.recv(ctx, &scratch, Src::Rank(child_rank), TagSel::Tag(HTAG + 1))?;
            // Combine on the host side of the stage (charged at host
            // memcpy rate — this is exactly the "offload heavy functions
            // to the host CPU" benefit).
            let mut a = c.cluster().read_vec(&twin);
            let b = c.cluster().read_vec(&scratch);
            op.apply(dtype, &mut a, &b);
            c.cluster().write(&twin, 0, &a);
            let d = c.cluster().copy_duration(fabric::Domain::Host, buf.len * 2);
            ctx.sleep(d);
        }
        mask *= 2;
    }
    c.cluster().free(&scratch);
    if me == 0 {
        c.sync_from_twin(ctx, &twin, buf);
    }
    Ok(())
}

/// Allreduce through host twins: host-staged reduce + host-staged bcast
/// (the intermediate result never leaves host memory on the root).
pub fn allreduce_host_staged(
    c: &mut Comm,
    ctx: &mut Ctx,
    buf: &Buffer,
    dtype: Datatype,
    op: ReduceOp,
) -> Result<(), MpiError> {
    reduce_host_staged(c, ctx, buf, dtype, op, 0)?;
    bcast_host_staged(c, ctx, buf, 0)
}
