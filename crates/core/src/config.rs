//! DCFA-MPI library configuration: protocol thresholds and feature toggles
//! (the knobs the paper's evaluation and our ablation benches turn).

use simcore::SimDuration;

/// Where MPI ranks execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Ranks on Xeon Phi co-processors — DCFA-MPI proper.
    Phi,
    /// Ranks on the host Xeons — the YAMPII host MPI baseline the paper
    /// compares RTT/bandwidth against ("host" curves in Figs. 7/8).
    Host,
}

/// Library configuration.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Where the ranks run.
    pub placement: Placement,
    /// Eager/rendezvous switch point: messages strictly larger than this go
    /// through a rendezvous protocol.
    pub eager_threshold: u64,
    /// Offloading-send-buffer activation size (paper §IV-B4: "an
    /// offloading send buffer starting from 8Kbytes shows the best
    /// performance" in their environment). `None` disables the mode
    /// (also forced off for Host placement).
    pub offload_threshold: Option<u64>,
    /// Memory-region cache pool for send/receive buffers ("a buffer cache
    /// pool was designed for caching the most recently used memory
    /// regions"). Capacity in regions; 0 disables caching.
    pub mr_cache_capacity: usize,
    /// Slots per eager ring (per ordered peer pair).
    pub ring_slots: u32,
    /// Payload capacity of one eager ring slot. Must be at least
    /// `eager_threshold`.
    pub ring_slot_payload: u64,
    /// How many times a transiently failed transport operation (RNR /
    /// retry-exceeded completion) is re-posted before the owning request
    /// fails. 0 means a single attempt with no retries. Ownerless control
    /// packets (completions, credits) retry without bound: dropping them
    /// would wedge the peer's ring.
    pub retry_limit: u32,
    /// Base backoff before the first retry; doubles per attempt
    /// (exponential backoff through the simulation scheduler).
    pub retry_backoff: SimDuration,
    /// Rendezvous handshake watchdog: if a send/receive is still waiting
    /// for its completion packet this long after issuing RTS/RTR, the
    /// handshake packet is re-issued (duplicates are deduplicated by pair
    /// sequence id). `None` disables the watchdog.
    pub rndv_timeout: Option<SimDuration>,
    /// DCFA command-channel reply timeout: how long a rank waits for the
    /// delegation daemon's reply before retransmitting the command
    /// (Phi placement only; commands carry sequence ids and the daemon
    /// deduplicates, so retransmission is safe).
    pub cmd_timeout: SimDuration,
    /// Command retransmissions before the rank gives up on the connection
    /// and re-attaches (reconnect + resource-journal replay).
    pub cmd_retry_limit: u32,
    /// Lease-renewal heartbeat period for the DCFA session. `None`
    /// disables the sidecar; the daemon then sees the rank as alive only
    /// while it issues commands (fine unless a lease TTL is configured).
    pub heartbeat_interval: Option<SimDuration>,
    /// Bound on live entries in each engine slot table (outstanding
    /// requests, inflight work requests). Hitting the bound surfaces as
    /// [`crate::MpiError::ResourceExhausted`] backpressure on `isend`
    /// / `irecv` instead of aborting the rank.
    pub max_requests: u32,
    /// Shared-receive-queue depth. `Some(d)` switches eager/control
    /// traffic from per-pair RDMA rings to two-sided sends into one
    /// `d`-slot pool shared by all peers of a rank — O(ranks) instead of
    /// O(ranks²) buffer memory per world. `None` keeps the per-pair ring
    /// path.
    pub srq_depth: Option<u32>,
    /// Peer-failure detection TTL. `Some(ttl)` starts a heartbeat
    /// sidecar per rank (period `ttl / 4`) and classifies peers on the
    /// health board: heartbeat staleness past `ttl` marks a peer
    /// `Suspect`, past `3 * ttl` promotes it to `Dead`, after which any
    /// operation targeting it fails with
    /// [`crate::MpiError::PeerFailed`] instead of hanging. `None`
    /// disables the sidecar; failures are then detected only by QP-error
    /// snooping (a flush completion on a WR toward the dead peer).
    pub peer_ttl: Option<SimDuration>,
    /// Capacity (in events) of the shared structured-trace ring a
    /// launch attaches when tracing is requested. The ring drops its
    /// oldest events once full ([`crate::trace::TraceBuf::dropped`]
    /// counts them), which degrades the post-run audit and message
    /// stitcher from whole-run proofs to suffix checks — size it to the
    /// workload. Harnesses that derive larger per-rank capacities treat
    /// this as a floor.
    pub trace_capacity: usize,
}

impl MpiConfig {
    /// DCFA-MPI as evaluated in the paper: ranks on Phi, offloading send
    /// buffer from 8 KiB, MR cache enabled.
    pub fn dcfa() -> Self {
        MpiConfig {
            placement: Placement::Phi,
            // Rendezvous (and with it the offloading send buffer) takes
            // over above 8 KiB — the activation point the paper found
            // best in its environment (§IV-B4).
            eager_threshold: 8 << 10,
            offload_threshold: Some(8 << 10),
            mr_cache_capacity: 64,
            ring_slots: 64,
            ring_slot_payload: 8 << 10,
            retry_limit: 4,
            retry_backoff: SimDuration::from_micros(10),
            // Far above any healthy handshake latency (µs scale), so the
            // watchdog never fires spuriously in fault-free runs.
            rndv_timeout: Some(SimDuration::from_millis(10)),
            // Generously above the worst-case daemon service time (a
            // multi-MiB registration costs tens of µs), well below the
            // rendezvous watchdog.
            cmd_timeout: SimDuration::from_micros(500),
            cmd_retry_limit: 3,
            heartbeat_interval: None,
            max_requests: 1 << 20,
            srq_depth: None,
            peer_ttl: None,
            trace_capacity: 1 << 16,
        }
    }

    /// DCFA-MPI without the offloading send buffer (the "w/o offload"
    /// curves of Figs. 7/8).
    pub fn dcfa_no_offload() -> Self {
        MpiConfig {
            offload_threshold: None,
            ..Self::dcfa()
        }
    }

    /// Host MPI (YAMPII) — ranks on the Xeons.
    pub fn host() -> Self {
        MpiConfig {
            placement: Placement::Host,
            offload_threshold: None,
            ..Self::dcfa()
        }
    }

    /// Sanity-check invariants; called by the launcher.
    pub fn validate(&self) {
        assert!(self.ring_slots >= 4, "need at least 4 ring slots");
        assert!(
            self.ring_slot_payload >= self.eager_threshold,
            "ring slot payload must hold an eager message"
        );
        if self.placement == Placement::Host {
            assert!(
                self.offload_threshold.is_none(),
                "offload send buffer is a Phi-only mode"
            );
        }
        assert!(
            self.retry_backoff > SimDuration::ZERO,
            "retry backoff must be positive"
        );
        if let Some(t) = self.rndv_timeout {
            assert!(t > SimDuration::ZERO, "rendezvous timeout must be positive");
        }
        assert!(
            self.cmd_timeout > SimDuration::ZERO,
            "command timeout must be positive"
        );
        if let Some(h) = self.heartbeat_interval {
            assert!(h > SimDuration::ZERO, "heartbeat interval must be positive");
        }
        assert!(self.max_requests >= 4, "need at least 4 request slots");
        if let Some(t) = self.peer_ttl {
            assert!(t > SimDuration::ZERO, "peer TTL must be positive");
        }
        if let Some(d) = self.srq_depth {
            assert!(
                d >= 2 * self.ring_slots,
                "SRQ pool must hold at least two peers' windows"
            );
        }
        assert!(
            self.trace_capacity > 0,
            "trace ring capacity must be positive"
        );
    }
}

impl Default for MpiConfig {
    fn default() -> Self {
        Self::dcfa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        MpiConfig::dcfa().validate();
        MpiConfig::dcfa_no_offload().validate();
        MpiConfig::host().validate();
    }

    #[test]
    #[should_panic(expected = "Phi-only")]
    fn host_with_offload_rejected() {
        let cfg = MpiConfig {
            placement: Placement::Host,
            offload_threshold: Some(8 << 10),
            ..MpiConfig::dcfa()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "trace ring capacity")]
    fn zero_trace_capacity_rejected() {
        let cfg = MpiConfig {
            trace_capacity: 0,
            ..MpiConfig::dcfa()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "slot payload")]
    fn slot_smaller_than_eager_rejected() {
        let cfg = MpiConfig {
            ring_slot_payload: 1024,
            ..MpiConfig::dcfa()
        };
        cfg.validate();
    }
}
