//! Placement-dependent resource operations: DCFA (ranks on Phi, resource
//! ops offloaded to the host daemon) vs. direct host verbs (YAMPII mode).

use std::sync::Arc;

use dcfa::{DcfaContext, OffloadMr};
use fabric::{Buffer, Cluster, MemRef};
use simcore::{Ctx, SimEvent};
use verbs::{CompletionQueue, IbFabric, MemoryRegion, QueuePair, SharedReceiveQueue, VerbsContext};

/// The resource backend an MPI rank uses.
pub enum Resources {
    /// DCFA-MPI proper: Phi-resident, resource ops via the host daemon.
    Phi(DcfaContext),
    /// Host MPI (YAMPII baseline): direct host verbs.
    Host(VerbsContext),
}

impl Resources {
    pub fn mem(&self) -> MemRef {
        match self {
            Resources::Phi(d) => d.mem_ref(),
            Resources::Host(v) => v.mem_ref(),
        }
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        match self {
            Resources::Phi(d) => d.cluster(),
            Resources::Host(v) => v.cluster(),
        }
    }

    pub fn ib(&self) -> &Arc<IbFabric> {
        match self {
            Resources::Phi(d) => d.verbs().fabric(),
            Resources::Host(v) => v.fabric(),
        }
    }

    /// Register a memory region, paying the placement-appropriate cost
    /// (Phi: command round trip to the host daemon; host: local pin cost).
    pub fn reg_mr(&self, ctx: &mut Ctx, buf: Buffer) -> MemoryRegion {
        match self {
            Resources::Phi(d) => d.reg_mr(ctx, buf).expect("DCFA reg_mr failed"),
            Resources::Host(v) => v.reg_mr(ctx, buf),
        }
    }

    pub fn dereg_mr(&self, ctx: &mut Ctx, mr: &MemoryRegion) {
        match self {
            Resources::Phi(d) => {
                let _ = d.dereg_mr(ctx, mr);
            }
            Resources::Host(v) => v.dereg_mr(mr),
        }
    }

    pub fn create_cq(&self, ctx: &mut Ctx, event: SimEvent) -> CompletionQueue {
        match self {
            Resources::Phi(d) => {
                // Resource setup offloaded (charged); the CQ object itself
                // is polled directly on the Phi.
                let _ = d.create_cq(ctx).expect("DCFA create_cq failed");
                CompletionQueue::with_event(event)
            }
            Resources::Host(_) => CompletionQueue::with_event(event),
        }
    }

    pub fn create_qp(
        &self,
        ctx: &mut Ctx,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
    ) -> QueuePair {
        match self {
            Resources::Phi(d) => d
                .create_qp(ctx, send_cq, recv_cq)
                .expect("DCFA create_qp failed"),
            Resources::Host(v) => v.create_qp(send_cq, recv_cq),
        }
    }

    /// Create a shared receive queue (resource setup through the
    /// placement-appropriate path).
    pub fn create_srq(&self, ctx: &mut Ctx) -> SharedReceiveQueue {
        match self {
            Resources::Phi(d) => d.create_srq(ctx).expect("DCFA create_srq failed"),
            Resources::Host(v) => v.create_srq(),
        }
    }

    /// Create a QP attached to a shared receive queue.
    pub fn create_qp_with_srq(
        &self,
        ctx: &mut Ctx,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: &SharedReceiveQueue,
    ) -> QueuePair {
        match self {
            Resources::Phi(d) => d
                .create_qp_with_srq(ctx, send_cq, recv_cq, srq)
                .expect("DCFA create_qp_with_srq failed"),
            Resources::Host(v) => v.create_qp_with_srq(send_cq, recv_cq, srq),
        }
    }

    /// Offloading send buffer (Phi only). `None` on host placement **or**
    /// when the daemon cannot provide a twin right now (out of host
    /// memory, or unreachable through every retry) — callers degrade to
    /// sourcing the Phi buffer directly.
    pub fn reg_offload(&self, ctx: &mut Ctx, buf: &Buffer) -> Option<OffloadMr> {
        match self {
            Resources::Phi(d) => d.reg_offload_mr(ctx, buf).ok(),
            Resources::Host(_) => None,
        }
    }

    /// Is the registration behind `key` still live on the HCA? False once
    /// the daemon reclaimed it (expired lease, crash drain of a twin):
    /// the caches use this to drop entries before a stale key reaches
    /// the wire.
    pub fn mr_live(&self, key: verbs::MrKey) -> bool {
        self.ib().mr_handle(key).is_some()
    }

    /// Control epoch of the DCFA session: bumped on every re-attach
    /// (daemon respawn or lease loss). Constant 0 for host placement.
    pub fn ctrl_epoch(&self) -> u64 {
        match self {
            Resources::Phi(d) => d.ctrl_epoch(),
            Resources::Host(_) => 0,
        }
    }

    pub fn sync_offload(&self, ctx: &mut Ctx, omr: &OffloadMr, offset: u64, len: u64) {
        match self {
            Resources::Phi(d) => d.sync_offload_mr(ctx, omr, offset, len),
            Resources::Host(_) => unreachable!("sync_offload on host placement"),
        }
    }

    pub fn dereg_offload(&self, ctx: &mut Ctx, omr: OffloadMr) {
        match self {
            Resources::Phi(d) => {
                let _ = d.dereg_offload_mr(ctx, omr);
            }
            Resources::Host(_) => unreachable!("dereg_offload on host placement"),
        }
    }

    /// Close down (tell the DCFA daemon handler to exit).
    pub fn close(&self, ctx: &mut Ctx) {
        if let Resources::Phi(d) = self {
            d.close(ctx);
        }
    }

    /// Fail-stop teardown: stop the DCFA heartbeat sidecar without a
    /// goodbye, so the daemon discovers the death via lease expiry.
    pub fn abandon(&self) {
        if let Resources::Phi(d) = self {
            d.abandon();
        }
    }
}
