//! Structured protocol tracing and the protocol auditor.
//!
//! Every rank's engine can record [`TraceEvent`]s into a shared,
//! bounded [`TraceBuf`] ring: packet transmit/receive with kind,
//! sequence id and peer (which covers the RTS/RTR/DONE rendezvous
//! transitions), MR-cache register/pin/unpin/deregister/evict, credit
//! grants and applications, offload-sync start/end, stale-RTR drops,
//! and timestamped message-lifecycle edges ([`TraceEvent::MsgLife`])
//! that let a post-run stitcher rebuild each message's cross-rank
//! causal DAG. The simulation runs exactly one process thread at a
//! time, so the ring's order *is* the simulation's causal order and a
//! recorded run replays deterministically.
//!
//! Recording is zero-cost when the `trace` cargo feature is disabled:
//! [`Trace::record`] takes the event as a closure and compiles to
//! nothing, so even the event construction disappears. With the
//! feature enabled (the default) an engine without an attached buffer
//! pays one `Option` check per site.
//!
//! [`audit`] replays a recorded event stream and checks the protocol
//! invariants the paper's design relies on (§IV-B3/§IV-B4):
//!
//! 1. per ordered pair, data sequence ids (EAGER/RTS) are assigned
//!    `0, 1, 2, …` with no gap or repeat;
//! 2. an MR is never deregistered or evicted while pinned by an
//!    outstanding RDMA, and pin/unpin counts never go negative;
//! 3. credit grants are cumulative, never retreat, and never exceed
//!    the packets actually sent to the granter (the sender's window
//!    `sent - consumed` can never go negative);
//! 4. every RTS is answered by exactly one DONE, and every RTR by at
//!    most one DONE-WRITE (stale RTRs are dropped by sequence id);
//! 5. control-plane fault recovery is complete: every daemon crash is
//!    paired with a respawn of the same incarnation, and every client
//!    re-attach replays its *entire* resource journal (`replayed ==
//!    journaled` — no resource silently lost across a respawn);
//! 6. every opened metrics span is closed exactly once before rank
//!    finalize: a dangling or double-closed span is a leak in the
//!    engine's phase accounting and fails the audit with the span's
//!    phase and message id.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::Phase;
use crate::packet::PacketKind;
use crate::types::Rank;

/// A stage in one message's lifecycle. Each [`TraceEvent::MsgLife`]
/// event names the stage that *ends* at its timestamp, so two
/// consecutive events of the same message form one causal edge whose
/// duration is the timestamp delta (the stitcher in `bench::stitch`
/// telescopes them into a per-message DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgStage {
    /// The sender's `isend` assigned the pair sequence id.
    Post,
    /// The send sat parked waiting for ring credit (flow control).
    CreditStall,
    /// The eager one-copy into the staging slot (or the receive-side
    /// copy out of the ring slot into the user buffer) finished.
    Copy,
    /// The offloading-send-buffer DMA sync to the host twin finished.
    OffloadSync,
    /// The rendezvous source lease was acquired (MR-cache hit, or a
    /// registration command round-trip through the DCFA daemon).
    MrAcquire,
    /// The packet's work request was posted (doorbell rung).
    Doorbell,
    /// The packet was consumed from the wire at the receiver.
    Wire,
    /// SRQ mode: the packet overtook its predecessors and was parked in
    /// the per-peer reorder stash.
    SrqStash,
    /// The packet arrived before its receive was posted and was parked
    /// in the unexpected-message queue.
    UnexpStash,
    /// The message matched a posted receive.
    Match,
    /// The rendezvous RDMA READ/WRITE was posted.
    RdmaStart,
    /// The rendezvous RDMA READ/WRITE completed.
    RdmaDone,
    /// A transiently failed work request entered retry backoff.
    Backoff,
    /// A backed-off work request was re-posted.
    Retry,
    /// A NACK for this message was transmitted (transport abort).
    Nack,
    /// The message resolved at this rank (request done).
    Complete,
}

impl MsgStage {
    /// Stable lower-case name (report keys, Perfetto slice names).
    pub fn name(self) -> &'static str {
        match self {
            MsgStage::Post => "post",
            MsgStage::CreditStall => "credit_stall",
            MsgStage::Copy => "copy",
            MsgStage::OffloadSync => "offload_sync",
            MsgStage::MrAcquire => "mr_acquire",
            MsgStage::Doorbell => "doorbell",
            MsgStage::Wire => "wire",
            MsgStage::SrqStash => "srq_stash",
            MsgStage::UnexpStash => "unexp_stash",
            MsgStage::Match => "match",
            MsgStage::RdmaStart => "rdma_start",
            MsgStage::RdmaDone => "rdma_done",
            MsgStage::Backoff => "backoff",
            MsgStage::Retry => "retry",
            MsgStage::Nack => "nack",
            MsgStage::Complete => "complete",
        }
    }
}

/// One recorded protocol event. `from`/`to`/`at` identify ranks;
/// MR events identify regions by their registration key, which is
/// unique per registration within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was placed into `to`'s inbound ring.
    PacketTx {
        from: Rank,
        to: Rank,
        kind: PacketKind,
        seq: u64,
        len: u64,
    },
    /// A packet was consumed from `at`'s inbound ring.
    PacketRx {
        at: Rank,
        from: Rank,
        kind: PacketKind,
        seq: u64,
        len: u64,
    },
    /// A memory region entered the MR cache layer (fresh registration).
    MrRegister {
        rank: Rank,
        key: u32,
        addr: u64,
        len: u64,
        cached: bool,
    },
    /// A region left the cache layer and was deregistered.
    MrDeregister { rank: Rank, key: u32 },
    /// A cached region was evicted (LRU) and deregistered.
    MrEvict { rank: Rank, key: u32 },
    /// A lease pinned the region (an RDMA may now target it).
    MrPin { rank: Rank, key: u32 },
    /// The lease was released.
    MrUnpin { rank: Rank, key: u32 },
    /// `from` reported `consumed` cumulative ring slots to `to`.
    CreditGrant { from: Rank, to: Rank, consumed: u64 },
    /// `at` applied a credit report from `from`.
    CreditApply { at: Rank, from: Rank, consumed: u64 },
    /// Offloading-send-buffer DMA sync began (Phi -> host twin).
    OffloadSyncStart { rank: Rank, len: u64 },
    /// The DMA sync completed.
    OffloadSyncEnd { rank: Rank, len: u64 },
    /// A stale RTR was dropped thanks to sequence ids (mis-prediction
    /// recovery).
    StaleRtrDrop { rank: Rank, from: Rank, seq: u64 },
    /// A posted work request targeting `peer` completed with an error
    /// status (`transient` per the WC classification).
    WrFault {
        rank: Rank,
        peer: Rank,
        wr_id: u64,
        transient: bool,
    },
    /// A transiently failed work request was re-posted (attempt number,
    /// counting the original post as attempt 1).
    WrRetry {
        rank: Rank,
        peer: Rank,
        wr_id: u64,
        attempt: u32,
    },
    /// A request failed permanently with `MpiError::Transport`; `seq` is
    /// the pair sequence id of the dead transfer (if any).
    TransportFail { rank: Rank, peer: Rank, seq: u64 },
    /// `from` is about to deliberately re-transmit a packet it already
    /// sent (handshake watchdog re-issue, duplicate-answer replay, or a
    /// NACK rewrite of a dead ring slot). Grants the auditor an allowance
    /// for one duplicate `PacketTx` with these coordinates, which is
    /// exempt from sequence/pairing accounting.
    Retrans {
        from: Rank,
        to: Rank,
        kind: PacketKind,
        seq: u64,
    },
    /// A cached region was dropped because the daemon had already
    /// reclaimed the underlying registration (lease expiry or crash
    /// drain). Lifecycle-wise this is a deregister: the key must never
    /// be handed out again afterwards.
    MrInvalidated { rank: Rank, key: u32 },
    /// A DCFA command timed out waiting for the daemon's reply.
    /// `client` is the daemon-assigned session id.
    CtrlTimeout { client: u32, seq: u32 },
    /// A timed-out DCFA command was retransmitted (`attempt` starts at 1).
    CtrlRetry { client: u32, seq: u32, attempt: u32 },
    /// A client re-attached to its node daemon and replayed its resource
    /// journal under control `epoch`. The auditor requires
    /// `replayed == journaled`: every journaled resource must be
    /// re-established (adopted or re-registered) after a respawn.
    CtrlReattach {
        client: u32,
        epoch: u32,
        journaled: u64,
        replayed: u64,
    },
    /// The node's delegation daemon crashed; `epoch` is the incarnation
    /// that will replace it.
    DaemonCrash { node: usize, epoch: u32 },
    /// The supervisor respawned the node daemon as incarnation `epoch`.
    DaemonRespawn { node: usize, epoch: u32 },
    /// The lease reaper reclaimed an expired client session holding
    /// `objects` IB objects.
    LeaseReclaim {
        node: usize,
        client: u32,
        objects: u64,
    },
    /// A retransmitted command was answered from the daemon's reply-dedup
    /// cache instead of being re-executed.
    CtrlReplay { node: usize, client: u32, seq: u32 },
    /// The rank gave up on offload twins (repeated registration failure)
    /// and degraded to direct-from-Phi rendezvous sends.
    OffloadDegraded { rank: Rank },
    /// A metrics span opened: an asynchronous protocol stage of message
    /// `id` began in `phase`. Must be closed exactly once.
    SpanOpen { rank: Rank, id: u64, phase: Phase },
    /// The matching span close.
    SpanClose { rank: Rank, id: u64, phase: Phase },
    /// `rank` was fail-stop killed (injection or chaos schedule). From
    /// this point the auditor forgives end-of-stream obligations that
    /// involve the dead rank: its unreleased pins, open spans and syncs,
    /// and handshakes with it as an endpoint can never complete.
    RankKilled { rank: Rank },
    /// `rank` observed `peer`'s death (health-board epoch advance) and
    /// reclaimed every resource tied to the pair.
    PeerReaped { rank: Rank, peer: Rank },
    /// `rank` observed a communicator revocation and drained its pending
    /// operations with `Revoked`.
    RevokeObserved { rank: Rank },
    /// The lazy-connect watchdog re-issued a REQ toward `peer`
    /// (`attempt` counts re-issues, starting at 1).
    ConnRetry {
        rank: Rank,
        peer: Rank,
        attempt: u32,
    },
    /// The shrink agreement committed `epoch`, producing a
    /// `survivors`-rank world.
    ShrinkCommit { epoch: u64, survivors: u64 },
    /// A message-lifecycle edge event observed at rank `at`, in virtual
    /// time `t` (nanoseconds). The message is identified by its stable
    /// `MsgId` `(src, dst, seq)` — the sender, the receiver, and the
    /// sender-stream pair sequence id already carried in every
    /// [`crate::packet::PacketHeader`] — which is what lets the
    /// post-run stitcher join per-rank streams into one cross-rank
    /// causal DAG. `stage` names the edge ending at this event; `len`
    /// is the message payload length (0 where unknown, e.g. NACKs).
    MsgLife {
        at: Rank,
        src: Rank,
        dst: Rank,
        seq: u64,
        stage: MsgStage,
        t: u64,
        len: u64,
    },
}

struct TraceInner {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

/// Shared bounded ring of [`TraceEvent`]s. Clone-able; all ranks of a
/// launch append to the same ring, in simulation order.
#[derive(Clone)]
pub struct TraceBuf {
    inner: Arc<Mutex<TraceInner>>,
}

impl TraceBuf {
    /// A ring holding at most `cap` events; older events are dropped
    /// (and counted) once full.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace ring capacity must be positive");
        TraceBuf {
            inner: Arc::new(Mutex::new(TraceInner {
                events: VecDeque::new(),
                cap,
                dropped: 0,
            })),
        }
    }

    pub fn record(&self, ev: TraceEvent) {
        let mut g = self.inner.lock();
        if g.events.len() == g.cap {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }

    /// Copy of the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().copied().collect()
    }

    /// Events discarded because the ring was full. Audits of a full run
    /// are only meaningful when this is zero.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("TraceBuf")
            .field("len", &g.events.len())
            .field("cap", &g.cap)
            .field("dropped", &g.dropped)
            .finish()
    }
}

/// Per-engine recording handle: the rank stamp plus (when tracing is
/// compiled in) an optional attachment to a shared [`TraceBuf`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    #[cfg(feature = "trace")]
    buf: Option<TraceBuf>,
}

impl Trace {
    /// Attach to a shared ring.
    pub fn attach(&mut self, buf: TraceBuf) {
        #[cfg(feature = "trace")]
        {
            self.buf = Some(buf);
        }
        #[cfg(not(feature = "trace"))]
        let _ = buf;
    }

    /// Record an event. The closure only runs when a buffer is
    /// attached; with the `trace` feature disabled the whole call
    /// compiles away.
    #[inline]
    pub fn record(&self, ev: impl FnOnce() -> TraceEvent) {
        #[cfg(feature = "trace")]
        if let Some(buf) = &self.buf {
            buf.record(ev());
        }
        #[cfg(not(feature = "trace"))]
        let _ = ev;
    }
}

/// Summary counts from a successful [`audit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Data packets (EAGER/RTS) transmitted.
    pub data_packets: u64,
    /// RTS handshakes observed, each matched by exactly one DONE.
    pub rts_matched: u64,
    /// RTR advertisements observed.
    pub rtrs: u64,
    /// Cache-layer MR registrations observed.
    pub mr_registered: u64,
    /// Regions registered but never deregistered within the stream.
    /// Zero when the stream covers the full run through finalize.
    pub mr_leaked: u64,
    /// Credit grant packets observed.
    pub credit_grants: u64,
    /// Offloading-send-buffer syncs observed (start/end paired).
    pub offload_syncs: u64,
    /// Stale RTRs dropped by sequence id.
    pub stale_rtrs: u64,
    /// Error work completions observed.
    pub wr_faults: u64,
    /// Work-request retries observed.
    pub wr_retries: u64,
    /// Requests that failed permanently with a transport error.
    pub transport_failures: u64,
    /// Deliberate re-transmissions (watchdog re-issues, replayed answers,
    /// NACK slot rewrites).
    pub retransmissions: u64,
    /// NACK packets (NackSend/Nack/NackWrite) transmitted.
    pub nacks: u64,
    /// Cached regions invalidated after daemon-side reclamation.
    pub mr_invalidated: u64,
    /// DCFA command timeouts observed.
    pub ctrl_timeouts: u64,
    /// DCFA command retransmissions observed.
    pub ctrl_retries: u64,
    /// Client re-attaches, each with its full journal replayed.
    pub reattaches: u64,
    /// Daemon crashes observed, each paired with a respawn.
    pub daemon_crashes: u64,
    /// Expired client sessions reclaimed by the lease reaper.
    pub lease_reclaims: u64,
    /// Retransmitted commands answered from the reply-dedup cache.
    pub ctrl_replays: u64,
    /// Ranks that degraded to direct-from-Phi rendezvous sends.
    pub offload_degraded: u64,
    /// Metrics spans opened and closed (paired exactly).
    pub spans_closed: u64,
    /// Ranks fail-stop killed within the stream.
    pub ranks_killed: u64,
    /// Peer-death observations (rank, peer) — each survivor that reaped
    /// a dead peer contributes one.
    pub peers_reaped: u64,
    /// Revocation observations across ranks.
    pub revokes_observed: u64,
    /// Lazy-connect REQ re-issues.
    pub conn_retries: u64,
    /// Shrink agreements committed.
    pub shrink_commits: u64,
    /// Message-lifecycle edge events observed (see [`MsgStage`]).
    pub lifecycle_events: u64,
    /// Events the trace ring discarded before this stream was captured.
    /// Not derivable from the stream itself — callers that hold the
    /// [`TraceBuf`] stamp it in from [`TraceBuf::dropped`] after a
    /// successful audit. Non-zero means the audit covered a suffix of
    /// the run, not all of it, and any stitched DAG is partial.
    pub events_dropped: u64,
}

/// Check the protocol invariants over a recorded event stream.
/// Returns the summary on success, or every violation found.
pub fn audit(events: &[TraceEvent]) -> Result<AuditReport, Vec<String>> {
    let mut errs: Vec<String> = Vec::new();
    let mut report = AuditReport::default();

    // Invariant 1: per-pair data seq ids count 0, 1, 2, …
    let mut next_data_seq: HashMap<(Rank, Rank), u64> = HashMap::new();
    // Invariant 2: per-(rank, key) MR lifecycle.
    #[derive(Default)]
    struct MrState {
        pins: i64,
        live: bool,
        ever: bool,
    }
    let mut mrs: HashMap<(Rank, u32), MrState> = HashMap::new();
    // Invariant 3: per ordered pair, packets sent and credits granted.
    let mut sent: HashMap<(Rank, Rank), u64> = HashMap::new();
    let mut granted: HashMap<(Rank, Rank), u64> = HashMap::new();
    // Invariant 4: RTS -> DONE and RTR -> DONE-WRITE pairing.
    let mut rts_done: HashMap<(Rank, Rank, u64), (u64, u64)> = HashMap::new();
    let mut rtr_dw: HashMap<(Rank, Rank, u64), (u64, u64)> = HashMap::new();
    let mut syncs_open: HashMap<Rank, u64> = HashMap::new();
    // Outstanding duplicate allowances from `Retrans` events.
    let mut allowed_dups: HashMap<(Rank, Rank, PacketKind, u64), u64> = HashMap::new();
    // Invariant 5: per-(node, epoch) daemon crash/respawn pairing.
    let mut crash_respawn: HashMap<(usize, u32), (u64, u64)> = HashMap::new();
    // Invariant 6: per-(rank, id) open metrics spans.
    let mut open_spans: HashMap<(Rank, u64), Phase> = HashMap::new();
    // Fail-stop killed ranks: end-of-stream obligations touching a dead
    // rank are forgiven (the rank can never answer or release anything).
    let mut killed: HashSet<Rank> = HashSet::new();

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            TraceEvent::PacketTx {
                from,
                to,
                kind,
                seq,
                ..
            } => {
                *sent.entry((from, to)).or_default() += 1;
                // A deliberate re-transmission consumes its allowance and
                // is exempt from sequence/pairing accounting (it still
                // counts as a sent packet — the safe direction for the
                // credit-window invariant).
                if let Some(a) = allowed_dups.get_mut(&(from, to, kind, seq)) {
                    if *a > 0 {
                        *a -= 1;
                        continue;
                    }
                }
                match kind {
                    PacketKind::Eager | PacketKind::Rts => {
                        report.data_packets += 1;
                        let next = next_data_seq.entry((from, to)).or_default();
                        if seq != *next {
                            errs.push(format!(
                                "[{i}] pair {from}->{to}: data seq {seq}, expected {next} (gap or repeat)"
                            ));
                        }
                        *next = (*next).max(seq) + 1;
                        if kind == PacketKind::Rts {
                            rts_done.entry((from, to, seq)).or_default().0 += 1;
                        }
                    }
                    PacketKind::Rtr => {
                        report.rtrs += 1;
                        // RTR from receiver `from` advertises seq of
                        // sender `to`'s stream; DONE-WRITE comes back
                        // to -> from with the same seq.
                        rtr_dw.entry((from, to, seq)).or_default().0 += 1;
                    }
                    PacketKind::Done => {
                        // DONE from receiver `from` answers `to`'s RTS.
                        rts_done.entry((to, from, seq)).or_default().1 += 1;
                    }
                    PacketKind::DoneWrite => {
                        // DONE-WRITE from sender `from` answers `to`'s RTR.
                        rtr_dw.entry((to, from, seq)).or_default().1 += 1;
                        // A receiver-first transfer consumes a sender-stream
                        // seq without an EAGER/RTS packet; keep the pair's
                        // data sequence accounting in step.
                        let next = next_data_seq.entry((from, to)).or_default();
                        *next = (*next).max(seq + 1);
                    }
                    PacketKind::NackSend => {
                        // Rewrite of a dead EAGER/RTS slot. The original
                        // data packet already consumed its seq; if it was
                        // an RTS, the NACK stands in for its DONE.
                        report.nacks += 1;
                        if let Some(e) = rts_done.get_mut(&(from, to, seq)) {
                            e.1 += 1;
                        }
                    }
                    PacketKind::Nack => {
                        // Negative DONE from receiver `from` for `to`'s RTS.
                        report.nacks += 1;
                        rts_done.entry((to, from, seq)).or_default().1 += 1;
                    }
                    PacketKind::NackWrite => {
                        // Negative DONE-WRITE from sender `from`. Like its
                        // healthy twin, it stands in for the sender-stream
                        // seq the dead receiver-first transfer consumed.
                        report.nacks += 1;
                        rtr_dw.entry((to, from, seq)).or_default().1 += 1;
                        let next = next_data_seq.entry((from, to)).or_default();
                        *next = (*next).max(seq + 1);
                    }
                    PacketKind::Credit => {}
                }
            }
            TraceEvent::PacketRx { .. } => {}
            TraceEvent::MrRegister { rank, key, .. } => {
                report.mr_registered += 1;
                let st = mrs.entry((rank, key)).or_default();
                if st.live {
                    errs.push(format!("[{i}] rank{rank} mr {key}: registered twice"));
                }
                st.live = true;
                st.ever = true;
            }
            TraceEvent::MrDeregister { rank, key }
            | TraceEvent::MrEvict { rank, key }
            | TraceEvent::MrInvalidated { rank, key } => {
                if matches!(ev, TraceEvent::MrInvalidated { .. }) {
                    report.mr_invalidated += 1;
                }
                let st = mrs.entry((rank, key)).or_default();
                if !st.live {
                    errs.push(format!(
                        "[{i}] rank{rank} mr {key}: deregistered while not registered"
                    ));
                }
                if st.pins > 0 {
                    errs.push(format!(
                        "[{i}] rank{rank} mr {key}: deregistered with {} outstanding pin(s) (use-after-free)",
                        st.pins
                    ));
                }
                st.live = false;
            }
            TraceEvent::MrPin { rank, key } => {
                let st = mrs.entry((rank, key)).or_default();
                if !st.live {
                    errs.push(format!(
                        "[{i}] rank{rank} mr {key}: pinned while not registered"
                    ));
                }
                st.pins += 1;
            }
            TraceEvent::MrUnpin { rank, key } => {
                let st = mrs.entry((rank, key)).or_default();
                st.pins -= 1;
                if st.pins < 0 {
                    errs.push(format!(
                        "[{i}] rank{rank} mr {key}: pin count went negative"
                    ));
                }
            }
            TraceEvent::CreditGrant { from, to, consumed } => {
                report.credit_grants += 1;
                let prev = granted.entry((from, to)).or_default();
                if consumed < *prev {
                    errs.push(format!(
                        "[{i}] credit {from}->{to}: grant retreated from {prev} to {consumed}"
                    ));
                }
                *prev = (*prev).max(consumed);
                let sent_to_granter = sent.get(&(to, from)).copied().unwrap_or(0);
                if consumed > sent_to_granter {
                    errs.push(format!(
                        "[{i}] credit {from}->{to}: granted {consumed} > {sent_to_granter} packets sent \
                         (window would go negative)"
                    ));
                }
            }
            TraceEvent::CreditApply { .. } => {}
            TraceEvent::OffloadSyncStart { rank, .. } => {
                *syncs_open.entry(rank).or_default() += 1;
            }
            TraceEvent::OffloadSyncEnd { rank, .. } => {
                report.offload_syncs += 1;
                let open = syncs_open.entry(rank).or_default();
                if *open == 0 {
                    errs.push(format!("[{i}] rank{rank}: offload sync end without start"));
                } else {
                    *open -= 1;
                }
            }
            TraceEvent::StaleRtrDrop { .. } => {
                report.stale_rtrs += 1;
            }
            TraceEvent::WrFault { .. } => {
                report.wr_faults += 1;
            }
            TraceEvent::WrRetry { .. } => {
                report.wr_retries += 1;
            }
            TraceEvent::TransportFail { .. } => {
                report.transport_failures += 1;
            }
            TraceEvent::Retrans {
                from,
                to,
                kind,
                seq,
            } => {
                report.retransmissions += 1;
                *allowed_dups.entry((from, to, kind, seq)).or_default() += 1;
            }
            TraceEvent::CtrlTimeout { .. } => {
                report.ctrl_timeouts += 1;
            }
            TraceEvent::CtrlRetry { .. } => {
                report.ctrl_retries += 1;
            }
            TraceEvent::CtrlReattach {
                client,
                epoch,
                journaled,
                replayed,
            } => {
                report.reattaches += 1;
                if replayed != journaled {
                    errs.push(format!(
                        "[{i}] client {client} reattach (epoch {epoch}): replayed {replayed} of \
                         {journaled} journaled resources (resource lost across respawn)"
                    ));
                }
            }
            TraceEvent::DaemonCrash { node, epoch } => {
                report.daemon_crashes += 1;
                crash_respawn.entry((node, epoch)).or_default().0 += 1;
            }
            TraceEvent::DaemonRespawn { node, epoch } => {
                crash_respawn.entry((node, epoch)).or_default().1 += 1;
            }
            TraceEvent::LeaseReclaim { .. } => {
                report.lease_reclaims += 1;
            }
            TraceEvent::CtrlReplay { .. } => {
                report.ctrl_replays += 1;
            }
            TraceEvent::OffloadDegraded { .. } => {
                report.offload_degraded += 1;
            }
            TraceEvent::SpanOpen { rank, id, phase } => {
                if let Some(prev) = open_spans.insert((rank, id), phase) {
                    errs.push(format!(
                        "[{i}] rank{rank} span {phase} msg {id}: opened while {prev} span \
                         still open (span leak)"
                    ));
                }
            }
            TraceEvent::RankKilled { rank } => {
                report.ranks_killed += 1;
                killed.insert(rank);
            }
            TraceEvent::PeerReaped { .. } => {
                report.peers_reaped += 1;
            }
            TraceEvent::RevokeObserved { .. } => {
                report.revokes_observed += 1;
            }
            TraceEvent::ConnRetry { .. } => {
                report.conn_retries += 1;
            }
            TraceEvent::ShrinkCommit { .. } => {
                report.shrink_commits += 1;
            }
            // Lifecycle events are pure annotations for the post-run
            // stitcher: they duplicate facts the protocol events above
            // already assert (sequence order, pairing), so the auditor
            // only counts them.
            TraceEvent::MsgLife { .. } => {
                report.lifecycle_events += 1;
            }
            TraceEvent::SpanClose { rank, id, phase } => match open_spans.remove(&(rank, id)) {
                Some(open_phase) => {
                    if open_phase != phase {
                        errs.push(format!(
                            "[{i}] rank{rank} msg {id}: {open_phase} span closed as {phase}"
                        ));
                    }
                    report.spans_closed += 1;
                }
                None => errs.push(format!(
                    "[{i}] rank{rank} span {phase} msg {id}: closed without an open span \
                         (dangling or double close)"
                )),
            },
        }
    }

    for ((a, b, seq), (rts, done)) in &rts_done {
        if *rts != *done {
            if killed.contains(a) || killed.contains(b) {
                continue; // a dead endpoint can never answer
            }
            errs.push(format!(
                "RTS {a}->{b} seq {seq}: {rts} RTS vs {done} DONE (must pair exactly)"
            ));
        } else {
            report.rts_matched += *rts;
        }
    }
    for ((a, b, seq), (rtr, dw)) in &rtr_dw {
        if *dw > *rtr && !killed.contains(a) && !killed.contains(b) {
            errs.push(format!(
                "RTR {a}->{b} seq {seq}: {dw} DONE-WRITE for {rtr} RTR"
            ));
        }
    }
    for ((rank, key), st) in &mrs {
        if st.live {
            report.mr_leaked += 1;
        }
        if st.pins != 0 && !killed.contains(rank) {
            errs.push(format!(
                "rank{rank} mr {key}: {} pin(s) never released",
                st.pins
            ));
        }
    }
    for (rank, open) in &syncs_open {
        if *open != 0 && !killed.contains(rank) {
            errs.push(format!(
                "rank{rank}: {open} offload sync(s) never completed"
            ));
        }
    }
    for ((node, epoch), (crashes, respawns)) in &crash_respawn {
        if crashes != respawns {
            errs.push(format!(
                "node{node} epoch {epoch}: {crashes} crash(es) vs {respawns} respawn(s) \
                 (daemon incarnation not recovered)"
            ));
        }
    }
    for ((rank, id), phase) in &open_spans {
        if killed.contains(rank) {
            continue; // the dead rank's engine was torn down mid-span
        }
        errs.push(format!(
            "rank{rank} span {phase} msg {id}: never closed before finalize"
        ));
    }

    if errs.is_empty() {
        Ok(report)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn ring_drops_oldest() {
        let buf = TraceBuf::new(2);
        for seq in 0..3 {
            buf.record(TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Eager,
                seq,
                len: 8,
            });
        }
        let evs = buf.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(buf.dropped(), 1);
        assert!(matches!(evs[0], TraceEvent::PacketTx { seq: 1, .. }));
    }

    #[test]
    fn audit_accepts_clean_handshake() {
        let evs = vec![
            TraceEvent::MrRegister {
                rank: 0,
                key: 7,
                addr: 0x1000,
                len: 4096,
                cached: true,
            },
            TraceEvent::MrPin { rank: 0, key: 7 },
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Rts,
                seq: 0,
                len: 65536,
            },
            TraceEvent::PacketTx {
                from: 1,
                to: 0,
                kind: PacketKind::Done,
                seq: 0,
                len: 65536,
            },
            TraceEvent::MrUnpin { rank: 0, key: 7 },
            TraceEvent::MrDeregister { rank: 0, key: 7 },
        ];
        let r = audit(&evs).expect("clean stream");
        assert_eq!(r.rts_matched, 1);
        assert_eq!(r.mr_registered, 1);
        assert_eq!(r.mr_leaked, 0);
    }

    #[test]
    fn audit_flags_seq_gap() {
        let evs = vec![
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Eager,
                seq: 0,
                len: 8,
            },
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Eager,
                seq: 2,
                len: 8,
            },
        ];
        let errs = audit(&evs).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("expected 1")), "{errs:?}");
    }

    #[test]
    fn audit_flags_pinned_dereg_and_leak() {
        let evs = vec![
            TraceEvent::MrRegister {
                rank: 2,
                key: 9,
                addr: 0,
                len: 4096,
                cached: true,
            },
            TraceEvent::MrPin { rank: 2, key: 9 },
            TraceEvent::MrEvict { rank: 2, key: 9 },
        ];
        let errs = audit(&evs).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("outstanding pin")),
            "{errs:?}"
        );

        let leak = vec![TraceEvent::MrRegister {
            rank: 0,
            key: 1,
            addr: 0,
            len: 4096,
            cached: false,
        }];
        let r = audit(&leak).expect("a leak is legal mid-run");
        assert_eq!(r.mr_leaked, 1);
    }

    #[test]
    fn audit_flags_negative_credit_window() {
        let evs = vec![
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Eager,
                seq: 0,
                len: 8,
            },
            TraceEvent::CreditGrant {
                from: 1,
                to: 0,
                consumed: 2,
            },
        ];
        let errs = audit(&evs).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("window would go negative")),
            "{errs:?}"
        );
    }

    #[test]
    fn audit_flags_unmatched_rts() {
        let evs = vec![TraceEvent::PacketTx {
            from: 0,
            to: 1,
            kind: PacketKind::Rts,
            seq: 0,
            len: 1 << 20,
        }];
        let errs = audit(&evs).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("must pair exactly")),
            "{errs:?}"
        );
    }

    #[test]
    fn retrans_allowance_exempts_duplicate() {
        let rts = TraceEvent::PacketTx {
            from: 0,
            to: 1,
            kind: PacketKind::Rts,
            seq: 0,
            len: 1 << 16,
        };
        let done = TraceEvent::PacketTx {
            from: 1,
            to: 0,
            kind: PacketKind::Done,
            seq: 0,
            len: 1 << 16,
        };
        // Duplicate RTS without an allowance: seq repeat.
        let errs = audit(&[rts, rts, done]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("gap or repeat")), "{errs:?}");

        // With the allowance the duplicate is exempt.
        let allow = TraceEvent::Retrans {
            from: 0,
            to: 1,
            kind: PacketKind::Rts,
            seq: 0,
        };
        let r = audit(&[rts, allow, rts, done]).expect("allowance covers the dup");
        assert_eq!(r.rts_matched, 1);
        assert_eq!(r.retransmissions, 1);
    }

    #[test]
    fn nacks_pair_dead_handshakes() {
        // A dead RTS answered by the receiver's Nack pairs exactly.
        let evs = vec![
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Rts,
                seq: 0,
                len: 1 << 16,
            },
            TraceEvent::PacketTx {
                from: 1,
                to: 0,
                kind: PacketKind::Nack,
                seq: 0,
                len: 0,
            },
        ];
        let r = audit(&evs).expect("nack answers the rts");
        assert_eq!(r.nacks, 1);

        // A dead RTS whose slot was rewritten as NackSend also pairs.
        let evs = vec![
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Rts,
                seq: 0,
                len: 1 << 16,
            },
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::NackSend,
                seq: 0,
                len: 0,
            },
        ];
        audit(&evs).expect("slot rewrite stands in for the DONE");

        // A dead EAGER slot rewrite creates no bogus handshake entry.
        let evs = vec![
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Eager,
                seq: 0,
                len: 64,
            },
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::NackSend,
                seq: 0,
                len: 0,
            },
        ];
        audit(&evs).expect("eager nack is pairing-neutral");

        // An RTR answered negatively by NackWrite stays within its budget.
        let evs = vec![
            TraceEvent::PacketTx {
                from: 1,
                to: 0,
                kind: PacketKind::Rtr,
                seq: 0,
                len: 1 << 16,
            },
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::NackWrite,
                seq: 0,
                len: 0,
            },
        ];
        audit(&evs).expect("nack-write answers the rtr");
    }

    #[test]
    fn receiver_first_transfer_consumes_a_sender_seq() {
        // A receiver-first rendezvous (RTR answered by DONE-WRITE, no
        // EAGER/RTS on the wire) still consumes the sender's stream seq;
        // a follow-up send on the pair must not look like a gap. The
        // same holds when the transfer dies and NACK-WRITE stands in.
        for answer in [PacketKind::DoneWrite, PacketKind::NackWrite] {
            let evs = vec![
                TraceEvent::PacketTx {
                    from: 1,
                    to: 0,
                    kind: PacketKind::Rtr,
                    seq: 0,
                    len: 1 << 16,
                },
                TraceEvent::PacketTx {
                    from: 0,
                    to: 1,
                    kind: answer,
                    seq: 0,
                    len: 0,
                },
                TraceEvent::PacketTx {
                    from: 0,
                    to: 1,
                    kind: PacketKind::Eager,
                    seq: 1,
                    len: 64,
                },
            ];
            audit(&evs)
                .unwrap_or_else(|e| panic!("follow-up after {answer:?} flagged as seq gap: {e:?}"));
        }
    }

    #[test]
    fn invalidation_is_a_deregister() {
        // An invalidated region leaves the lifecycle cleanly…
        let evs = vec![
            TraceEvent::MrRegister {
                rank: 0,
                key: 3,
                addr: 0,
                len: 4096,
                cached: true,
            },
            TraceEvent::MrInvalidated { rank: 0, key: 3 },
        ];
        let r = audit(&evs).expect("invalidation closes the lifecycle");
        assert_eq!(r.mr_invalidated, 1);
        assert_eq!(r.mr_leaked, 0);

        // …but invalidating a pinned region is use-after-free.
        let evs = vec![
            TraceEvent::MrRegister {
                rank: 0,
                key: 3,
                addr: 0,
                len: 4096,
                cached: true,
            },
            TraceEvent::MrPin { rank: 0, key: 3 },
            TraceEvent::MrInvalidated { rank: 0, key: 3 },
        ];
        let errs = audit(&evs).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("outstanding pin")),
            "{errs:?}"
        );
    }

    #[test]
    fn reattach_must_replay_full_journal() {
        let ok = TraceEvent::CtrlReattach {
            client: 1,
            epoch: 1,
            journaled: 3,
            replayed: 3,
        };
        let r = audit(&[ok]).expect("full replay is clean");
        assert_eq!(r.reattaches, 1);

        let short = TraceEvent::CtrlReattach {
            client: 1,
            epoch: 1,
            journaled: 3,
            replayed: 2,
        };
        let errs = audit(&[short]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("resource lost")), "{errs:?}");
    }

    #[test]
    fn crash_must_pair_with_respawn() {
        let crash = TraceEvent::DaemonCrash { node: 0, epoch: 1 };
        let respawn = TraceEvent::DaemonRespawn { node: 0, epoch: 1 };
        let r = audit(&[crash, respawn]).expect("paired incarnation");
        assert_eq!(r.daemon_crashes, 1);

        let errs = audit(&[crash]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not recovered")), "{errs:?}");

        // Same epoch number on a *different* node is a separate pairing.
        let other = TraceEvent::DaemonCrash { node: 1, epoch: 1 };
        let errs = audit(&[crash, respawn, other]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("node1")), "{errs:?}");
    }

    #[test]
    fn ctrl_events_counted() {
        let evs = vec![
            TraceEvent::CtrlTimeout { client: 1, seq: 4 },
            TraceEvent::CtrlRetry {
                client: 1,
                seq: 4,
                attempt: 1,
            },
            TraceEvent::CtrlReplay {
                node: 0,
                client: 1,
                seq: 4,
            },
            TraceEvent::LeaseReclaim {
                node: 0,
                client: 2,
                objects: 3,
            },
            TraceEvent::OffloadDegraded { rank: 1 },
        ];
        let r = audit(&evs).expect("ctrl events alone are clean");
        assert_eq!(r.ctrl_timeouts, 1);
        assert_eq!(r.ctrl_retries, 1);
        assert_eq!(r.ctrl_replays, 1);
        assert_eq!(r.lease_reclaims, 1);
        assert_eq!(r.offload_degraded, 1);
    }

    #[test]
    fn spans_must_pair_exactly() {
        use crate::metrics::Phase;
        let open = TraceEvent::SpanOpen {
            rank: 0,
            id: 42,
            phase: Phase::RtsWait,
        };
        let close = TraceEvent::SpanClose {
            rank: 0,
            id: 42,
            phase: Phase::RtsWait,
        };
        let r = audit(&[open, close]).expect("paired span is clean");
        assert_eq!(r.spans_closed, 1);

        // Dangling: opened but never closed before finalize.
        let errs = audit(&[open]).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("never closed") && e.contains("RtsWait") && e.contains("42")),
            "{errs:?}"
        );

        // Double close.
        let errs = audit(&[open, close, close]).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("dangling or double close") && e.contains("42")),
            "{errs:?}"
        );

        // Close without any open.
        let errs = audit(&[close]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("dangling or double close")),
            "{errs:?}"
        );

        // Re-open while still open (same message id).
        let reopen = TraceEvent::SpanOpen {
            rank: 0,
            id: 42,
            phase: Phase::RndvRead,
        };
        let errs = audit(&[open, reopen]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("span leak")), "{errs:?}");

        // Phase mismatch between open and close.
        let wrong_close = TraceEvent::SpanClose {
            rank: 0,
            id: 42,
            phase: Phase::RndvWrite,
        };
        let errs = audit(&[open, wrong_close]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("closed as RndvWrite")),
            "{errs:?}"
        );

        // Same id on a different rank is a separate span.
        let other_rank = TraceEvent::SpanOpen {
            rank: 1,
            id: 42,
            phase: Phase::Eager,
        };
        let other_close = TraceEvent::SpanClose {
            rank: 1,
            id: 42,
            phase: Phase::Eager,
        };
        let r = audit(&[open, other_rank, close, other_close]).expect("per-rank spans");
        assert_eq!(r.spans_closed, 2);
    }

    #[test]
    fn lifecycle_events_are_counted_and_invariant_neutral() {
        // MsgLife annotations must never trip protocol invariants: a
        // stream of nothing but lifecycle events is clean, and mixing
        // them into a handshake changes nothing but the count.
        let life = |stage, t| TraceEvent::MsgLife {
            at: 0,
            src: 0,
            dst: 1,
            seq: 0,
            stage,
            t,
            len: 64,
        };
        let r = audit(&[
            life(MsgStage::Post, 100),
            life(MsgStage::Doorbell, 250),
            life(MsgStage::Wire, 900),
            life(MsgStage::Complete, 1000),
        ])
        .expect("lifecycle-only stream is clean");
        assert_eq!(r.lifecycle_events, 4);
        assert_eq!(r.events_dropped, 0, "audit never invents drops");

        let evs = vec![
            life(MsgStage::Post, 10),
            TraceEvent::PacketTx {
                from: 0,
                to: 1,
                kind: PacketKind::Rts,
                seq: 0,
                len: 1 << 16,
            },
            TraceEvent::PacketTx {
                from: 1,
                to: 0,
                kind: PacketKind::Done,
                seq: 0,
                len: 1 << 16,
            },
            life(MsgStage::Complete, 5000),
        ];
        let r = audit(&evs).expect("annotated handshake is clean");
        assert_eq!(r.rts_matched, 1);
        assert_eq!(r.lifecycle_events, 2);
    }

    #[test]
    fn fault_events_counted() {
        let evs = vec![
            TraceEvent::WrFault {
                rank: 0,
                peer: 1,
                wr_id: 42,
                transient: true,
            },
            TraceEvent::WrRetry {
                rank: 0,
                peer: 1,
                wr_id: 42,
                attempt: 2,
            },
            TraceEvent::TransportFail {
                rank: 0,
                peer: 1,
                seq: 3,
            },
        ];
        let r = audit(&evs).expect("fault events alone are clean");
        assert_eq!(r.wr_faults, 1);
        assert_eq!(r.wr_retries, 1);
        assert_eq!(r.transport_failures, 1);
    }
}
