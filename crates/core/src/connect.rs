//! Lazy connection establishment: the connect-request control channel.
//!
//! The eager all-pairs bootstrap exchanged endpoints for every `(r, j)`
//! pair up front — O(ranks²) QPs and ring buffers per world, which is
//! what capped the simulated cluster at a handful of ranks. Instead,
//! ranks now allocate a pair's resources *on first touch*: the first
//! `isend`/`irecv` toward a peer allocates the local half (QP, inbound
//! ring, staging region) and posts a [`ConnMsg::Req`] carrying the
//! endpoint through this directory. The peer allocates its half
//! passively when the request arrives and answers with a
//! [`ConnMsg::Ack`]; when both sides initiate at once (cross-connect),
//! each wires from the other's `Req` and no `Ack` flows.
//!
//! The directory models the launcher's out-of-band PMI channel:
//! delivery is charged one wire latency through the simulation
//! scheduler (deterministic — a `call_after` event, not host-thread
//! timing), and the target's progress event is notified so a rank
//! blocked in `wait` wakes up to serve the handshake.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Scheduler, SimDuration, SimEvent};

use crate::engine::PeerEndpoint;
use crate::types::Rank;

/// A connection-management frame (never touches the data rings).
pub(crate) enum ConnMsg {
    /// First touch: `from` allocated its half of the pair and advertises
    /// the endpoint the receiver should write toward.
    Req { from: Rank, ep: PeerEndpoint },
    /// The passive side's answer: its freshly allocated endpoint.
    Ack { from: Rank, ep: PeerEndpoint },
}

struct RankSlot {
    /// The rank's progress event, registered at engine creation;
    /// notified on every delivery so blocked ranks serve handshakes.
    event: Option<SimEvent>,
    mailbox: VecDeque<ConnMsg>,
}

/// Shared per-world connect-request directory (one per `launch`).
pub struct ConnDirectory {
    latency: SimDuration,
    inner: Mutex<Vec<RankSlot>>,
    /// Messages posted so far (drop-injection op counter).
    posted: Mutex<u64>,
    /// Half-open drop window `[start, end)` over the posted counter:
    /// messages whose ordinal falls inside are silently discarded
    /// (deterministic lost-handshake injection for retry tests).
    drop_window: Mutex<Option<(u64, u64)>>,
}

impl ConnDirectory {
    /// Directory for an `n`-rank world; messages are delivered after
    /// `latency` of simulated time.
    pub fn new(n: usize, latency: SimDuration) -> Arc<ConnDirectory> {
        Arc::new(ConnDirectory {
            latency,
            inner: Mutex::new(
                (0..n)
                    .map(|_| RankSlot {
                        event: None,
                        mailbox: VecDeque::new(),
                    })
                    .collect(),
            ),
            posted: Mutex::new(0),
            drop_window: Mutex::new(None),
        })
    }

    /// Silently drop the next `count` messages posted after skipping
    /// `after` more (models lost REQ/ACK handshake frames). Windows
    /// don't stack; the last call wins.
    pub fn inject_drop_after(&self, after: u64, count: u64) {
        let base = *self.posted.lock();
        *self.drop_window.lock() = Some((base + after, base + after + count));
    }

    /// Register `rank`'s progress event so deliveries wake it.
    pub(crate) fn register(&self, rank: Rank, event: SimEvent) {
        self.inner.lock()[rank].event = Some(event);
    }

    /// Deliver `msg` to `to` after the directory latency.
    pub(crate) fn post(self: &Arc<Self>, sched: &Scheduler, to: Rank, msg: ConnMsg) {
        let ordinal = {
            let mut posted = self.posted.lock();
            let o = *posted;
            *posted += 1;
            o
        };
        if let Some((start, end)) = *self.drop_window.lock() {
            if (start..end).contains(&ordinal) {
                return; // injected frame loss
            }
        }
        let dir = self.clone();
        sched.call_after(self.latency, move |s| {
            let mut inner = dir.inner.lock();
            let slot = &mut inner[to];
            slot.mailbox.push_back(msg);
            if let Some(ev) = slot.event.clone() {
                drop(inner);
                ev.notify_all(s);
            }
        });
    }

    /// Move every delivered message for `rank` into `out`.
    pub(crate) fn drain(&self, rank: Rank, out: &mut Vec<ConnMsg>) {
        let mut inner = self.inner.lock();
        out.extend(inner[rank].mailbox.drain(..));
    }

    /// Whether any message is still queued (for tests/diagnostics).
    pub fn idle(&self) -> bool {
        self.inner.lock().iter().all(|s| s.mailbox.is_empty())
    }
}
