//! Public MPI-facing types: ranks, tags, sources, statuses, datatypes and
//! reduction operators.

use std::fmt;

/// A rank within a communicator.
pub type Rank = usize;

/// A message tag.
pub type Tag = u32;

/// Receive-source selector (`MPI_ANY_SOURCE` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match a specific rank.
    Rank(Rank),
    /// Match any source. Per the paper's sequence-id design, an
    /// any-source receive locks sequence assignment for later receives
    /// until it is matched (§IV-B3).
    Any,
}

/// Receive-tag selector (`MPI_ANY_TAG` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    Tag(Tag),
    Any,
}

impl TagSel {
    pub fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Tag(t) => t == tag,
            TagSel::Any => true,
        }
    }
}

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// The matched sender.
    pub source: Rank,
    /// The matched tag.
    pub tag: Tag,
    /// Bytes actually received.
    pub len: u64,
}

/// A non-blocking request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(pub u64);

/// Which transport operation a [`MpiError::Transport`] failure happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportOp {
    /// Eager packet ring write.
    EagerWrite,
    /// Control packet ring write (RTS/RTR/completion traffic).
    CtrlWrite,
    /// Rendezvous sender-first RDMA READ (receiver side).
    RndvRead,
    /// Rendezvous receiver-first RDMA WRITE (sender side).
    RndvWrite,
}

impl fmt::Display for TransportOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportOp::EagerWrite => write!(f, "eager ring write"),
            TransportOp::CtrlWrite => write!(f, "control ring write"),
            TransportOp::RndvRead => write!(f, "rendezvous RDMA read"),
            TransportOp::RndvWrite => write!(f, "rendezvous RDMA write"),
        }
    }
}

/// MPI-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Message longer than the posted receive buffer (truncation). The
    /// paper: "The sending data should be larger than the receiving data
    /// so the receiver will issue an MPI error" (§IV-B3).
    Truncated { got: u64, capacity: u64 },
    /// Rank out of range.
    BadRank(Rank),
    /// Unknown request handle (already completed or never issued).
    BadRequest,
    /// Resource exhaustion (e.g. Phi memory for staging).
    OutOfMemory,
    /// A bounded engine table (requests, inflight WRs) is full. Unlike
    /// [`MpiError::OutOfMemory`] this is backpressure, not a fatal
    /// condition: the caller should drive progress and retry.
    ResourceExhausted,
    /// A transport operation owned by this request failed permanently
    /// (fatal completion status, or transient errors past `retry_limit`).
    /// Only the owning request fails; the rank and all other traffic
    /// stay alive.
    Transport {
        status: verbs::WcStatus,
        op: TransportOp,
        /// Completed post attempts, including the first.
        attempts: u32,
    },
    /// The remote end of this transfer hit a permanent transport fault
    /// (we received its NACK); `peer` is the remote rank and `seq` the
    /// pair sequence id of the dead message.
    RemoteTransport { peer: Rank, seq: u64 },
    /// The peer rank has been detected as failed (heartbeat staleness
    /// past the dead line, or a QP toward it flushed): the operation can
    /// never complete. ULFM `MPI_ERR_PROC_FAILED` analogue.
    PeerFailed(Rank),
    /// The communicator was revoked (`Comm::revoke()`): pending and new
    /// operations drain with this error until `Comm::shrink()` rebuilds
    /// a surviving-ranks world. ULFM `MPI_ERR_REVOKED` analogue.
    Revoked,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Truncated { got, capacity } => {
                write!(
                    f,
                    "message truncated: {got} bytes into a {capacity}-byte buffer"
                )
            }
            MpiError::BadRank(r) => write!(f, "rank {r} out of range"),
            MpiError::BadRequest => write!(f, "unknown request handle"),
            MpiError::OutOfMemory => write!(f, "out of simulated memory"),
            MpiError::ResourceExhausted => {
                write!(f, "engine table exhausted; progress and retry")
            }
            MpiError::Transport {
                status,
                op,
                attempts,
            } => {
                write!(f, "{op} failed with {status:?} after {attempts} attempt(s)")
            }
            MpiError::RemoteTransport { peer, seq } => {
                write!(
                    f,
                    "remote transport failure at rank {peer} (pair seq {seq})"
                )
            }
            MpiError::PeerFailed(r) => write!(f, "peer rank {r} failed"),
            MpiError::Revoked => write!(f, "communicator revoked"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Element datatypes for collectives with arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datatype {
    U8,
    I32,
    I64,
    F32,
    F64,
}

impl Datatype {
    pub fn size(self) -> u64 {
        match self {
            Datatype::U8 => 1,
            Datatype::I32 | Datatype::F32 => 4,
            Datatype::I64 | Datatype::F64 => 8,
        }
    }
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    /// Combine `b` into `a` elementwise, interpreting both as `dtype`.
    pub fn apply(self, dtype: Datatype, a: &mut [u8], b: &[u8]) {
        assert_eq!(a.len(), b.len(), "reduce length mismatch");
        let es = dtype.size() as usize;
        assert_eq!(
            a.len() % es,
            0,
            "reduce buffer not a whole number of elements"
        );
        match dtype {
            Datatype::U8 => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = combine_int(self, u64::from(*x), u64::from(*y)) as u8;
                }
            }
            Datatype::I32 => each_chunk(a, b, 4, |x, y| {
                let xv = i32::from_le_bytes(x.try_into().unwrap());
                let yv = i32::from_le_bytes(y.try_into().unwrap());
                let r = match self {
                    ReduceOp::Sum => xv.wrapping_add(yv),
                    ReduceOp::Min => xv.min(yv),
                    ReduceOp::Max => xv.max(yv),
                };
                x.copy_from_slice(&r.to_le_bytes());
            }),
            Datatype::I64 => each_chunk(a, b, 8, |x, y| {
                let xv = i64::from_le_bytes(x.try_into().unwrap());
                let yv = i64::from_le_bytes(y.try_into().unwrap());
                let r = match self {
                    ReduceOp::Sum => xv.wrapping_add(yv),
                    ReduceOp::Min => xv.min(yv),
                    ReduceOp::Max => xv.max(yv),
                };
                x.copy_from_slice(&r.to_le_bytes());
            }),
            Datatype::F32 => each_chunk(a, b, 4, |x, y| {
                let xv = f32::from_le_bytes(x.try_into().unwrap());
                let yv = f32::from_le_bytes(y.try_into().unwrap());
                let r = match self {
                    ReduceOp::Sum => xv + yv,
                    ReduceOp::Min => xv.min(yv),
                    ReduceOp::Max => xv.max(yv),
                };
                x.copy_from_slice(&r.to_le_bytes());
            }),
            Datatype::F64 => each_chunk(a, b, 8, |x, y| {
                let xv = f64::from_le_bytes(x.try_into().unwrap());
                let yv = f64::from_le_bytes(y.try_into().unwrap());
                let r = match self {
                    ReduceOp::Sum => xv + yv,
                    ReduceOp::Min => xv.min(yv),
                    ReduceOp::Max => xv.max(yv),
                };
                x.copy_from_slice(&r.to_le_bytes());
            }),
        }
    }
}

fn combine_int(op: ReduceOp, a: u64, b: u64) -> u64 {
    match op {
        ReduceOp::Sum => a.wrapping_add(b),
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
    }
}

fn each_chunk(a: &mut [u8], b: &[u8], es: usize, mut f: impl FnMut(&mut [u8], &[u8])) {
    for (x, y) in a.chunks_exact_mut(es).zip(b.chunks_exact(es)) {
        f(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagsel_matching() {
        assert!(TagSel::Any.matches(7));
        assert!(TagSel::Tag(7).matches(7));
        assert!(!TagSel::Tag(7).matches(8));
    }

    #[test]
    fn reduce_f64_sum() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..4 {
            a.extend_from_slice(&(i as f64).to_le_bytes());
            b.extend_from_slice(&(10.0 * i as f64).to_le_bytes());
        }
        ReduceOp::Sum.apply(Datatype::F64, &mut a, &b);
        for i in 0..4 {
            let v = f64::from_le_bytes(a[i * 8..(i + 1) * 8].try_into().unwrap());
            assert_eq!(v, 11.0 * i as f64);
        }
    }

    #[test]
    fn reduce_i32_minmax() {
        let mut a = (5i32).to_le_bytes().to_vec();
        let b = (3i32).to_le_bytes().to_vec();
        ReduceOp::Min.apply(Datatype::I32, &mut a, &b);
        assert_eq!(i32::from_le_bytes(a.clone().try_into().unwrap()), 3);
        ReduceOp::Max.apply(Datatype::I32, &mut a, &b);
        assert_eq!(i32::from_le_bytes(a.try_into().unwrap()), 3);
    }

    #[test]
    fn reduce_u8_sum_wraps() {
        let mut a = vec![250u8];
        ReduceOp::Sum.apply(Datatype::U8, &mut a, &[10u8]);
        assert_eq!(a[0], 4); // wrapping
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(Datatype::U8.size(), 1);
        assert_eq!(Datatype::F32.size(), 4);
        assert_eq!(Datatype::F64.size(), 8);
        assert_eq!(Datatype::I64.size(), 8);
    }
}
