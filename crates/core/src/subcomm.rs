//! Sub-communicators: `MPI_Comm_split` over DCFA-MPI.
//!
//! A [`SubComm`] is a view over the parent communicator: members are
//! selected by `color`, ordered by `(key, parent_rank)`, and traffic is
//! namespaced by shifting application tags into a per-color tag space so
//! concurrent sub-communicators on the same parent never cross-match.

use std::sync::Arc;

use fabric::{Buffer, Cluster, MemRef};
use simcore::Ctx;

use crate::collectives;
use crate::comm::{Comm, Communicator};
use crate::types::{MpiError, Rank, Request, Src, Status, Tag, TagSel};

/// Application tags inside a sub-communicator must stay below this.
pub const SUBCOMM_TAG_SPACE: Tag = 1 << 20;

/// A communicator over a subset of the parent's ranks.
pub struct SubComm<'a> {
    parent: &'a mut Comm,
    /// Parent ranks of the members, in sub-rank order.
    members: Vec<Rank>,
    my_idx: usize,
    tag_base: Tag,
}

/// Split the parent communicator (`MPI_Comm_split`). Collective over the
/// parent: every rank calls it with its `color` (group selector) and
/// `key` (ordering hint; ties broken by parent rank). Returns `None` for
/// ranks that passed `color == u32::MAX` (`MPI_UNDEFINED`).
pub fn split<'a>(
    parent: &'a mut Comm,
    ctx: &mut Ctx,
    color: u32,
    key: i32,
) -> Result<Option<SubComm<'a>>, MpiError> {
    let n = parent.size();
    let me = parent.rank();
    // Allgather (color, key) — 8 bytes per rank.
    let mine = parent.alloc(8)?;
    let mut enc = color.to_le_bytes().to_vec();
    enc.extend_from_slice(&key.to_le_bytes());
    parent.write(&mine, 0, &enc);
    let all = parent.alloc(8 * n as u64)?;
    collectives::allgather(parent, ctx, &mine, &all)?;
    let bytes = parent.read_vec(&all);
    parent.free(&mine);
    parent.free(&all);

    if color == u32::MAX {
        return Ok(None);
    }
    // Collect members of my color, ordered by (key, parent rank).
    let mut members: Vec<(i32, Rank)> = (0..n)
        .filter_map(|r| {
            let c = u32::from_le_bytes(bytes[r * 8..r * 8 + 4].try_into().unwrap());
            let k = i32::from_le_bytes(bytes[r * 8 + 4..r * 8 + 8].try_into().unwrap());
            (c == color).then_some((k, r))
        })
        .collect();
    members.sort();
    let members: Vec<Rank> = members.into_iter().map(|(_, r)| r).collect();
    let my_idx = members
        .iter()
        .position(|&r| r == me)
        .expect("I am in my color");
    // Tag namespace per color (colors expected small; wraps harmlessly
    // within the reserved band otherwise).
    let tag_base = SUBCOMM_TAG_SPACE * ((color % 2048) + 1);
    Ok(Some(SubComm {
        parent,
        members,
        my_idx,
        tag_base,
    }))
}

impl<'a> SubComm<'a> {
    /// Build a sub-communicator from an agreed member list (the shrink
    /// path: members and tag base were fixed by the committed epoch, so
    /// every survivor constructs an identical view without traffic).
    pub(crate) fn from_members(
        parent: &'a mut Comm,
        members: Vec<Rank>,
        my_idx: usize,
        tag_base: Tag,
    ) -> SubComm<'a> {
        debug_assert!(members[my_idx] == parent.rank());
        SubComm {
            parent,
            members,
            my_idx,
            tag_base,
        }
    }
}

impl SubComm<'_> {
    /// Parent rank of sub-rank `r`.
    pub fn parent_rank(&self, r: Rank) -> Rank {
        self.members[r]
    }

    /// The parent communicator.
    pub fn parent(&mut self) -> &mut Comm {
        self.parent
    }

    fn xlate_tag(&self, tag: Tag) -> Tag {
        // Application tags must stay below SUBCOMM_TAG_SPACE; internal
        // collective tags (high band) shift wrapping, which keeps them
        // disjoint across colors because the per-color offset differs.
        debug_assert!(
            !(SUBCOMM_TAG_SPACE..0xF000_0000).contains(&tag),
            "sub-communicator application tags must be < 2^20"
        );
        self.tag_base.wrapping_add(tag)
    }
}

impl Communicator for SubComm<'_> {
    fn rank(&self) -> Rank {
        self.my_idx
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn mem(&self) -> MemRef {
        self.parent.mem()
    }

    fn cluster(&self) -> &Arc<Cluster> {
        self.parent.cluster()
    }

    fn isend(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        dst: Rank,
        tag: Tag,
    ) -> Result<Request, MpiError> {
        if dst >= self.members.len() {
            return Err(MpiError::BadRank(dst));
        }
        let pdst = self.members[dst];
        let ptag = self.xlate_tag(tag);
        self.parent.isend(ctx, buf, pdst, ptag)
    }

    fn irecv(
        &mut self,
        ctx: &mut Ctx,
        buf: &Buffer,
        src: Src,
        tag: TagSel,
    ) -> Result<Request, MpiError> {
        let psrc = match src {
            Src::Any => Src::Any,
            Src::Rank(r) => {
                if r >= self.members.len() {
                    return Err(MpiError::BadRank(r));
                }
                Src::Rank(self.members[r])
            }
        };
        let ptag = match tag {
            TagSel::Any => TagSel::Any,
            TagSel::Tag(t) => TagSel::Tag(self.xlate_tag(t)),
        };
        self.parent.irecv(ctx, buf, psrc, ptag)
    }

    fn wait(&mut self, ctx: &mut Ctx, req: Request) -> Result<Status, MpiError> {
        let st = self.parent.wait(ctx, req)?;
        // Translate the status back into the sub-communicator's frame.
        let source = self
            .members
            .iter()
            .position(|&r| r == st.source)
            .unwrap_or(st.source);
        let tag = st.tag.wrapping_sub(self.tag_base);
        Ok(Status {
            source,
            tag,
            len: st.len,
        })
    }
}
