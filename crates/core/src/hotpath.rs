//! Hot-path allocation accounting hooks.
//!
//! The paper's argument is that the message path must not pay for
//! copies or allocator traffic; `crates/core/tests/alloc_hotpath.rs`
//! enforces that claim with a counting global allocator. The engine
//! brackets its MPI-library code with [`enter`] ("this thread is on
//! the hot path") and brackets excursions into the *device model* —
//! the simulated HCA, fabric DMA and simulator parking, which model
//! hardware rather than library software — with [`pause`]. The
//! counting allocator then attributes an allocation to the hot path
//! exactly when [`armed`] is true on the allocating thread.
//!
//! All state is thread-local (`Cell<u32>` depth counters, const-init
//! so TLS access itself never allocates), making the hooks free to
//! leave compiled in: production builds simply never read them.

use std::cell::Cell;

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static PAUSE: Cell<u32> = const { Cell::new(0) };
}

/// Whether the current thread is inside a hot-path section and not
/// paused for a device-model excursion.
pub fn armed() -> bool {
    DEPTH.with(|d| d.get()) > 0 && PAUSE.with(|p| p.get()) == 0
}

/// RAII marker for a hot-path section (see [`enter`]).
pub struct HotSection(());

/// Mark the current thread as executing MPI-library hot-path code
/// until the returned guard drops. Nests.
pub fn enter() -> HotSection {
    DEPTH.with(|d| d.set(d.get() + 1));
    HotSection(())
}

impl Drop for HotSection {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// RAII marker for a device-model excursion (see [`pause`]).
pub struct DevicePause(());

/// Suspend hot-path attribution while the thread runs device-model or
/// simulator-internal code (posting to the simulated HCA, parking the
/// simulated process). Nests.
pub fn pause() -> DevicePause {
    PAUSE.with(|p| p.set(p.get() + 1));
    DevicePause(())
}

impl Drop for DevicePause {
    fn drop(&mut self) {
        PAUSE.with(|p| p.set(p.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_nests_and_pauses() {
        assert!(!armed());
        let a = enter();
        assert!(armed());
        {
            let b = enter();
            assert!(armed());
            let p = pause();
            assert!(!armed());
            {
                let q = pause();
                assert!(!armed());
                drop(q);
            }
            assert!(!armed());
            drop(p);
            assert!(armed());
            drop(b);
        }
        assert!(armed());
        drop(a);
        assert!(!armed());
    }
}
