//! Bandwidth channels: serialized shared resources (a PCIe direction, an
//! InfiniBand egress/ingress port) that successive transfers queue on.

use simcore::{transfer_time, SimDuration, SimTime};

/// A serialized bandwidth resource. Transfers reserve the channel in call
/// order; a reservation starting while the channel is busy queues behind the
/// previous one (head-of-line, matching a DMA engine or wire).
#[derive(Debug)]
pub struct BwChannel {
    name: &'static str,
    busy_until: SimTime,
    /// Total bytes ever reserved (utilization accounting).
    total_bytes: u64,
    /// Total busy time ever reserved.
    total_busy: SimDuration,
    /// Total reservations ever made.
    total_ops: u64,
}

/// Counter snapshot of one [`BwChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    pub name: &'static str,
    /// Reservations made (individual transfers serialized on the channel).
    pub ops: u64,
    /// Lifetime bytes moved.
    pub bytes: u64,
    /// Lifetime busy duration.
    pub busy: SimDuration,
}

impl BwChannel {
    pub fn new(name: &'static str) -> Self {
        BwChannel {
            name,
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            total_busy: SimDuration::ZERO,
            total_ops: 0,
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Earliest instant a new transfer could start.
    pub fn ready_at(&self) -> SimTime {
        self.busy_until
    }

    /// Reserve the channel for `duration` starting no earlier than `after`.
    /// Returns the actual `(start, end)`.
    pub fn reserve(&mut self, after: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = after.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.total_busy += duration;
        self.total_ops += 1;
        (start, end)
    }

    /// Reserve for a transfer of `bytes` at `rate` bytes/sec.
    pub fn reserve_bytes(&mut self, after: SimTime, bytes: u64, rate: f64) -> (SimTime, SimTime) {
        self.total_bytes += bytes;
        self.reserve(after, transfer_time(bytes, rate))
    }

    /// Reserve a precomputed stream duration while accounting `bytes`
    /// (used when the stream rate is set by another segment of the path).
    pub fn reserve_stream(
        &mut self,
        after: SimTime,
        duration: SimDuration,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        self.total_bytes += bytes;
        self.reserve(after, duration)
    }

    /// Lifetime bytes moved through this channel.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Lifetime busy duration.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Lifetime reservation count.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            name: self.name,
            ops: self.total_ops,
            bytes: self.total_bytes,
            busy: self.total_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = BwChannel::new("test");
        let (s1, e1) = ch.reserve_bytes(SimTime(0), 1000, 1e9); // 1us
        assert_eq!((s1, e1), (SimTime(0), SimTime(1000)));
        // Second transfer requested at t=0 queues behind the first.
        let (s2, e2) = ch.reserve_bytes(SimTime(0), 1000, 1e9);
        assert_eq!((s2, e2), (SimTime(1000), SimTime(2000)));
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = BwChannel::new("test");
        let (s, e) = ch.reserve_bytes(SimTime(5000), 500, 1e9);
        assert_eq!((s, e), (SimTime(5000), SimTime(5500)));
        assert_eq!(ch.ready_at(), SimTime(5500));
    }

    #[test]
    fn accounting_accumulates() {
        let mut ch = BwChannel::new("test");
        ch.reserve_bytes(SimTime(0), 100, 1e9);
        ch.reserve_bytes(SimTime(0), 200, 1e9);
        assert_eq!(ch.total_bytes(), 300);
        assert_eq!(ch.total_busy(), SimDuration::from_nanos(300));
    }

    #[test]
    fn zero_duration_reservation() {
        let mut ch = BwChannel::new("test");
        let (s, e) = ch.reserve(SimTime(10), SimDuration::ZERO);
        assert_eq!(s, e);
    }
}
