//! The simulated cluster: nodes with host/Phi memory, PCIe links, HCAs and
//! the InfiniBand network, plus the data-movement primitives every higher
//! layer is built from.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Completion, Scheduler, SimDuration, SimTime};

use crate::channel::BwChannel;
use crate::config::{ClusterConfig, Domain};
use crate::faults::{LinkFault, LinkFaultKind};
use crate::health::HealthBoard;
use crate::mem::{Buffer, MemRef, Memory, NodeId, OutOfMemory};

/// A scheduled data movement: channel reservations are made at post time
/// (deterministically), bytes land in the destination and `completion`
/// fires at `end`.
#[derive(Clone)]
pub struct Transfer {
    /// When the transfer actually starts (after queueing on busy channels).
    pub start: SimTime,
    /// When the last byte is delivered.
    pub end: SimTime,
    /// Fires at `end`.
    pub completion: Completion,
}

struct NodeState {
    host_mem: Arc<Mutex<Memory>>,
    phi_mem: Arc<Mutex<Memory>>,
    /// PCIe, host→Phi direction (offload copy-in, HCA writes into Phi mem).
    pci_h2p: Mutex<BwChannel>,
    /// PCIe, Phi→host direction (offload sync/copy-out, HCA reads from Phi).
    pci_p2h: Mutex<BwChannel>,
    /// InfiniBand egress port.
    ib_egress: Mutex<BwChannel>,
    /// InfiniBand ingress port.
    ib_ingress: Mutex<BwChannel>,
}

/// The whole simulated machine. Shared via `Arc` by every device model and
/// simulated process.
pub struct Cluster {
    cfg: ClusterConfig,
    sched: Scheduler,
    nodes: Vec<NodeState>,
    /// Armed per-link fault plans (see [`crate::faults`]). Device models
    /// consult these on every posted data operation.
    link_faults: Mutex<Vec<LinkFault>>,
    /// Rank-health board, installed by the MPI world at launch (see
    /// [`crate::health`]). `None` for bare fabric-level tests.
    health: Mutex<Option<Arc<HealthBoard>>>,
}

impl Cluster {
    pub fn new(sched: Scheduler, cfg: ClusterConfig) -> Arc<Cluster> {
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let node = NodeId(i);
                NodeState {
                    host_mem: Arc::new(Mutex::new(Memory::new(
                        MemRef {
                            node,
                            domain: Domain::Host,
                        },
                        cfg.host_mem_capacity,
                    ))),
                    phi_mem: Arc::new(Mutex::new(Memory::new(
                        MemRef {
                            node,
                            domain: Domain::Phi,
                        },
                        cfg.phi_mem_capacity,
                    ))),
                    pci_h2p: Mutex::new(BwChannel::new("pci-h2p")),
                    pci_p2h: Mutex::new(BwChannel::new("pci-p2h")),
                    ib_egress: Mutex::new(BwChannel::new("ib-egress")),
                    ib_ingress: Mutex::new(BwChannel::new("ib-ingress")),
                }
            })
            .collect();
        Arc::new(Cluster {
            cfg,
            sched,
            nodes,
            link_faults: Mutex::new(Vec::new()),
            health: Mutex::new(None),
        })
    }

    /// Install the rank-health board (done once by the MPI world at
    /// launch, before any rank runs).
    pub fn install_health(&self, board: Arc<HealthBoard>) {
        *self.health.lock() = Some(board);
    }

    /// The installed rank-health board, if any.
    pub fn health(&self) -> Option<Arc<HealthBoard>> {
        self.health.lock().clone()
    }

    /// Fail-stop `rank` now: record ground truth on the health board and
    /// run its teardown hook (erroring its QPs so in-flight work
    /// completions flush). Panics if no board is installed.
    pub fn kill_rank(&self, rank: usize) {
        let board = self.health().expect("no health board installed");
        board.kill(&self.sched, rank, self.sched.now());
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[id.0]
    }

    // ---- fault plans -------------------------------------------------------

    /// Arm a per-link fault plan. The plan fires once, on the data
    /// operation posted `after_ops` matching operations from now.
    pub fn inject_link_fault(&self, fault: LinkFault) {
        self.link_faults.lock().push(fault);
    }

    /// Consult the fault plans for one posted data operation initiated by
    /// `from` targeting `to`. Every matching plan's skip counter ticks;
    /// the first exhausted plan fires (and is removed). Called by the
    /// device layers at post time.
    pub fn take_link_fault(&self, from: NodeId, to: NodeId) -> Option<LinkFaultKind> {
        let mut plans = self.link_faults.lock();
        let mut fired = None;
        plans.retain_mut(|p| {
            if !p.matches(from, to) {
                return true;
            }
            if p.after_ops > 0 {
                p.after_ops -= 1;
                return true;
            }
            if fired.is_none() {
                fired = Some(p.kind);
                return false;
            }
            true
        });
        fired
    }

    /// Number of armed fault plans still waiting to fire.
    pub fn pending_link_faults(&self) -> usize {
        self.link_faults.lock().len()
    }

    fn memory(&self, mem: MemRef) -> &Arc<Mutex<Memory>> {
        match mem.domain {
            Domain::Host => &self.node(mem.node).host_mem,
            Domain::Phi => &self.node(mem.node).phi_mem,
        }
    }

    // ---- memory plane -----------------------------------------------------

    /// Allocate in a domain with explicit alignment.
    pub fn alloc(&self, mem: MemRef, len: u64, align: u64) -> Result<Buffer, OutOfMemory> {
        self.memory(mem).lock().alloc(len, align)
    }

    /// Allocate page-aligned.
    pub fn alloc_pages(&self, mem: MemRef, len: u64) -> Result<Buffer, OutOfMemory> {
        self.memory(mem).lock().alloc_pages(len)
    }

    /// Free a buffer.
    pub fn free(&self, buf: &Buffer) {
        self.memory(buf.mem).lock().free(buf);
    }

    /// Bytes currently allocated in a domain.
    pub fn mem_used(&self, mem: MemRef) -> u64 {
        self.memory(mem).lock().used()
    }

    /// Write bytes (content plane only — charge time separately if needed).
    pub fn write(&self, buf: &Buffer, offset: u64, data: &[u8]) {
        self.memory(buf.mem).lock().write(buf, offset, data);
    }

    /// Read bytes.
    pub fn read(&self, buf: &Buffer, offset: u64, out: &mut [u8]) {
        self.memory(buf.mem).lock().read(buf, offset, out);
    }

    /// Read a whole buffer.
    pub fn read_vec(&self, buf: &Buffer) -> Vec<u8> {
        self.memory(buf.mem).lock().read_vec(buf)
    }

    /// CPU memcpy duration for `bytes` within `domain` (caller sleeps this).
    pub fn copy_duration(&self, domain: Domain, bytes: u64) -> SimDuration {
        simcore::transfer_time(bytes, self.cfg.cost.copy_bw(domain))
    }

    /// CPU-driven local copy within one domain. Moves the bytes immediately
    /// and returns the duration the calling process must charge itself.
    pub fn local_copy(&self, src: &Buffer, dst: &Buffer) -> SimDuration {
        assert_eq!(src.mem, dst.mem, "local_copy must stay within one domain");
        assert_eq!(src.len, dst.len, "local_copy length mismatch");
        let data = self.read_vec(src);
        self.write(dst, 0, &data);
        self.copy_duration(src.mem.domain, src.len)
    }

    // ---- PCIe DMA engine (host <-> Phi within one node) --------------------

    /// Reserve the PCIe DMA-engine path between host and Phi of one node,
    /// without moving content. Returns `(start, end)` including DMA latency.
    pub fn reserve_pci_path(
        &self,
        node: NodeId,
        src_domain: Domain,
        bytes: u64,
        after: SimTime,
    ) -> (SimTime, SimTime) {
        let cost = &self.cfg.cost;
        let (chan, rate) = match src_domain {
            Domain::Host => (&self.node(node).pci_h2p, cost.pci_h2p_bw),
            Domain::Phi => (&self.node(node).pci_p2h, cost.pci_p2h_bw),
        };
        let (start, busy_end) = chan.lock().reserve_bytes(after, bytes, rate);
        (start, busy_end + cost.pci_dma_latency)
    }

    /// DMA-engine transfer between host and Phi memory of the same node
    /// (SCIF RMA, offload copy-in/out, offload-send-buffer sync).
    pub fn pci_dma(&self, src: &Buffer, dst: &Buffer, after: SimTime) -> Transfer {
        assert_eq!(src.mem.node, dst.mem.node, "pci_dma is intra-node");
        assert_ne!(
            src.mem.domain, dst.mem.domain,
            "pci_dma crosses the PCIe bus"
        );
        assert_eq!(src.len, dst.len, "pci_dma length mismatch");
        let (start, end) = self.reserve_pci_path(src.mem.node, src.mem.domain, src.len, after);
        self.finish_transfer(src, dst, start, end)
    }

    /// Like [`Cluster::pci_dma`] but capped at `rate` bytes/sec (modeling a
    /// software path — e.g. the Intel offload runtime — that cannot drive
    /// the DMA engine at full speed). The stream still occupies the real
    /// PCIe channel for its whole duration.
    pub fn pci_dma_at_rate(
        &self,
        src: &Buffer,
        dst: &Buffer,
        after: SimTime,
        rate: f64,
    ) -> Transfer {
        assert_eq!(src.mem.node, dst.mem.node, "pci_dma is intra-node");
        assert_ne!(
            src.mem.domain, dst.mem.domain,
            "pci_dma crosses the PCIe bus"
        );
        assert_eq!(src.len, dst.len, "pci_dma length mismatch");
        let cost = &self.cfg.cost;
        let (chan, hw_rate) = match src.mem.domain {
            Domain::Host => (&self.node(src.mem.node).pci_h2p, cost.pci_h2p_bw),
            Domain::Phi => (&self.node(src.mem.node).pci_p2h, cost.pci_p2h_bw),
        };
        let eff = rate.min(hw_rate);
        let (start, busy_end) = chan.lock().reserve_bytes(after, src.len, eff);
        let end = busy_end + cost.pci_dma_latency;
        self.finish_transfer(src, dst, start, end)
    }

    // ---- InfiniBand path ----------------------------------------------------

    /// End-to-end RDMA data movement between two registered buffers through
    /// the HCAs and the switch. `initiator` is the node whose HCA executes
    /// the work request: if it is the *destination* node, this is an RDMA
    /// READ and one extra wire latency is charged for the request packet.
    ///
    /// The path bandwidth is the minimum of: local HCA DMA read (slow when
    /// the source is Phi memory — the paper's bottleneck), the wire, and the
    /// remote HCA DMA write. Every traversed channel is reserved for the
    /// whole stream duration (cut-through, head-of-line queueing).
    pub fn ib_transfer(
        &self,
        src: &Buffer,
        dst: &Buffer,
        initiator: NodeId,
        after: SimTime,
    ) -> Transfer {
        assert_eq!(src.len, dst.len, "ib_transfer length mismatch");
        let (start, end) = self.reserve_ib_path(src.mem, dst.mem, src.len, initiator, after);
        self.finish_transfer(src, dst, start, end)
    }

    /// Reserve the InfiniBand path without moving content. Returns
    /// `(start, end)`; the caller schedules its own delivery at `end`.
    pub fn reserve_ib_path(
        &self,
        src: MemRef,
        dst: MemRef,
        bytes: u64,
        initiator: NodeId,
        after: SimTime,
    ) -> (SimTime, SimTime) {
        let cost = &self.cfg.cost;
        let read_bw = cost.hca_read_bw(src.domain);
        let write_bw = cost.hca_write_bw(dst.domain);
        let min_rate = read_bw.min(cost.ib_bw).min(write_bw);
        let dur = simcore::transfer_time(bytes, min_rate);

        let mut latency = cost.ib_latency;
        if initiator == dst.node && initiator != src.node {
            // RDMA READ: request hop to the remote HCA first.
            latency += cost.ib_latency;
        }

        // Collect the channels this stream occupies.
        let src_node = self.node(src.node);
        let dst_node = self.node(dst.node);
        let mut channels: Vec<&Mutex<BwChannel>> = Vec::with_capacity(4);
        if src.domain == Domain::Phi {
            channels.push(&src_node.pci_p2h);
        }
        if src.node != dst.node {
            channels.push(&src_node.ib_egress);
            channels.push(&dst_node.ib_ingress);
        }
        if dst.domain == Domain::Phi {
            channels.push(&dst_node.pci_h2p);
        }

        let mut start = after;
        for ch in &channels {
            start = start.max(ch.lock().ready_at());
        }
        for ch in &channels {
            ch.lock().reserve_stream(start, dur, bytes);
        }
        (start, start + dur + latency)
    }

    /// Schedule `f` at virtual time `t` (engine context). Convenience
    /// passthrough so device layers don't need their own scheduler handle.
    pub fn call_at<F>(&self, t: SimTime, f: F)
    where
        F: FnOnce(&Scheduler) + Send + 'static,
    {
        self.sched.call_at(t, f);
    }

    /// Move the bytes and fire the completion at `end`. Bytes are sampled at
    /// post time (the DMA engine reads the source as the transfer starts; a
    /// well-behaved protocol never mutates an in-flight buffer).
    fn finish_transfer(
        &self,
        src: &Buffer,
        dst: &Buffer,
        start: SimTime,
        end: SimTime,
    ) -> Transfer {
        let data = self.read_vec(src);
        let dst = dst.clone();
        let completion = Completion::new();
        let c2 = completion.clone();
        let mem = self.memory(dst.mem).clone();
        self.sched.call_at(end, move |s| {
            mem.lock().write(&dst, 0, &data);
            c2.complete_now(s);
        });
        Transfer {
            start,
            end,
            completion,
        }
    }

    /// Channel utilization for diagnostics and ablation benches:
    /// `(name, total_bytes, total_busy)` per channel of `node`.
    pub fn channel_stats(&self, node: NodeId) -> Vec<(&'static str, u64, SimDuration)> {
        self.fabric_stats(node)
            .channels
            .into_iter()
            .map(|c| (c.name, c.bytes, c.busy))
            .collect()
    }

    /// Full per-channel counter snapshot for one node.
    pub fn fabric_stats(&self, node: NodeId) -> FabricStats {
        let n = self.node(node);
        FabricStats {
            node,
            channels: [&n.pci_h2p, &n.pci_p2h, &n.ib_egress, &n.ib_ingress]
                .iter()
                .map(|c| c.lock().stats())
                .collect(),
        }
    }
}

/// Per-node fabric utilization snapshot (see [`Cluster::fabric_stats`]).
#[derive(Debug, Clone)]
pub struct FabricStats {
    pub node: NodeId,
    /// One entry per channel: PCIe h2p / p2h, IB egress / ingress.
    pub channels: Vec<crate::channel::ChannelStats>,
}

impl std::fmt::Display for FabricStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {}:", self.node)?;
        for c in &self.channels {
            write!(
                f,
                "\n  {:<10} ops {:>8}  bytes {:>12}  busy {:?}",
                c.name, c.ops, c.bytes, c.busy
            )?;
        }
        Ok(())
    }
}
