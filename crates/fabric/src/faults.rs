//! Cluster-level fault planning: per-link fault plans armed by node pair,
//! consumed by the device layers (the verbs HCA model consults the plan on
//! every posted data operation), plus the textual spec format used by
//! `repro --faults` and the DCFA control channel.

use crate::mem::NodeId;

/// What kind of completion error a planned fault produces. The fabric
/// layer is deliberately ignorant of verbs' `WcStatus`; the device model
/// maps these onto concrete wire statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Receiver-not-ready style: transient, retryable.
    Rnr,
    /// Wire retransmission exhaustion: transient, retryable.
    Retry,
    /// Protection/length violation: permanent.
    Fatal,
}

impl LinkFaultKind {
    pub fn is_transient(self) -> bool {
        matches!(self, LinkFaultKind::Rnr | LinkFaultKind::Retry)
    }
}

/// One planned fault: fail the data operation posted `after_ops` matching
/// operations from now on the scoped link. `from`/`to` of `None` match any
/// initiator / target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    pub after_ops: u64,
    pub kind: LinkFaultKind,
    pub from: Option<NodeId>,
    pub to: Option<NodeId>,
}

impl LinkFault {
    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Parse a `repro --faults` spec: comma-separated terms of the form
/// `<after>:<kind>[@<src>-><dst>]`, where `<after>` counts matching posted
/// operations to skip, `<kind>` is one of `transient`/`rnr`, `retry`,
/// `fatal`/`access`, and the optional scope restricts the fault to
/// operations initiated by node `<src>` targeting node `<dst>` (`*` for
/// either side means any node).
///
/// Example: `2:transient,9:fatal@0->1`.
pub fn parse_fault_spec(spec: &str) -> Result<Vec<LinkFault>, String> {
    let mut out = Vec::new();
    for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (after_s, rest) = term
            .split_once(':')
            .ok_or_else(|| format!("`{term}`: expected `<after>:<kind>[@<src>-><dst>]`"))?;
        let after_ops: u64 = after_s
            .trim()
            .parse()
            .map_err(|_| format!("`{term}`: bad operation count `{after_s}`"))?;
        let (kind_s, scope) = match rest.split_once('@') {
            Some((k, s)) => (k, Some(s)),
            None => (rest, None),
        };
        let kind = match kind_s.trim() {
            "transient" | "rnr" => LinkFaultKind::Rnr,
            "retry" => LinkFaultKind::Retry,
            "fatal" | "access" => LinkFaultKind::Fatal,
            other => return Err(format!("`{term}`: unknown fault kind `{other}`")),
        };
        let (from, to) = match scope {
            None => (None, None),
            Some(s) => {
                let (a, b) = s
                    .split_once("->")
                    .ok_or_else(|| format!("`{term}`: scope must be `<src>-><dst>`"))?;
                (parse_node(term, a)?, parse_node(term, b)?)
            }
        };
        out.push(LinkFault {
            after_ops,
            kind,
            from,
            to,
        });
    }
    if out.is_empty() {
        return Err("empty fault spec".into());
    }
    Ok(out)
}

fn parse_node(term: &str, t: &str) -> Result<Option<NodeId>, String> {
    let t = t.trim();
    if t == "*" {
        return Ok(None);
    }
    t.parse::<usize>()
        .map(|n| Some(NodeId(n)))
        .map_err(|_| format!("`{term}`: bad node `{t}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_kinds_and_scopes() {
        let plans = parse_fault_spec("2:transient, 9:fatal@0->1, 0:retry@*->3").unwrap();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].after_ops, 2);
        assert_eq!(plans[0].kind, LinkFaultKind::Rnr);
        assert_eq!((plans[0].from, plans[0].to), (None, None));
        assert_eq!(plans[1].kind, LinkFaultKind::Fatal);
        assert_eq!(
            (plans[1].from, plans[1].to),
            (Some(NodeId(0)), Some(NodeId(1)))
        );
        assert_eq!(plans[2].kind, LinkFaultKind::Retry);
        assert_eq!((plans[2].from, plans[2].to), (None, Some(NodeId(3))));
        assert!(plans[1].matches(NodeId(0), NodeId(1)));
        assert!(!plans[1].matches(NodeId(1), NodeId(0)));
        assert!(plans[2].matches(NodeId(7), NodeId(3)));
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(parse_fault_spec("").is_err());
        assert!(parse_fault_spec("transient").is_err());
        assert!(parse_fault_spec("x:transient").is_err());
        assert!(parse_fault_spec("1:meteor").is_err());
        assert!(parse_fault_spec("1:fatal@0-1").is_err());
        assert!(parse_fault_spec("1:fatal@a->b").is_err());
    }

    #[test]
    fn transience_classification() {
        assert!(LinkFaultKind::Rnr.is_transient());
        assert!(LinkFaultKind::Retry.is_transient());
        assert!(!LinkFaultKind::Fatal.is_transient());
    }
}
