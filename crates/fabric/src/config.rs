//! Cluster configuration and calibrated cost model.
//!
//! The defaults reproduce Table I of the paper (Intel Xeon E5-2670 hosts,
//! pre-production Knights Corner Xeon Phi cards, Mellanox ConnectX-3 HCAs)
//! as *behavioural* parameters: bandwidths, latencies and software overheads
//! calibrated against the numbers the paper prints (see DESIGN.md §7).

use std::fmt;

use simcore::SimDuration;

/// Which memory a buffer lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Host (Xeon) DRAM.
    Host,
    /// Xeon Phi co-processor GDDR.
    Phi,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Host => write!(f, "host"),
            Domain::Phi => write!(f, "phi"),
        }
    }
}

/// Hardware timing model. All bandwidths in bytes/second.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// InfiniBand wire bandwidth (ConnectX-3 effective).
    pub ib_bw: f64,
    /// One-way InfiniBand wire latency.
    pub ib_latency: SimDuration,
    /// HCA DMA bandwidth to/from host DRAM (not a bottleneck).
    pub host_dma_bw: f64,
    /// HCA DMA **read** bandwidth from Phi memory — the bottleneck the paper
    /// discovers (§IV-B4, Fig. 5): Phi-sourced transfers are >4x slower.
    pub phi_hca_read_bw: f64,
    /// HCA DMA **write** bandwidth into Phi memory (Fig. 5: host→Phi runs at
    /// host-to-host speed).
    pub phi_hca_write_bw: f64,
    /// PCIe DMA-engine bandwidth host→Phi (offload copy-in, SCIF RMA).
    pub pci_h2p_bw: f64,
    /// PCIe DMA-engine bandwidth Phi→host (offload send-buffer sync,
    /// offload copy-out).
    pub pci_p2h_bw: f64,
    /// PCIe DMA-engine per-operation latency.
    pub pci_dma_latency: SimDuration,
    /// Host memcpy bandwidth (eager-protocol copies on the host).
    pub host_copy_bw: f64,
    /// Phi memcpy bandwidth; the paper measures <1us for 4 KiB (§IV-B3),
    /// which motivates the one-copy eager design.
    pub phi_copy_bw: f64,
    /// Host per-software-operation overhead (post/poll on a Xeon core).
    pub host_cpu_op: SimDuration,
    /// Phi per-software-operation overhead (post/poll on a slow in-order
    /// Phi core).
    pub phi_cpu_op: SimDuration,
    /// HCA per-WQE processing overhead (doorbell + WQE fetch).
    pub hca_wqe_overhead: SimDuration,
    /// Host memory-region registration: fixed cost.
    pub host_mr_reg_base: SimDuration,
    /// Host memory-region registration: per-4KiB-page cost.
    pub host_mr_reg_per_page: SimDuration,
    /// Host-side work to service one offloaded DCFA command (beyond the
    /// SCIF round trip itself).
    pub cmd_host_work: SimDuration,
    /// Phi-side virtual→physical translation cost per 4-KiB page when the
    /// DCFA CMD client prepares a registration request (§IV-B1).
    pub cmd_translate_per_page: SimDuration,
    /// One-way SCIF message latency between host and Phi (kernel-mediated
    /// doorbell + shared-ring copy for small control messages).
    pub scif_msg_latency: SimDuration,
    /// SCIF small-message bandwidth (ring-buffer copies, not DMA).
    pub scif_msg_bw: f64,
    /// Intel-MPI-on-Phi proxy mode: host-side proxy daemon work per relayed
    /// message (HCA Proxy / IB Proxy Daemon, §III-A).
    pub proxy_host_work: SimDuration,
    /// Intel-MPI-on-Phi direct path: pipeline chunk size for large
    /// messages.
    pub intel_chunk: u64,
    /// Intel-MPI-on-Phi direct path: per-chunk software overhead.
    pub intel_chunk_overhead: SimDuration,
    /// Intel offload runtime: per-`offload_transfer` invocation overhead
    /// (pragma dispatch + COI round trip), even with persistent buffers.
    pub offload_transfer_overhead: SimDuration,
    /// Intel offload runtime: per-compute-region invocation overhead
    /// (kernel dispatch + OpenMP team wakeup on the card).
    pub offload_region_overhead: SimDuration,
    /// Intel offload runtime: effective PCIe copy bandwidth of
    /// `offload_transfer` (below the raw DMA engine; runtime bookkeeping
    /// and segmentation).
    pub offload_copy_bw: f64,
    /// Software overhead of one MPI-level call (argument checking, request
    /// bookkeeping, protocol selection) on a host core (YAMPII on Xeon).
    pub mpi_call_host: SimDuration,
    /// Same, on a slow in-order Phi core (DCFA-MPI).
    pub mpi_call_phi: SimDuration,
    /// Time for one stencil point update on a single Phi thread.
    pub phi_point_update: SimDuration,
    /// Time for one stencil point update on a single host (Xeon) core.
    pub host_point_update: SimDuration,
    /// OpenMP-style fork/join overhead per parallel region on the Phi.
    pub omp_fork_join: SimDuration,
    /// Thread-scaling friction: efficiency(t) = 1 / (1 + alpha * (t - 1)).
    pub omp_alpha: f64,
}

impl CostModel {
    /// Values calibrated against the paper's printed numbers (DESIGN.md §7).
    pub fn paper() -> Self {
        CostModel {
            ib_bw: 6.0e9,
            ib_latency: SimDuration::from_nanos(700),
            host_dma_bw: 16.0e9,
            phi_hca_read_bw: 1.1e9,
            phi_hca_write_bw: 5.5e9,
            pci_h2p_bw: 6.0e9,
            pci_p2h_bw: 5.8e9,
            pci_dma_latency: SimDuration::from_micros_f64(1.5),
            host_copy_bw: 8.0e9,
            phi_copy_bw: 4.5e9,
            host_cpu_op: SimDuration::from_nanos(300),
            phi_cpu_op: SimDuration::from_nanos(1400),
            hca_wqe_overhead: SimDuration::from_nanos(150),
            host_mr_reg_base: SimDuration::from_micros(4),
            host_mr_reg_per_page: SimDuration::from_nanos(45),
            cmd_host_work: SimDuration::from_micros(6),
            cmd_translate_per_page: SimDuration::from_nanos(120),
            scif_msg_latency: SimDuration::from_micros_f64(2.4),
            scif_msg_bw: 1.2e9,
            proxy_host_work: SimDuration::from_micros_f64(1.5),
            intel_chunk: 256 << 10,
            intel_chunk_overhead: SimDuration::from_micros(25),
            offload_transfer_overhead: SimDuration::from_micros(55),
            offload_region_overhead: SimDuration::from_micros(25),
            offload_copy_bw: 3.0e9,
            mpi_call_host: SimDuration::from_nanos(400),
            mpi_call_phi: SimDuration::from_nanos(2800),
            phi_point_update: SimDuration::from_nanos(12),
            host_point_update: SimDuration::from_nanos(3),
            omp_fork_join: SimDuration::from_micros(8),
            omp_alpha: 0.033,
        }
    }

    /// HCA DMA read bandwidth for a buffer in `domain` (local side of an
    /// outbound transfer).
    pub fn hca_read_bw(&self, domain: Domain) -> f64 {
        match domain {
            Domain::Host => self.host_dma_bw,
            Domain::Phi => self.phi_hca_read_bw,
        }
    }

    /// HCA DMA write bandwidth for a buffer in `domain` (remote side of an
    /// inbound transfer).
    pub fn hca_write_bw(&self, domain: Domain) -> f64 {
        match domain {
            Domain::Host => self.host_dma_bw,
            Domain::Phi => self.phi_hca_write_bw,
        }
    }

    /// Local memcpy bandwidth in `domain`.
    pub fn copy_bw(&self, domain: Domain) -> f64 {
        match domain {
            Domain::Host => self.host_copy_bw,
            Domain::Phi => self.phi_copy_bw,
        }
    }

    /// Per-software-operation CPU overhead in `domain`.
    pub fn cpu_op(&self, domain: Domain) -> SimDuration {
        match domain {
            Domain::Host => self.host_cpu_op,
            Domain::Phi => self.phi_cpu_op,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Simulated page size (both domains).
pub const PAGE_SIZE: u64 = 4096;

/// Whole-cluster configuration (Table I analogue).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute nodes (paper: 8-node cluster).
    pub nodes: usize,
    /// Host DRAM capacity per node.
    pub host_mem_capacity: u64,
    /// Phi GDDR capacity per node. The paper's kernel has no demand paging,
    /// so exhausting this is a hard allocation failure.
    pub phi_mem_capacity: u64,
    /// Xeon cores per host (E5-2670: 16 with HT in Table I).
    pub host_cores: u32,
    /// Phi cores per card (pre-production KNC).
    pub phi_cores: u32,
    /// Hardware threads per Phi core.
    pub phi_threads_per_core: u32,
    /// Timing model.
    pub cost: CostModel,
}

impl ClusterConfig {
    /// The paper's 8-node evaluation cluster (Table I).
    pub fn paper() -> Self {
        ClusterConfig {
            nodes: 8,
            host_mem_capacity: 64 << 30,
            phi_mem_capacity: 8 << 30,
            host_cores: 16,
            phi_cores: 57,
            phi_threads_per_core: 4,
            cost: CostModel::paper(),
        }
    }

    /// A paper-calibrated cluster with a custom node count.
    pub fn with_nodes(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            ..Self::paper()
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Simulated server architecture (cf. paper Table I)")?;
        writeln!(f, "  Nodes                  : {}", self.nodes)?;
        writeln!(
            f,
            "  CPU                    : Intel Xeon E5-2670-class, {} cores (simulated)",
            self.host_cores
        )?;
        writeln!(
            f,
            "  Co-processor           : pre-production Xeon Phi-class, {} cores x {} threads (simulated)",
            self.phi_cores, self.phi_threads_per_core
        )?;
        writeln!(
            f,
            "  InfiniBand HCA         : ConnectX-3-class, {:.1} GB/s wire, {} latency",
            self.cost.ib_bw / 1e9,
            self.cost.ib_latency
        )?;
        writeln!(
            f,
            "  Host memory            : {} GiB",
            self.host_mem_capacity >> 30
        )?;
        writeln!(
            f,
            "  Phi memory             : {} GiB (no demand paging)",
            self.phi_mem_capacity >> 30
        )?;
        writeln!(
            f,
            "  HCA DMA read from Phi  : {:.2} GB/s (measured bottleneck)",
            self.cost.phi_hca_read_bw / 1e9
        )?;
        writeln!(
            f,
            "  HCA DMA write to Phi   : {:.2} GB/s",
            self.cost.phi_hca_write_bw / 1e9
        )?;
        writeln!(
            f,
            "  PCIe DMA engine        : {:.2} / {:.2} GB/s (h2p / p2h), {} latency",
            self.cost.pci_h2p_bw / 1e9,
            self.cost.pci_p2h_bw / 1e9,
            self.cost.pci_dma_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_expose_the_bottleneck() {
        let c = CostModel::paper();
        // The paper: Phi-sourced IB transfer is >4x slower than host-sourced.
        assert!(c.host_dma_bw / c.phi_hca_read_bw > 4.0);
        // Host->Phi writes run at host-to-host speed (within ~10%).
        assert!(c.phi_hca_write_bw >= 0.9 * c.ib_bw);
    }

    #[test]
    fn phi_copy_meets_paper_microbench() {
        // "the data copy operation on the Xeon Phi co-processor spends less
        // than 1 microsecond for 4Kbytes of data"
        let c = CostModel::paper();
        let t = simcore::transfer_time(4096, c.phi_copy_bw);
        assert!(t < SimDuration::from_micros(1), "4KiB Phi copy took {t}");
    }

    #[test]
    fn domain_selectors() {
        let c = CostModel::paper();
        assert_eq!(c.hca_read_bw(Domain::Host), c.host_dma_bw);
        assert_eq!(c.hca_read_bw(Domain::Phi), c.phi_hca_read_bw);
        assert_eq!(c.hca_write_bw(Domain::Phi), c.phi_hca_write_bw);
        assert_eq!(c.copy_bw(Domain::Phi), c.phi_copy_bw);
        assert!(c.cpu_op(Domain::Phi) > c.cpu_op(Domain::Host));
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = ClusterConfig::paper().to_string();
        assert!(s.contains("ConnectX-3"));
        assert!(s.contains("Xeon Phi"));
        assert!(s.contains("bottleneck"));
    }
}
