//! Simulated memory: per-domain byte arenas with a first-fit allocator.
//!
//! Buffers hold *real bytes* so that protocol correctness (does the receive
//! buffer contain exactly what was sent?) is testable, while capacity
//! accounting models the Phi's hard memory limit (no demand paging on the
//! paper's micro-kernel).

use std::collections::BTreeMap;
use std::fmt;

use crate::config::{Domain, PAGE_SIZE};

/// Node index within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A memory domain on a specific node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    pub node: NodeId,
    pub domain: Domain,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.domain)
    }
}

/// A contiguous allocation inside one memory domain. Cheap to clone; freeing
/// goes through [`Memory::free`] with the original base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer {
    pub mem: MemRef,
    /// Domain-local address (we treat virtual == physical per domain; the
    /// DCFA command layer still *charges* for translation).
    pub addr: u64,
    pub len: u64,
}

impl Buffer {
    /// A sub-range of this buffer.
    pub fn slice(&self, offset: u64, len: u64) -> Buffer {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "slice {offset}+{len} out of buffer of len {}",
            self.len
        );
        Buffer {
            mem: self.mem,
            addr: self.addr + offset,
            len,
        }
    }

    /// Number of 4-KiB pages this buffer spans.
    pub fn pages(&self) -> u64 {
        let start = self.addr / PAGE_SIZE;
        let end = (self.addr + self.len.max(1) - 1) / PAGE_SIZE;
        end - start + 1
    }

    /// Whether the buffer starts on a page boundary and is a whole number of
    /// pages (the Intel offload runtime's fast-transfer condition, §V).
    pub fn is_page_aligned(&self) -> bool {
        self.addr.is_multiple_of(PAGE_SIZE) && self.len.is_multiple_of(PAGE_SIZE)
    }
}

/// Allocation failure: the domain is out of memory (the Phi kernel has no
/// demand paging, so this is a hard error, cf. §V experiment 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    pub mem: MemRef,
    pub requested: u64,
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory in {}: requested {} bytes, {} available",
            self.mem, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// One memory domain: a byte arena plus a first-fit allocator.
pub struct Memory {
    mem: MemRef,
    capacity: u64,
    used: u64,
    /// Arena backing store, grown lazily.
    bytes: Vec<u8>,
    /// Highest allocation end ever handed out. Space above this line has
    /// never been allocated, so it still reads as fresh (lazy) zeros and
    /// must not be scrubbed — scrubbing would fault in pages the
    /// simulated software never touches.
    high_water: u64,
    /// Free list: base -> len, coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live allocations: base -> len (double-free / bad-free detection).
    live: BTreeMap<u64, u64>,
}

impl Memory {
    pub fn new(mem: MemRef, capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, capacity);
        Memory {
            mem,
            capacity,
            used: 0,
            bytes: Vec::new(),
            high_water: 0,
            free,
            live: BTreeMap::new(),
        }
    }

    pub fn mem_ref(&self) -> MemRef {
        self.mem
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Allocate `len` bytes aligned to `align` (power of two). First-fit.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<Buffer, OutOfMemory> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let len = len.max(1);
        let mut chosen: Option<(u64, u64, u64)> = None; // (base, blk_len, aligned_start)
        for (&base, &blk_len) in &self.free {
            let aligned = (base + align - 1) & !(align - 1);
            let pad = aligned - base;
            if blk_len >= pad + len {
                chosen = Some((base, blk_len, aligned));
                break;
            }
        }
        let Some((base, blk_len, aligned)) = chosen else {
            return Err(OutOfMemory {
                mem: self.mem,
                requested: len,
                available: self.capacity - self.used,
            });
        };
        self.free.remove(&base);
        // Leading pad stays free.
        if aligned > base {
            self.free.insert(base, aligned - base);
        }
        // Trailing remainder stays free.
        let end = aligned + len;
        let blk_end = base + blk_len;
        if blk_end > end {
            self.free.insert(end, blk_end - end);
        }
        self.live.insert(aligned, len);
        self.used += len;
        // Grow backing store to cover the allocation, and zero the range:
        // freshly mapped pages read as zero (kernel semantics), including
        // recycled arena space.
        let need = end as usize;
        if self.bytes.len() < need {
            self.grow_arena(need);
        }
        // Fresh arena space — above the allocation high-water mark — is
        // still (lazily) zero; explicitly zeroing it would fault in every
        // page of e.g. a ring buffer whose slots are mostly never
        // touched. Only recycled space needs scrubbing so that a reused
        // region reads as zero like fresh pages do.
        let scrub_end = end.min(self.high_water);
        if aligned < scrub_end {
            self.bytes[aligned as usize..scrub_end as usize].fill(0);
        }
        self.high_water = self.high_water.max(end);
        Ok(Buffer {
            mem: self.mem,
            addr: aligned,
            len,
        })
    }

    /// Allocate page-aligned.
    pub fn alloc_pages(&mut self, len: u64) -> Result<Buffer, OutOfMemory> {
        self.alloc(len, PAGE_SIZE)
    }

    /// Grow the backing arena to at least `need` bytes.
    ///
    /// Deliberately NOT `Vec::resize`: a resize both memsets the new
    /// tail (faulting in every page even if the simulated software
    /// never touches it) and, on reallocation, copies the whole arena.
    /// Instead allocate a fresh zeroed buffer — `alloc_zeroed` maps
    /// demand-zero pages that are only faulted in on first real use —
    /// and copy just the live prefix. Growth is geometric with a floor,
    /// so a warming-up arena reallocates O(log n) times.
    fn grow_arena(&mut self, need: usize) {
        const ARENA_FLOOR: usize = 4 << 20;
        let target = need
            .max(self.bytes.capacity() * 2)
            .max(ARENA_FLOOR.min(self.capacity as usize))
            .max(1);
        let mut fresh = vec![0u8; target];
        fresh[..self.bytes.len()].copy_from_slice(&self.bytes);
        self.bytes = fresh;
    }

    /// Free an allocation by its buffer. Panics on double free or on a
    /// buffer that is not an allocation base (programming error in the
    /// simulated software stack).
    pub fn free(&mut self, buf: &Buffer) {
        assert_eq!(buf.mem, self.mem, "freeing buffer from wrong domain");
        let len = self
            .live
            .remove(&buf.addr)
            .unwrap_or_else(|| panic!("free of unknown buffer at {:#x}", buf.addr));
        assert_eq!(len, buf.len, "free with mismatched length");
        self.used -= len;
        // Insert and coalesce with neighbours.
        let mut base = buf.addr;
        let mut blk_len = len;
        if let Some((&pbase, &plen)) = self.free.range(..base).next_back() {
            if pbase + plen == base {
                self.free.remove(&pbase);
                base = pbase;
                blk_len += plen;
            }
        }
        if let Some((&nbase, &nlen)) = self.free.range(base + blk_len..).next() {
            if base + blk_len == nbase {
                self.free.remove(&nbase);
                blk_len += nlen;
            }
        }
        self.free.insert(base, blk_len);
    }

    fn check_range(&self, buf: &Buffer, offset: u64, len: usize) {
        assert!(
            offset.checked_add(len as u64).is_some_and(|e| e <= buf.len),
            "access {offset}+{len} out of buffer len {}",
            buf.len
        );
    }

    /// Write bytes into a buffer.
    pub fn write(&mut self, buf: &Buffer, offset: u64, data: &[u8]) {
        assert_eq!(buf.mem, self.mem);
        self.check_range(buf, offset, data.len());
        let start = (buf.addr + offset) as usize;
        if self.bytes.len() < start + data.len() {
            self.bytes.resize(start + data.len(), 0);
        }
        self.bytes[start..start + data.len()].copy_from_slice(data);
    }

    /// Read bytes out of a buffer.
    pub fn read(&self, buf: &Buffer, offset: u64, out: &mut [u8]) {
        assert_eq!(buf.mem, self.mem);
        self.check_range(buf, offset, out.len());
        let start = (buf.addr + offset) as usize;
        if self.bytes.len() >= start + out.len() {
            out.copy_from_slice(&self.bytes[start..start + out.len()]);
        } else {
            // Lazily-grown arena: untouched memory reads as zero.
            let have = self.bytes.len().saturating_sub(start);
            out[..have].copy_from_slice(&self.bytes[start..start + have]);
            out[have..].fill(0);
        }
    }

    /// Read a buffer fully into a fresh Vec.
    pub fn read_vec(&self, buf: &Buffer) -> Vec<u8> {
        let mut v = vec![0u8; buf.len as usize];
        self.read(buf, 0, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(
            MemRef {
                node: NodeId(0),
                domain: Domain::Phi,
            },
            1 << 20,
        )
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = mem();
        let a = m.alloc(1000, 8).unwrap();
        assert_eq!(m.used(), 1000);
        m.free(&a);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn alloc_is_aligned() {
        let mut m = mem();
        let _pad = m.alloc(10, 1).unwrap();
        let b = m.alloc(100, 256).unwrap();
        assert_eq!(b.addr % 256, 0);
        let p = m.alloc_pages(PAGE_SIZE * 2).unwrap();
        assert_eq!(p.addr % PAGE_SIZE, 0);
        assert!(p.is_page_aligned());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut m = mem();
        let err = m.alloc(2 << 20, 1).unwrap_err();
        assert_eq!(err.requested, 2 << 20);
        assert_eq!(err.available, 1 << 20);
    }

    #[test]
    fn free_coalesces() {
        let mut m = mem();
        let a = m.alloc(1024, 1).unwrap();
        let b = m.alloc(1024, 1).unwrap();
        let c = m.alloc(1024, 1).unwrap();
        m.free(&a);
        m.free(&c);
        m.free(&b);
        // After coalescing everything we can allocate the whole capacity.
        let all = m.alloc(1 << 20, 1).unwrap();
        assert_eq!(all.len, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "free of unknown buffer")]
    fn double_free_panics() {
        let mut m = mem();
        let a = m.alloc(64, 1).unwrap();
        m.free(&a);
        m.free(&a);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = mem();
        let a = m.alloc(4096, 4096).unwrap();
        let data: Vec<u8> = (0..=255).cycle().take(4096).collect();
        m.write(&a, 0, &data);
        assert_eq!(m.read_vec(&a), data);
        // Partial read at offset.
        let mut out = [0u8; 4];
        m.read(&a, 256, &mut out);
        assert_eq!(out, [0, 1, 2, 3]);
    }

    #[test]
    fn recycled_memory_reads_zero() {
        let mut m = mem();
        let a = m.alloc(256, 1).unwrap();
        m.write(&a, 0, &[0xAB; 256]);
        m.free(&a);
        // First-fit hands the same region back; it must read as zero
        // like fresh pages do, not leak the previous tenant's bytes.
        let b = m.alloc(256, 1).unwrap();
        assert_eq!(b.addr, a.addr);
        assert_eq!(m.read_vec(&b), vec![0u8; 256]);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let mut m = mem();
        let a = m.alloc(128, 1).unwrap();
        let mut out = [1u8; 16];
        m.read(&a, 64, &mut out);
        assert_eq!(out, [0u8; 16]);
    }

    #[test]
    fn slice_bounds_checked() {
        let mut m = mem();
        let a = m.alloc(100, 1).unwrap();
        let s = a.slice(10, 20);
        assert_eq!(s.addr, a.addr + 10);
        assert_eq!(s.len, 20);
        let r = std::panic::catch_unwind(|| a.slice(90, 20));
        assert!(r.is_err());
    }

    #[test]
    fn pages_count() {
        let b = Buffer {
            mem: MemRef {
                node: NodeId(0),
                domain: Domain::Host,
            },
            addr: 0,
            len: 4096,
        };
        assert_eq!(b.pages(), 1);
        let b2 = Buffer {
            addr: 4095,
            len: 2,
            ..b.clone()
        };
        assert_eq!(b2.pages(), 2);
        let b3 = Buffer {
            addr: 0,
            len: 4097,
            ..b
        };
        assert_eq!(b3.pages(), 2);
    }
}
