//! # fabric — simulated hardware substrate for the DCFA-MPI reproduction
//!
//! This crate replaces the hardware the paper ran on (Xeon hosts, Xeon Phi
//! co-processor cards, PCIe, Mellanox ConnectX-3 HCAs and an InfiniBand
//! switch) with calibrated behavioural models:
//!
//! * [`Memory`]/[`Buffer`] — per-domain byte arenas with a real allocator;
//!   data movement moves real bytes so protocol correctness is testable.
//! * [`BwChannel`] — serialized bandwidth resources (PCIe directions, IB
//!   ports) with head-of-line queueing.
//! * [`Cluster`] — node topology plus the two data-movement primitives the
//!   software stack is built from: [`Cluster::pci_dma`] (host↔Phi DMA
//!   engine) and [`Cluster::ib_transfer`] (HCA→wire→HCA path, including the
//!   slow DMA-read-from-Phi leg that motivates the paper's offloading send
//!   buffer).
//! * [`ClusterConfig`]/[`CostModel`] — Table-I-analogue configuration with
//!   constants calibrated against the paper's printed numbers.

mod channel;
mod cluster;
mod config;
mod faults;
mod health;
mod mem;

pub use channel::{BwChannel, ChannelStats};
pub use cluster::{Cluster, FabricStats, Transfer};
pub use config::{ClusterConfig, CostModel, Domain, PAGE_SIZE};
pub use faults::{parse_fault_spec, LinkFault, LinkFaultKind};
pub use health::{HealthBoard, PeerState};
pub use mem::{Buffer, MemRef, Memory, NodeId, OutOfMemory};
