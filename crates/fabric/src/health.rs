//! Rank-failure ground truth and the detection lattice.
//!
//! The [`HealthBoard`] is the simulation's stand-in for the gossip /
//! heartbeat plane a real ULFM-style runtime would run over the fabric:
//! one shared board tracks, per rank, the last heartbeat time and a
//! monotone `Alive → Suspect → Dead` classification. Ground truth (the
//! instant a rank was killed) is recorded separately from *detection*
//! (the instant some survivor promoted it to `Dead`), so detection
//! latency is measurable and the protocol layer only ever acts on the
//! detected state — exactly the information a heartbeat sidecar plus
//! QP-error snooping would give it.
//!
//! Determinism: every transition happens in virtual time from scheduler
//! context (heartbeat ticks are self-rescheduling scheduler calls, QP
//! snooping happens in engine progress), so runs replay bit-for-bit.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Scheduler, SimDuration, SimEvent, SimTime};

/// Classification of one rank as seen by the detection plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats current.
    Alive,
    /// Heartbeats stale past `peer_ttl` but not yet past the dead line.
    Suspect,
    /// Promoted dead: heartbeats stale past `3 * peer_ttl`, or a QP to
    /// the rank flushed with an error. Monotone — never leaves.
    Dead,
}

const ST_ALIVE: u64 = 0;
const ST_SUSPECT: u64 = 1;
const ST_DEAD: u64 = 2;

struct RankHealth {
    /// Virtual-time nanos of the last heartbeat.
    last_seen: AtomicU64,
    /// `ST_*` classification (monotone).
    state: AtomicU64,
    /// Ground truth: virtual-time nanos of the kill, `u64::MAX` if alive.
    killed_at: AtomicU64,
    /// Value of `death_epoch` after this rank's promotion to `Dead`
    /// (`u64::MAX` while not promoted). Makes the live set a pure
    /// function of an epoch: rank r is live at epoch e iff
    /// `dead_at_epoch[r] > e`.
    dead_at_epoch: AtomicU64,
}

type Teardown = Box<dyn FnOnce(&Scheduler) + Send>;

/// Shared rank-health board: ground-truth kills, heartbeat freshness,
/// the `Suspect → Dead` lattice, and the epochs the recovery protocol
/// (revoke / shrink agreement) keys off.
pub struct HealthBoard {
    ranks: Vec<RankHealth>,
    /// Bumped once per promotion to `Dead`. The live set at any epoch
    /// value is well defined and monotone shrinking.
    death_epoch: AtomicU64,
    /// Bumped by every `Comm::revoke()` flood.
    revoke_epoch: AtomicU64,
    /// Death epoch of the last committed shrink agreement (0 = none;
    /// epochs are 1-based at the first death so 0 is unambiguous).
    shrink_commit: AtomicU64,
    /// Number of committed shrink agreements.
    shrinks: AtomicU64,
    /// Ranks that finished (exited their process body, killed or not).
    /// Heartbeat sidecars stop once every rank is done, so the event
    /// wheel drains and the simulation terminates.
    done: AtomicUsize,
    kills: AtomicU64,
    detections: AtomicU64,
    /// Detection latency samples (promotion time - kill time), ns.
    detection_latency: Mutex<Vec<u64>>,
    /// Events notified on every kill / promotion / revoke / commit, so
    /// blocked progress loops re-examine the world.
    watchers: Mutex<Vec<SimEvent>>,
    /// Per-rank teardown hooks (error the rank's QPs); run once at kill.
    teardowns: Mutex<Vec<Option<Teardown>>>,
}

impl HealthBoard {
    pub fn new(n: usize) -> Arc<HealthBoard> {
        let ranks = (0..n)
            .map(|_| RankHealth {
                last_seen: AtomicU64::new(0),
                state: AtomicU64::new(ST_ALIVE),
                killed_at: AtomicU64::new(u64::MAX),
                dead_at_epoch: AtomicU64::new(u64::MAX),
            })
            .collect();
        Arc::new(HealthBoard {
            ranks,
            death_epoch: AtomicU64::new(0),
            revoke_epoch: AtomicU64::new(0),
            shrink_commit: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            kills: AtomicU64::new(0),
            detections: AtomicU64::new(0),
            detection_latency: Mutex::new(Vec::new()),
            watchers: Mutex::new(Vec::new()),
            teardowns: Mutex::new((0..n).map(|_| None).collect()),
        })
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Register an event to notify on every health transition (kill,
    /// promotion, revoke, shrink commit). Engines register their
    /// progress event so blocked waits wake and re-examine peers.
    pub fn register_watcher(&self, ev: SimEvent) {
        self.watchers.lock().push(ev);
    }

    /// Install the teardown hook run (once) when `rank` is killed —
    /// typically "error every QP this rank owns".
    pub fn set_teardown(&self, rank: usize, hook: Teardown) {
        self.teardowns.lock()[rank] = Some(hook);
    }

    fn notify_watchers(&self, sched: &Scheduler) {
        let watchers = self.watchers.lock();
        for w in watchers.iter() {
            w.notify_all(sched);
        }
    }

    // ---- heartbeats and classification ------------------------------------

    /// Record a heartbeat from `rank` at virtual time `now`.
    pub fn beat(&self, rank: usize, now: SimTime) {
        self.ranks[rank]
            .last_seen
            .fetch_max(now.as_nanos(), Ordering::Relaxed);
    }

    /// Classify `rank` as seen at `now` under `ttl`, promoting to `Dead`
    /// (and notifying watchers) when its heartbeat is stale past the
    /// dead line. Returns the (possibly new) state.
    pub fn classify(
        &self,
        sched: &Scheduler,
        rank: usize,
        now: SimTime,
        ttl: SimDuration,
    ) -> PeerState {
        let h = &self.ranks[rank];
        if h.state.load(Ordering::Acquire) == ST_DEAD {
            return PeerState::Dead;
        }
        let age = now
            .as_nanos()
            .saturating_sub(h.last_seen.load(Ordering::Relaxed));
        if age > 3 * ttl.as_nanos() {
            self.promote_dead(sched, rank, now);
            PeerState::Dead
        } else if age > ttl.as_nanos() {
            // Alive -> Suspect only (never demote Dead).
            let _ =
                h.state
                    .compare_exchange(ST_ALIVE, ST_SUSPECT, Ordering::AcqRel, Ordering::Relaxed);
            PeerState::Suspect
        } else {
            PeerState::Alive
        }
    }

    /// Promote `rank` to `Dead` (idempotent). First caller wins: bumps
    /// the death epoch, records the detection-latency sample and wakes
    /// every watcher. Called from heartbeat classification and from
    /// QP-error snooping in engine progress.
    pub fn promote_dead(&self, sched: &Scheduler, rank: usize, now: SimTime) {
        let h = &self.ranks[rank];
        let prev = h.state.swap(ST_DEAD, Ordering::AcqRel);
        if prev == ST_DEAD {
            return;
        }
        let epoch = self.death_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        h.dead_at_epoch.store(epoch, Ordering::Release);
        self.detections.fetch_add(1, Ordering::Relaxed);
        let killed = h.killed_at.load(Ordering::Relaxed);
        if killed != u64::MAX {
            self.detection_latency
                .lock()
                .push(now.as_nanos().saturating_sub(killed));
        }
        self.notify_watchers(sched);
    }

    // ---- ground truth ------------------------------------------------------

    /// Fail-stop `rank` at `now`: record ground truth, run its teardown
    /// hook (error its QPs so in-flight WCs flush) and wake watchers.
    /// Does NOT promote the rank to `Dead` — survivors must *detect*
    /// the failure (heartbeat staleness or QP error snooping).
    pub fn kill(&self, sched: &Scheduler, rank: usize, now: SimTime) {
        let h = &self.ranks[rank];
        if h.killed_at
            .compare_exchange(
                u64::MAX,
                now.as_nanos(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        self.kills.fetch_add(1, Ordering::Relaxed);
        let hook = self.teardowns.lock()[rank].take();
        if let Some(hook) = hook {
            hook(sched);
        }
        self.notify_watchers(sched);
    }

    /// Ground truth: has `rank` been killed?
    pub fn is_killed(&self, rank: usize) -> bool {
        self.ranks[rank].killed_at.load(Ordering::Relaxed) != u64::MAX
    }

    /// Detected state: has `rank` been promoted to `Dead`?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.ranks[rank].state.load(Ordering::Acquire) == ST_DEAD
    }

    /// Detected state without a TTL sweep (no promotion side effects).
    pub fn state(&self, rank: usize) -> PeerState {
        match self.ranks[rank].state.load(Ordering::Acquire) {
            ST_ALIVE => PeerState::Alive,
            ST_SUSPECT => PeerState::Suspect,
            _ => PeerState::Dead,
        }
    }

    // ---- epochs ------------------------------------------------------------

    /// Current death epoch (number of promotions so far).
    pub fn death_epoch(&self) -> u64 {
        self.death_epoch.load(Ordering::Acquire)
    }

    /// Current revocation epoch.
    pub fn revoke_epoch(&self) -> u64 {
        self.revoke_epoch.load(Ordering::Acquire)
    }

    /// Flood a revocation: bump the revoke epoch and wake watchers.
    pub fn revoke(&self, sched: &Scheduler) -> u64 {
        let e = self.revoke_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.notify_watchers(sched);
        e
    }

    /// The ranks live at death epoch `epoch` — a pure function of the
    /// epoch, identical on every rank that evaluates it.
    pub fn live_at(&self, epoch: u64) -> Vec<usize> {
        (0..self.ranks.len())
            .filter(|&r| self.ranks[r].dead_at_epoch.load(Ordering::Acquire) > epoch)
            .collect()
    }

    /// Ranks promoted dead at or before `epoch`.
    pub fn dead_at(&self, epoch: u64) -> Vec<usize> {
        (0..self.ranks.len())
            .filter(|&r| self.ranks[r].dead_at_epoch.load(Ordering::Acquire) <= epoch)
            .collect()
    }

    /// Commit the shrink agreement for death epoch `epoch`. Succeeds only
    /// while no further death has been detected (the root's final check);
    /// also reports success if `epoch` is already committed (idempotent
    /// across a restarted root).
    pub fn try_commit_shrink(&self, sched: &Scheduler, epoch: u64) -> bool {
        if epoch == 0 {
            return false; // epoch 0 is the "no shrink yet" sentinel
        }
        if self.shrink_commit.load(Ordering::Acquire) == epoch {
            return true;
        }
        if self.death_epoch.load(Ordering::Acquire) != epoch {
            return false;
        }
        let prev = self.shrink_commit.swap(epoch, Ordering::AcqRel);
        debug_assert!(prev < epoch, "shrink commit must advance");
        self.shrinks.fetch_add(1, Ordering::Relaxed);
        self.notify_watchers(sched);
        true
    }

    /// Death epoch of the last committed shrink (0 = none yet).
    pub fn shrink_commit(&self) -> u64 {
        self.shrink_commit.load(Ordering::Acquire)
    }

    // ---- lifecycle / sidecar ----------------------------------------------

    /// A rank's process body finished (normally or by kill).
    pub fn mark_done(&self) {
        self.done.fetch_add(1, Ordering::AcqRel);
    }

    /// Have all ranks finished? Heartbeat sidecars stop rescheduling.
    pub fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.ranks.len()
    }

    /// Start the heartbeat sidecar for `rank`: a self-rescheduling
    /// scheduler tick (independent of the rank's process, which may be
    /// blocked) that beats its own slot and classifies every peer under
    /// `ttl`. Stops once the rank is killed or every rank has finished.
    pub fn start_sidecar(
        self: &Arc<Self>,
        sched: &Scheduler,
        rank: usize,
        period: SimDuration,
        ttl: SimDuration,
    ) {
        self.beat(rank, sched.now());
        schedule_sidecar_tick(self.clone(), sched, rank, period, ttl);
    }

    // ---- counters ----------------------------------------------------------

    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    pub fn detections(&self) -> u64 {
        self.detections.load(Ordering::Relaxed)
    }

    pub fn shrink_count(&self) -> u64 {
        self.shrinks.load(Ordering::Relaxed)
    }

    /// Detection-latency samples (ns), in promotion order.
    pub fn detection_latency_samples(&self) -> Vec<u64> {
        self.detection_latency.lock().clone()
    }
}

impl std::fmt::Debug for HealthBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthBoard")
            .field("ranks", &self.ranks.len())
            .field("kills", &self.kills())
            .field("detections", &self.detections())
            .field("death_epoch", &self.death_epoch())
            .field("revoke_epoch", &self.revoke_epoch())
            .field("shrinks", &self.shrink_count())
            .finish()
    }
}

fn schedule_sidecar_tick(
    board: Arc<HealthBoard>,
    sched: &Scheduler,
    rank: usize,
    period: SimDuration,
    ttl: SimDuration,
) {
    sched.call_after(period, move |s| {
        if board.is_killed(rank) || board.finished() {
            return;
        }
        let now = s.now();
        board.beat(rank, now);
        for peer in 0..board.num_ranks() {
            if peer != rank {
                board.classify(s, peer, now, ttl);
            }
        }
        schedule_sidecar_tick(board, s, rank, period, ttl);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Simulation;

    #[test]
    fn lattice_is_monotone_and_latency_sampled() {
        let sim = Simulation::new();
        let sched = sim.scheduler();
        let b = HealthBoard::new(4);
        let ttl = SimDuration::from_micros(10);
        for r in 0..4 {
            b.beat(r, SimTime(0));
        }
        // Fresh heartbeat: alive.
        assert_eq!(b.classify(&sched, 1, SimTime(1_000), ttl), PeerState::Alive);
        // Stale past ttl: suspect.
        assert_eq!(
            b.classify(&sched, 1, SimTime(15_000), ttl),
            PeerState::Suspect
        );
        // A late heartbeat revives the suspect view only via freshness,
        // never the dead state: kill, let it go stale past 3*ttl.
        b.kill(&sched, 1, SimTime(20_000));
        assert!(b.is_killed(1));
        assert!(!b.is_dead(1), "kill alone is not detection");
        assert_eq!(b.classify(&sched, 1, SimTime(40_000), ttl), PeerState::Dead);
        assert_eq!(b.death_epoch(), 1);
        assert_eq!(b.detections(), 1);
        let lat = b.detection_latency_samples();
        assert_eq!(lat, vec![20_000]);
        // Idempotent.
        b.promote_dead(&sched, 1, SimTime(50_000));
        assert_eq!(b.death_epoch(), 1);
        assert_eq!(b.live_at(1), vec![0, 2, 3]);
        assert_eq!(b.dead_at(1), vec![1]);
        assert_eq!(b.live_at(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shrink_commit_requires_current_epoch() {
        let sim = Simulation::new();
        let sched = sim.scheduler();
        let b = HealthBoard::new(4);
        b.kill(&sched, 2, SimTime(10));
        b.promote_dead(&sched, 2, SimTime(20));
        assert_eq!(b.death_epoch(), 1);
        // Commit for a stale epoch fails.
        assert!(!b.try_commit_shrink(&sched, 0));
        assert!(b.try_commit_shrink(&sched, 1));
        assert_eq!(b.shrink_commit(), 1);
        // Idempotent re-commit (restarted root).
        assert!(b.try_commit_shrink(&sched, 1));
        assert_eq!(b.shrink_count(), 1);
        // A further death invalidates epoch-1 commits but epoch 2 works.
        b.kill(&sched, 3, SimTime(30));
        b.promote_dead(&sched, 3, SimTime(40));
        assert!(!b.try_commit_shrink(&sched, 1) || b.shrink_commit() == 1);
        assert!(b.try_commit_shrink(&sched, 2));
        assert_eq!(b.live_at(b.shrink_commit()), vec![0, 1]);
    }

    #[test]
    fn teardown_hook_runs_once_at_kill() {
        let sim = Simulation::new();
        let sched = sim.scheduler();
        let b = HealthBoard::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        b.set_teardown(
            0,
            Box::new(move |_| {
                h2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        b.kill(&sched, 0, SimTime(5));
        b.kill(&sched, 0, SimTime(6));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(b.kills(), 1);
    }

    #[test]
    fn sidecar_detects_a_killed_rank_and_terminates() {
        let mut sim = Simulation::new();
        let sched = sim.scheduler();
        let b = HealthBoard::new(2);
        let period = SimDuration::from_micros(5);
        let ttl = SimDuration::from_micros(10);
        b.start_sidecar(&sched, 0, period, ttl);
        b.start_sidecar(&sched, 1, period, ttl);
        // Kill rank 1 at t=20us; rank 0 finishes (mark_done) when it
        // observes the death, letting the wheel drain.
        let b2 = b.clone();
        sched.call_after(SimDuration::from_micros(20), move |s| {
            b2.kill(s, 1, s.now());
        });
        let b3 = b.clone();
        sim.spawn("observer", move |ctx| {
            while !b3.is_dead(1) {
                ctx.sleep(SimDuration::from_micros(5));
            }
            b3.mark_done(); // for rank 0
            b3.mark_done(); // for rank 1
        });
        sim.run_expect();
        assert!(b.is_dead(1));
        assert_eq!(b.detections(), 1);
        let lat = b.detection_latency_samples();
        assert_eq!(lat.len(), 1);
        // Detection within a few TTLs of the kill.
        assert!(lat[0] <= 5 * ttl.as_nanos(), "latency {} ns", lat[0]);
    }
}
