//! Property tests: the first-fit allocator maintains its invariants under
//! arbitrary alloc/free interleavings, and byte transfers never corrupt
//! adjacent memory.

use fabric::{Domain, MemRef, Memory, NodeId, PAGE_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { len: u64, align_pow: u32 },
    Free { idx: usize },
    Write { idx: usize, salt: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..64 * 1024, 0u32..13).prop_map(|(len, align_pow)| Op::Alloc { len, align_pow }),
        (0usize..64).prop_map(|idx| Op::Free { idx }),
        (0usize..64, any::<u8>()).prop_map(|(idx, salt)| Op::Write { idx, salt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let capacity = 1u64 << 20;
        let mut mem = Memory::new(MemRef { node: NodeId(0), domain: Domain::Phi }, capacity);
        let mut live: Vec<(fabric::Buffer, u8)> = Vec::new();
        let mut expected_used = 0u64;

        for op in ops {
            match op {
                Op::Alloc { len, align_pow } => {
                    let align = 1u64 << align_pow;
                    match mem.alloc(len, align) {
                        Ok(buf) => {
                            // Alignment honoured.
                            prop_assert_eq!(buf.addr % align, 0);
                            // No overlap with any live allocation.
                            for (other, _) in &live {
                                let no_overlap = buf.addr + buf.len <= other.addr
                                    || other.addr + other.len <= buf.addr;
                                prop_assert!(no_overlap, "overlap: {:?} vs {:?}", buf, other);
                            }
                            expected_used += buf.len;
                            live.push((buf, 0));
                        }
                        Err(e) => {
                            // OOM must report consistent numbers.
                            prop_assert_eq!(e.available, capacity - expected_used);
                        }
                    }
                }
                Op::Free { idx } => {
                    if !live.is_empty() {
                        let (buf, _) = live.swap_remove(idx % live.len());
                        expected_used -= buf.len;
                        mem.free(&buf);
                    }
                }
                Op::Write { idx, salt } => {
                    if !live.is_empty() {
                        let slot = idx % live.len();
                        let (buf, tag) = &mut live[slot];
                        let data = vec![salt; buf.len as usize];
                        mem.write(buf, 0, &data);
                        *tag = salt;
                    }
                }
            }
            prop_assert_eq!(mem.used(), expected_used);
        }

        // Every live buffer still holds exactly what was last written.
        for (buf, tag) in &live {
            let got = mem.read_vec(buf);
            prop_assert!(got.iter().all(|b| b == tag), "content clobbered");
        }

        // Free everything: all capacity comes back in one piece.
        for (buf, _) in live {
            mem.free(&buf);
        }
        prop_assert_eq!(mem.used(), 0);
        let all = mem.alloc(capacity, 1);
        prop_assert!(all.is_ok(), "fragmentation after full free");
    }

    #[test]
    fn page_alloc_always_page_aligned(lens in proptest::collection::vec(1u64..32 * 1024, 1..20)) {
        let mut mem = Memory::new(MemRef { node: NodeId(0), domain: Domain::Host }, 16 << 20);
        for len in lens {
            let b = mem.alloc_pages(len).unwrap();
            prop_assert_eq!(b.addr % PAGE_SIZE, 0);
        }
    }
}
