//! Rate-capped DMA, channel accounting for PCIe traffic, and page
//! alignment properties.

use std::sync::Arc;

use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId, PAGE_SIZE};
use parking_lot::Mutex;
use simcore::{SimTime, Simulation};

fn host(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Host,
    }
}

fn phi(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Phi,
    }
}

#[test]
fn rate_capped_dma_is_slower_than_hardware() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let o2 = out.clone();
    let cl = cluster.clone();
    sim.spawn("p", move |ctx| {
        let len = 4 << 20;
        let h = cl.alloc_pages(host(0), len).unwrap();
        let p = cl.alloc_pages(phi(0), len).unwrap();
        let t1 = cl.pci_dma(&h, &p, ctx.now());
        ctx.wait(&t1.completion);
        let full = (t1.end - t1.start).as_nanos();
        let t2 = cl.pci_dma_at_rate(&h, &p, ctx.now(), 1.0e9);
        ctx.wait(&t2.completion);
        let capped = (t2.end - t2.start).as_nanos();
        *o2.lock() = (full, capped);
    });
    sim.run_expect();
    let (full, capped) = *out.lock();
    // 6 GB/s hardware vs 1 GB/s cap: ~6x slower.
    let ratio = capped as f64 / full as f64;
    assert!((5.0..7.0).contains(&ratio), "ratio = {ratio:.2}");
}

#[test]
fn rate_cap_above_hardware_is_clamped() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let cl = cluster.clone();
    sim.spawn("p", move |ctx| {
        let len = 1 << 20;
        let h = cl.alloc_pages(host(0), len).unwrap();
        let p = cl.alloc_pages(phi(0), len).unwrap();
        let t1 = cl.pci_dma(&h, &p, ctx.now());
        let t2 = cl.pci_dma_at_rate(&h, &p, ctx.now(), 1e15);
        // Same duration: the cap cannot beat the hardware.
        assert_eq!(t1.end - t1.start, t2.end - t2.start);
        ctx.wait(&t1.completion);
        ctx.wait(&t2.completion);
    });
    sim.run_expect();
}

#[test]
fn pci_channels_account_direction_separately() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let cl = cluster.clone();
    sim.spawn("p", move |ctx| {
        let h = cl.alloc_pages(host(0), 4096).unwrap();
        let p = cl.alloc_pages(phi(0), 4096).unwrap();
        let t1 = cl.pci_dma(&h, &p, ctx.now()); // h2p
        let t2 = cl.pci_dma(&p, &h, ctx.now()); // p2h
        ctx.wait(&t1.completion);
        ctx.wait(&t2.completion);
        let stats = cl.channel_stats(NodeId(0));
        let h2p = stats.iter().find(|(n, _, _)| *n == "pci-h2p").unwrap();
        let p2h = stats.iter().find(|(n, _, _)| *n == "pci-p2h").unwrap();
        assert_eq!(h2p.1, 4096);
        assert_eq!(p2h.1, 4096);
        // Opposite directions overlap: same start.
        assert_eq!(t1.start, t2.start);
    });
    sim.run_expect();
}

#[test]
fn page_alignment_helpers() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let cl = cluster.clone();
    sim.spawn("p", move |_ctx| {
        let a = cl.alloc_pages(host(0), PAGE_SIZE * 3).unwrap();
        assert!(a.is_page_aligned());
        assert_eq!(a.pages(), 3);
        let b = cl.alloc(host(0), 100, 1).unwrap();
        assert!(!b.is_page_aligned());
    });
    sim.run_expect();
}

#[test]
fn transfers_at_same_instant_are_deterministically_ordered() {
    fn run() -> Vec<u64> {
        let mut sim = Simulation::new();
        let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
        let ends = Arc::new(Mutex::new(Vec::new()));
        let (cl, e2) = (cluster.clone(), ends.clone());
        sim.spawn("p", move |ctx| {
            let mut transfers = Vec::new();
            for _ in 0..4 {
                let s = cl.alloc_pages(host(0), 64 << 10).unwrap();
                let d = cl.alloc_pages(host(1), 64 << 10).unwrap();
                transfers.push(cl.ib_transfer(&s, &d, NodeId(0), ctx.now()));
            }
            for t in &transfers {
                ctx.wait(&t.completion);
                e2.lock().push(t.end.as_nanos());
            }
        });
        sim.run_expect();
        let v = ends.lock().clone();
        v
    }
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // Strictly increasing (serialized on the egress port in post order).
    for w in a.windows(2) {
        assert!(w[0] < w[1]);
    }
}

#[test]
fn cluster_call_at_runs_in_order() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let log = Arc::new(Mutex::new(Vec::new()));
    let (cl, l2) = (cluster.clone(), log.clone());
    sim.spawn("p", move |ctx| {
        for (i, t) in [300u64, 100, 200].iter().enumerate() {
            let l3 = l2.clone();
            cl.call_at(SimTime(*t), move |_| l3.lock().push(i));
        }
        ctx.sleep(simcore::SimDuration::from_micros(1));
    });
    sim.run_expect();
    assert_eq!(*log.lock(), vec![1, 2, 0]);
}
