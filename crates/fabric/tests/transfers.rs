//! Integration tests for the fabric data paths: PCIe DMA, InfiniBand path
//! selection (the Phi DMA-read bottleneck), channel queueing and data
//! integrity.

use std::sync::Arc;

use fabric::{Cluster, ClusterConfig, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use simcore::{SimTime, Simulation};

fn host(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Host,
    }
}

fn phi(n: usize) -> MemRef {
    MemRef {
        node: NodeId(n),
        domain: Domain::Phi,
    }
}

/// Run one transfer inside a simulation and return (start_ns, end_ns).
fn timed_transfer(
    src_mem: MemRef,
    dst_mem: MemRef,
    len: u64,
    initiator: NodeId,
) -> (u64, u64, Vec<u8>) {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let out: Arc<Mutex<(u64, u64, Vec<u8>)>> = Arc::new(Mutex::new((0, 0, Vec::new())));
    let out2 = out.clone();
    let cl = cluster.clone();
    sim.spawn("xfer", move |ctx| {
        let src = cl.alloc_pages(src_mem, len).unwrap();
        let dst = cl.alloc_pages(dst_mem, len).unwrap();
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        cl.write(&src, 0, &payload);
        let t = if src_mem.node == dst_mem.node && src_mem.domain != dst_mem.domain {
            cl.pci_dma(&src, &dst, ctx.now())
        } else {
            cl.ib_transfer(&src, &dst, initiator, ctx.now())
        };
        ctx.wait(&t.completion);
        let got = cl.read_vec(&dst);
        *out2.lock() = (t.start.as_nanos(), t.end.as_nanos(), got);
    });
    sim.run_expect();
    let r = out.lock().clone();
    r
}

#[test]
fn ib_host_to_host_hits_wire_bandwidth() {
    let len = 1 << 20; // 1 MiB
    let (start, end, data) = timed_transfer(host(0), host(1), len, NodeId(0));
    assert_eq!(start, 0);
    let bw = simcore::bandwidth(len, SimTime(end) - SimTime(start));
    // Wire is 6 GB/s; latency shaves a little off.
    assert!(
        bw > 5.5e9 && bw <= 6.0e9,
        "host-host bw = {:.2} GB/s",
        bw / 1e9
    );
    assert_eq!(data[..16], (0..16u8).collect::<Vec<_>>()[..]);
}

#[test]
fn ib_phi_sourced_is_bottlenecked() {
    let len = 1 << 20;
    let (_s, end_pp, _) = timed_transfer(phi(0), phi(1), len, NodeId(0));
    let (_s, end_hh, _) = timed_transfer(host(0), host(1), len, NodeId(0));
    // Paper Fig. 5: Phi-sourced transfer is more than 4x slower than
    // host-to-host, regardless of the destination domain.
    assert!(end_pp as f64 / end_hh as f64 > 4.0);
    let (_s, end_ph, _) = timed_transfer(phi(0), host(1), len, NodeId(0));
    assert!(end_ph as f64 / end_hh as f64 > 4.0);
}

#[test]
fn ib_host_to_phi_matches_host_to_host() {
    let len = 1 << 20;
    let (_s, end_hp, _) = timed_transfer(host(0), phi(1), len, NodeId(0));
    let (_s, end_hh, _) = timed_transfer(host(0), host(1), len, NodeId(0));
    // Paper Fig. 5: host→Phi delivers the same bandwidth as host→host
    // (within the write-bandwidth margin).
    let ratio = end_hp as f64 / end_hh as f64;
    assert!(ratio < 1.15, "host->phi / host->host = {ratio}");
}

#[test]
fn rdma_read_pays_request_latency() {
    let len = 4096;
    // Initiator == destination node => RDMA READ.
    let (_s, end_read, _) = timed_transfer(host(0), host(1), len, NodeId(1));
    let (_s, end_write, _) = timed_transfer(host(0), host(1), len, NodeId(0));
    let cfg = ClusterConfig::paper();
    assert_eq!(end_read - end_write, cfg.cost.ib_latency.as_nanos());
}

#[test]
fn pci_dma_moves_data_with_latency() {
    let len = 64 * 1024;
    let (start, end, data) = timed_transfer(phi(0), host(0), len, NodeId(0));
    assert_eq!(start, 0);
    let cfg = ClusterConfig::paper();
    let expected = simcore::transfer_time(len, cfg.cost.pci_p2h_bw) + cfg.cost.pci_dma_latency;
    assert_eq!(end, expected.as_nanos());
    assert_eq!(data.len(), len as usize);
    assert_eq!(data[250], 250u8);
}

#[test]
fn concurrent_transfers_queue_on_shared_channel() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let ends: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let cl = cluster.clone();
    let ends2 = ends.clone();
    sim.spawn("poster", move |ctx| {
        let len = 1 << 20;
        let src1 = cl.alloc_pages(host(0), len).unwrap();
        let dst1 = cl.alloc_pages(host(1), len).unwrap();
        let src2 = cl.alloc_pages(host(0), len).unwrap();
        let dst2 = cl.alloc_pages(host(1), len).unwrap();
        let t1 = cl.ib_transfer(&src1, &dst1, NodeId(0), ctx.now());
        let t2 = cl.ib_transfer(&src2, &dst2, NodeId(0), ctx.now());
        // Second transfer queues behind the first on the egress port.
        assert_eq!(t2.start, t1.end - cl.config().cost.ib_latency);
        ctx.wait(&t1.completion);
        ctx.wait(&t2.completion);
        ends2.lock().push(t1.end.as_nanos());
        ends2.lock().push(t2.end.as_nanos());
    });
    sim.run_expect();
    let ends = ends.lock().clone();
    // Serialized: roughly double the single-transfer time.
    assert!((ends[1] as f64 / ends[0] as f64 - 2.0).abs() < 0.01);
}

#[test]
fn disjoint_paths_do_not_interfere() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(4));
    let cl = cluster.clone();
    sim.spawn("poster", move |ctx| {
        let len = 1 << 20;
        let a = cl.alloc_pages(host(0), len).unwrap();
        let b = cl.alloc_pages(host(1), len).unwrap();
        let c = cl.alloc_pages(host(2), len).unwrap();
        let d = cl.alloc_pages(host(3), len).unwrap();
        let t1 = cl.ib_transfer(&a, &b, NodeId(0), ctx.now());
        let t2 = cl.ib_transfer(&c, &d, NodeId(2), ctx.now());
        assert_eq!(t1.start, t2.start);
        assert_eq!(t1.end, t2.end);
        ctx.wait(&t1.completion);
        ctx.wait(&t2.completion);
    });
    sim.run_expect();
}

#[test]
fn phi_capacity_is_enforced() {
    let mut sim = Simulation::new();
    let mut cfg = ClusterConfig::with_nodes(1);
    cfg.phi_mem_capacity = 1 << 20;
    let cluster = Cluster::new(sim.scheduler(), cfg);
    let cl = cluster.clone();
    sim.spawn("alloc", move |_ctx| {
        let ok = cl.alloc_pages(phi(0), 512 << 10).unwrap();
        let err = cl.alloc_pages(phi(0), 600 << 10).unwrap_err();
        assert!(err.available < 600 << 10);
        cl.free(&ok);
        // After freeing, a large allocation fits again.
        cl.alloc_pages(phi(0), 1 << 20).unwrap();
    });
    sim.run_expect();
}

#[test]
fn channel_stats_track_traffic() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(2));
    let cl = cluster.clone();
    sim.spawn("p", move |ctx| {
        let src = cl.alloc_pages(host(0), 8192).unwrap();
        let dst = cl.alloc_pages(host(1), 8192).unwrap();
        let t = cl.ib_transfer(&src, &dst, NodeId(0), ctx.now());
        ctx.wait(&t.completion);
        let stats = cl.channel_stats(NodeId(0));
        let egress = stats.iter().find(|(n, _, _)| *n == "ib-egress").unwrap();
        assert_eq!(egress.1, 8192);
    });
    sim.run_expect();
}

#[test]
fn local_copy_duration_scales() {
    let mut sim = Simulation::new();
    let cluster = Cluster::new(sim.scheduler(), ClusterConfig::with_nodes(1));
    let cl = cluster.clone();
    sim.spawn("p", move |ctx| {
        let a = cl.alloc_pages(phi(0), 4096).unwrap();
        let b = cl.alloc_pages(phi(0), 4096).unwrap();
        cl.write(&a, 0, &[7u8; 4096]);
        let d = cl.local_copy(&a, &b);
        ctx.sleep(d);
        // Paper: <1us for a 4 KiB copy on the Phi.
        assert!(d.as_micros_f64() < 1.0);
        assert_eq!(cl.read_vec(&b), vec![7u8; 4096]);
    });
    sim.run_expect();
}
