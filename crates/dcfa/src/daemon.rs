//! The host-side DCFA CMD server: the delegation process that services
//! offloaded InfiniBand resource operations for Phi-resident programs.
//!
//! One daemon runs per node; each connecting CMD client (one per MPI rank)
//! gets a dedicated handler process, mirroring the paper's `mcexec`
//! delegation process with the DCFA CMD server "registered as an extension
//! of the delegation process" (§IV-B1). Created InfiniBand objects are kept
//! in a per-connection hash table keyed by the published MR key.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{Buffer, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::{ScifEndpoint, ScifFabric};
use simcore::{Ctx, Scheduler};
use verbs::{IbFabric, VerbsContext};

use crate::wire::{err_code, Cmd, Reply};

/// The well-known SCIF port the DCFA daemon listens on.
pub const DCFA_PORT: scif::Port = 4791;

/// Counters the host daemons maintain while servicing offloaded resource
/// operations. Snapshot of a [`DcfaStats`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DcfaCounters {
    /// CMD clients accepted (one per MPI rank per node).
    pub connections: u64,
    /// Commands serviced, of any kind (including errors).
    pub commands: u64,
    /// `RegMr` registrations performed.
    pub mr_registered: u64,
    /// `DeregMr` deregistrations performed.
    pub mr_deregistered: u64,
    /// Offloading-buffer twins allocated + registered (`RegOffloadMr`).
    pub offload_registered: u64,
    /// Offloading-buffer twins released (`DeregOffloadMr`).
    pub offload_deregistered: u64,
    /// Link-fault plans armed on the fabric (`InjectFault`).
    pub faults_armed: u64,
    /// Error replies sent.
    pub errors: u64,
}

/// Shared handle to the daemons' counters, returned by [`spawn_daemons`]
/// / [`spawn_node_daemon`]. Clones observe the same counters.
#[derive(Debug, Clone, Default)]
pub struct DcfaStats(Arc<Mutex<DcfaCounters>>);

impl DcfaStats {
    /// Current counter values.
    pub fn snapshot(&self) -> DcfaCounters {
        *self.0.lock()
    }

    fn update(&self, f: impl FnOnce(&mut DcfaCounters)) {
        f(&mut self.0.lock());
    }
}

/// Spawn one DCFA host daemon per cluster node. Must run before any
/// [`crate::DcfaContext::open`] (clients retry briefly, so same-instant
/// spawn ordering is forgiving). Returns a cluster-wide counter handle
/// aggregated across all node daemons.
pub fn spawn_daemons(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
) -> DcfaStats {
    let stats = DcfaStats::default();
    for n in 0..scif_fabric.cluster().num_nodes() {
        spawn_node_daemon_with(sched, scif_fabric, ib, NodeId(n), stats.clone());
    }
    stats
}

/// Spawn the DCFA host daemon for one node.
pub fn spawn_node_daemon(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
    node: NodeId,
) -> DcfaStats {
    let stats = DcfaStats::default();
    spawn_node_daemon_with(sched, scif_fabric, ib, node, stats.clone());
    stats
}

fn spawn_node_daemon_with(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
    node: NodeId,
    stats: DcfaStats,
) {
    let scif_fabric = scif_fabric.clone();
    let ib = ib.clone();
    sched.spawn_daemon(format!("dcfa-daemon-{node}"), move |ctx| {
        let listener = scif_fabric.listen(
            MemRef {
                node,
                domain: Domain::Host,
            },
            DCFA_PORT,
        );
        let mut conn_id = 0u32;
        loop {
            let ep = listener.accept(ctx);
            let ib = ib.clone();
            let stats = stats.clone();
            stats.update(|c| c.connections += 1);
            ctx.scheduler()
                .spawn_daemon(format!("dcfa-handler-{node}.{conn_id}"), move |hctx| {
                    handler(hctx, ep, ib, node, stats)
                });
            conn_id += 1;
        }
    });
}

/// Serve one CMD client until `Bye`.
fn handler(ctx: &mut Ctx, ep: ScifEndpoint, ib: Arc<IbFabric>, node: NodeId, stats: DcfaStats) {
    let vctx = VerbsContext::open(ib.clone(), node, Domain::Host);
    let cluster = ib.cluster().clone();
    let cost = cluster.config().cost.clone();
    // "registers all the InfiniBand objects created for Xeon Phi
    // co-processor in a hash table, and publishes a hash key for later
    // reuse" — key -> (registered buffer, host twin if offload-mode).
    let mut objects: HashMap<u32, (Buffer, bool)> = HashMap::new();

    loop {
        let raw = ep.recv(ctx);
        let Some(cmd) = Cmd::decode(&raw) else {
            stats.update(|c| {
                c.commands += 1;
                c.errors += 1;
            });
            ep.send(
                ctx,
                &Reply::Error {
                    code: err_code::BAD_REQUEST,
                }
                .encode(),
            );
            continue;
        };
        stats.update(|c| c.commands += 1);
        // Host CPU work to service any offloaded command.
        ctx.sleep(cost.cmd_host_work);
        let reply = match cmd {
            Cmd::Hello | Cmd::CreateQp | Cmd::CreateCq => Reply::Ok,
            Cmd::RegMr { mem, addr, len } => {
                let buffer = Buffer { mem, addr, len };
                // Pin + HCA translation-table update on the host side.
                ctx.sleep(cost.host_mr_reg_base + cost.host_mr_reg_per_page * buffer.pages());
                let mr = vctx.reg_mr_uncharged(buffer.clone());
                objects.insert(mr.key().0, (buffer, false));
                stats.update(|c| c.mr_registered += 1);
                Reply::MrKey { key: mr.key().0 }
            }
            Cmd::DeregMr { key } => match objects.remove(&key) {
                Some((buffer, is_offload)) => {
                    if let Some(mr) = ib_mr(&ib, key) {
                        vctx.dereg_mr(&mr);
                    }
                    if is_offload {
                        cluster.free(&buffer);
                    }
                    stats.update(|c| c.mr_deregistered += 1);
                    Reply::Ok
                }
                None => Reply::Error {
                    code: err_code::UNKNOWN_KEY,
                },
            },
            Cmd::RegOffloadMr { len } => {
                // "the corresponding host buffer is then allocated in the
                // host delegation process and registered as an InfiniBand
                // memory region" (§IV-B4).
                match cluster.alloc_pages(
                    MemRef {
                        node,
                        domain: Domain::Host,
                    },
                    len,
                ) {
                    Ok(host_buf) => {
                        ctx.sleep(
                            cost.host_mr_reg_base + cost.host_mr_reg_per_page * host_buf.pages(),
                        );
                        let mr = vctx.reg_mr_uncharged(host_buf.clone());
                        objects.insert(mr.key().0, (host_buf.clone(), true));
                        stats.update(|c| c.offload_registered += 1);
                        Reply::Offload {
                            key: mr.key().0,
                            host_addr: host_buf.addr,
                            host_len: host_buf.len,
                        }
                    }
                    Err(_) => Reply::Error {
                        code: err_code::OOM,
                    },
                }
            }
            Cmd::DeregOffloadMr { key } => match objects.remove(&key) {
                Some((buffer, _)) => {
                    if let Some(mr) = ib_mr(&ib, key) {
                        vctx.dereg_mr(&mr);
                    }
                    cluster.free(&buffer);
                    stats.update(|c| c.offload_deregistered += 1);
                    Reply::Ok
                }
                None => Reply::Error {
                    code: err_code::UNKNOWN_KEY,
                },
            },
            Cmd::InjectFault(fault) => {
                cluster.inject_link_fault(fault);
                stats.update(|c| c.faults_armed += 1);
                Reply::Ok
            }
            Cmd::Bye => {
                ep.send(ctx, &Reply::Ok.encode());
                return;
            }
        };
        if matches!(reply, Reply::Error { .. }) {
            stats.update(|c| c.errors += 1);
        }
        ep.send(ctx, &reply.encode());
    }
}

fn ib_mr(ib: &Arc<IbFabric>, key: u32) -> Option<verbs::MemoryRegion> {
    ib.mr_handle(verbs::MrKey(key))
}
