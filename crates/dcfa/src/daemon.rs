//! The host-side DCFA CMD server: the delegation process that services
//! offloaded InfiniBand resource operations for Phi-resident programs.
//!
//! One daemon runs per node; each connecting CMD client (one per MPI rank)
//! gets a dedicated handler process, mirroring the paper's `mcexec`
//! delegation process with the DCFA CMD server "registered as an extension
//! of the delegation process" (§IV-B1). Created InfiniBand objects are kept
//! in per-client *sessions* shared across the node's handlers, keyed by the
//! published MR key.
//!
//! The daemon is a first-class failure domain. Three mechanisms make the
//! control plane fault-tolerant:
//!
//! * **Reply-dedup cache** — commands arrive framed with a client sequence
//!   id; each session remembers its recent replies so a retransmitted
//!   command is answered from cache, never re-executed (no double `RegMr`).
//! * **Crash + respawn** — an armed [`DaemonFault`] can crash the node's
//!   delegation process after N commands: every session is lost (host twin
//!   buffers die with the process address space and are freed; plain MRs
//!   survive on the HCA but their metadata is gone), the listen port closes,
//!   and a supervisor respawns the daemon after `restart_delay` with a
//!   bumped incarnation epoch. Replies carry the epoch so clients detect the
//!   restart and replay their resource journal ([`Cmd::AdoptMr`]).
//! * **Lease reclamation** — clients renew a lease with fire-and-forget
//!   [`Cmd::Heartbeat`]s; a per-node reaper reclaims the sessions of expired
//!   clients, deregistering MRs and freeing offload twins, so a client that
//!   dies without `Bye` cannot leak host memory for the life of the run.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, MemRef, NodeId};
use parking_lot::Mutex;
use scif::{ScifEndpoint, ScifFabric};
use simcore::{Ctx, Scheduler, SimDuration, SimEvent, SimTime};
use verbs::{IbFabric, VerbsContext};

use crate::wire::{
    decode_cmd_frame, encode_reply_frame, err_code, Cmd, Reply, CLIENT_NONE, SEQ_NONE,
};

/// The well-known SCIF port the DCFA daemon listens on.
pub const DCFA_PORT: scif::Port = 4791;

/// Counters the host daemons maintain while servicing offloaded resource
/// operations. Snapshot of a [`DcfaStats`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DcfaCounters {
    /// CMD clients accepted (one per MPI rank per node, plus reconnects).
    pub connections: u64,
    /// Commands serviced, of any kind (including errors).
    pub commands: u64,
    /// `RegMr` registrations performed.
    pub mr_registered: u64,
    /// `DeregMr` deregistrations performed (including session drains).
    pub mr_deregistered: u64,
    /// Offloading-buffer twins allocated + registered (`RegOffloadMr`).
    pub offload_registered: u64,
    /// Offloading-buffer twins released (including session drains).
    pub offload_deregistered: u64,
    /// Link-fault plans armed on the fabric (`InjectFault`).
    pub faults_armed: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Client-side command retransmissions after a reply timeout.
    pub cmd_retries: u64,
    /// Client-side reply timeouts (each retry is preceded by one).
    pub cmd_timeouts: u64,
    /// Daemon incarnations lost to injected crashes.
    pub daemon_crashes: u64,
    /// Daemon incarnations respawned by the supervisor after a crash.
    pub daemon_respawns: u64,
    /// Expired client sessions reclaimed by the lease reaper.
    pub leases_reclaimed: u64,
    /// Retransmitted commands answered from the reply-dedup cache.
    pub reply_replays: u64,
    /// Client re-attaches (`Hello` with a previously assigned id).
    pub reattaches: u64,
    /// MR metadata entries re-adopted during journal replay.
    pub mrs_adopted: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
}

/// Shared handle to the daemons' counters, returned by [`spawn_daemons`]
/// / [`spawn_node_daemon`]. Clones observe the same counters. The client
/// side ([`crate::DcfaContext`]) tallies its retry/timeout counters into
/// the same handle when given one.
#[derive(Debug, Clone, Default)]
pub struct DcfaStats(Arc<Mutex<DcfaCounters>>);

impl DcfaStats {
    /// Current counter values.
    pub fn snapshot(&self) -> DcfaCounters {
        *self.0.lock()
    }

    pub(crate) fn update(&self, f: impl FnOnce(&mut DcfaCounters)) {
        f(&mut self.0.lock());
    }
}

// ---------------------------------------------------------------------------
// Control-plane events
// ---------------------------------------------------------------------------

/// Control-plane happenings both sides of the command channel report
/// through an optional hook, so an embedding layer (the MPI core's tracer)
/// can audit fault handling without this crate depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A client command timed out waiting for its reply.
    CmdTimeout { client: u32, seq: u32 },
    /// A client retransmitted a timed-out command (`attempt` starts at 1).
    CmdRetry { client: u32, seq: u32, attempt: u32 },
    /// A client reconnected and replayed its resource journal; `replayed`
    /// of `journaled` entries were re-established under daemon `epoch`.
    Reattach {
        client: u32,
        epoch: u32,
        journaled: u64,
        replayed: u64,
    },
    /// The node's delegation process crashed; `epoch` is the incarnation
    /// that will replace it.
    DaemonCrash { node: NodeId, epoch: u32 },
    /// The supervisor respawned the node daemon as incarnation `epoch`.
    DaemonRespawn { node: NodeId, epoch: u32 },
    /// The lease reaper reclaimed an expired client session holding
    /// `objects` IB objects.
    LeaseReclaim {
        node: NodeId,
        client: u32,
        objects: u64,
    },
    /// A retransmitted command was answered from the reply-dedup cache.
    ReplyReplayed { node: NodeId, client: u32, seq: u32 },
    /// A client gave up on offload twins and degraded to direct-from-Phi
    /// rendezvous sends.
    OffloadDegraded { client: u32 },
}

/// Observer callback for [`CtrlEvent`]s.
pub type CtrlHook = Arc<dyn Fn(&CtrlEvent) + Send + Sync>;

/// Which control-plane operation a [`CtrlPerf`] sample timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlOp {
    /// One full `command()` round-trip, including retries and reattaches.
    Command,
    /// One offload-twin PCIe sync (`sync_offload_mr`).
    OffloadSync,
}

/// A latency sample from the control plane, in virtual nanoseconds.
/// Reported through [`PerfProbe`] so an embedding layer can feed its own
/// histograms without this crate depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlPerf {
    pub op: CtrlOp,
    /// Bytes moved, when the operation has a payload (offload syncs).
    pub bytes: u64,
    /// Elapsed virtual time in nanoseconds.
    pub ns: u64,
}

/// Observer callback for [`CtrlPerf`] samples.
pub type PerfProbe = Arc<dyn Fn(CtrlPerf) + Send + Sync>;

// ---------------------------------------------------------------------------
// Daemon fault plans
// ---------------------------------------------------------------------------

/// What an armed daemon fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonFaultKind {
    /// The delegation process dies mid-command: no reply, all sessions
    /// lost, listen port closed until the supervisor respawns it.
    Crash,
    /// The command executes but its reply is lost (exercises the client
    /// retransmit + reply-dedup path).
    DropReply,
    /// The reply is held past the client's timeout before being sent.
    DelayReply,
}

/// One planned control-plane fault: fire on the sequenced command serviced
/// after skipping `after_cmds` matching commands on the scoped node
/// (`None` matches every node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonFault {
    pub after_cmds: u64,
    pub kind: DaemonFaultKind,
    pub node: Option<NodeId>,
}

/// Parse a `repro --daemon-faults` spec: comma-separated terms of the form
/// `<after>:<kind>[@<node>]`, where `<after>` counts sequenced commands to
/// skip, `<kind>` is one of `crash`, `drop`, `delay`, and the optional
/// scope restricts the fault to one node's daemon (`*` means any node).
///
/// Example: `6:crash,20:drop@1,35:delay`.
pub fn parse_daemon_fault_spec(spec: &str) -> Result<Vec<DaemonFault>, String> {
    let mut out = Vec::new();
    for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (after_s, rest) = term
            .split_once(':')
            .ok_or_else(|| format!("`{term}`: expected `<after>:<kind>[@<node>]`"))?;
        let after_cmds: u64 = after_s
            .trim()
            .parse()
            .map_err(|_| format!("`{term}`: bad command count `{after_s}`"))?;
        let (kind_s, scope) = match rest.split_once('@') {
            Some((k, s)) => (k, Some(s.trim())),
            None => (rest, None),
        };
        let kind = match kind_s.trim() {
            "crash" => DaemonFaultKind::Crash,
            "drop" => DaemonFaultKind::DropReply,
            "delay" => DaemonFaultKind::DelayReply,
            other => return Err(format!("`{term}`: unknown daemon fault kind `{other}`")),
        };
        let node = match scope {
            None | Some("*") => None,
            Some(s) => Some(NodeId(
                s.parse::<usize>()
                    .map_err(|_| format!("`{term}`: bad node `{s}`"))?,
            )),
        };
        out.push(DaemonFault {
            after_cmds,
            kind,
            node,
        });
    }
    if out.is_empty() {
        return Err("empty daemon fault spec".into());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Daemon configuration
// ---------------------------------------------------------------------------

/// Tunables for the node daemons.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Downtime between a crash and the supervisor's respawn.
    pub restart_delay: SimDuration,
    /// Client-lease time-to-live; `None` disables the reaper (sessions of
    /// silent clients are kept until `Bye`).
    pub lease_ttl: Option<SimDuration>,
    /// How often the reaper scans for expired leases.
    pub reaper_period: SimDuration,
    /// Replies remembered per session for retransmit deduplication.
    pub dedup_depth: usize,
    /// Consecutive undecodable commands before the handler assumes a
    /// corrupt peer, drains its session and disconnects.
    pub decode_storm_limit: u32,
    /// How long a `DelayReply` fault holds the reply (should exceed the
    /// client command timeout to force a retransmit).
    pub delay_reply: SimDuration,
    /// Armed control-plane fault plans.
    pub faults: Vec<DaemonFault>,
    /// Control-plane event observer.
    pub hook: Option<CtrlHook>,
}

impl fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("restart_delay", &self.restart_delay)
            .field("lease_ttl", &self.lease_ttl)
            .field("reaper_period", &self.reaper_period)
            .field("dedup_depth", &self.dedup_depth)
            .field("decode_storm_limit", &self.decode_storm_limit)
            .field("delay_reply", &self.delay_reply)
            .field("faults", &self.faults)
            .field("hook", &self.hook.as_ref().map(|_| ".."))
            .finish()
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            restart_delay: SimDuration::from_micros(100),
            lease_ttl: None,
            reaper_period: SimDuration::from_micros(200),
            dedup_depth: 32,
            decode_storm_limit: 8,
            delay_reply: SimDuration::from_micros(2000),
            faults: Vec::new(),
            hook: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared per-node state
// ---------------------------------------------------------------------------

/// One client's control-plane state, shared across the node's handler
/// incarnations so crash drains, lease reclamation and reconnecting
/// handlers all see the same objects.
struct Session {
    /// key -> (registered buffer, host twin if offload-mode).
    objects: HashMap<u32, (Buffer, bool)>,
    /// Recent (seq, reply) pairs for retransmit deduplication.
    replies: VecDeque<(u32, Reply)>,
    /// Lease renewal instant (any command or heartbeat).
    last_seen: SimTime,
}

impl Session {
    fn new(now: SimTime) -> Self {
        Session {
            objects: HashMap::new(),
            replies: VecDeque::new(),
            last_seen: now,
        }
    }
}

struct NodeShared {
    /// Daemon incarnation; bumped on crash so stale handlers die.
    epoch: u32,
    next_client: u32,
    sessions: HashMap<u32, Session>,
    faults: Vec<DaemonFault>,
}

/// Everything a node's daemon processes share.
struct NodeCtl {
    scif: Arc<ScifFabric>,
    ib: Arc<IbFabric>,
    node: NodeId,
    stats: DcfaStats,
    cfg: DaemonConfig,
    shared: Mutex<NodeShared>,
    /// Notified when a session is created; the lease reaper blocks on it
    /// while there is nothing to watch (a polling daemon would otherwise
    /// keep the event queue non-empty and the simulation alive forever).
    session_added: SimEvent,
}

fn host_ref(node: NodeId) -> MemRef {
    MemRef {
        node,
        domain: Domain::Host,
    }
}

fn emit(ctl: &NodeCtl, ev: CtrlEvent) {
    if let Some(hook) = &ctl.cfg.hook {
        hook(&ev);
    }
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

/// Spawn one DCFA host daemon per cluster node. Must run before any
/// [`crate::DcfaContext::open`] (clients retry briefly, so same-instant
/// spawn ordering is forgiving). Returns a cluster-wide counter handle
/// aggregated across all node daemons.
pub fn spawn_daemons(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
) -> DcfaStats {
    spawn_daemons_with(sched, scif_fabric, ib, DaemonConfig::default())
}

/// [`spawn_daemons`] with explicit daemon tunables (fault plans, lease
/// TTL, restart delay, control-plane hook).
pub fn spawn_daemons_with(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
    cfg: DaemonConfig,
) -> DcfaStats {
    let stats = DcfaStats::default();
    for n in 0..scif_fabric.cluster().num_nodes() {
        spawn_node_daemon_cfg(
            sched,
            scif_fabric,
            ib,
            NodeId(n),
            cfg.clone(),
            stats.clone(),
        );
    }
    stats
}

/// Spawn the DCFA host daemon for one node.
pub fn spawn_node_daemon(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
    node: NodeId,
) -> DcfaStats {
    let stats = DcfaStats::default();
    spawn_node_daemon_cfg(
        sched,
        scif_fabric,
        ib,
        node,
        DaemonConfig::default(),
        stats.clone(),
    );
    stats
}

fn spawn_node_daemon_cfg(
    sched: &Scheduler,
    scif_fabric: &Arc<ScifFabric>,
    ib: &Arc<IbFabric>,
    node: NodeId,
    cfg: DaemonConfig,
    stats: DcfaStats,
) {
    let faults = cfg.faults.clone();
    let ctl = Arc::new(NodeCtl {
        scif: scif_fabric.clone(),
        ib: ib.clone(),
        node,
        stats,
        cfg,
        shared: Mutex::new(NodeShared {
            epoch: 1,
            next_client: 1,
            sessions: HashMap::new(),
            faults,
        }),
        session_added: SimEvent::new(),
    });
    spawn_acceptor(sched, ctl.clone(), 1);
    spawn_reaper(sched, ctl);
}

/// One daemon incarnation: listen, accept, hand each connection to a
/// dedicated handler stamped with the current epoch.
fn spawn_acceptor(sched: &Scheduler, ctl: Arc<NodeCtl>, incarnation: u32) {
    sched.spawn_daemon(
        format!("dcfa-daemon-{}.e{incarnation}", ctl.node),
        move |ctx| {
            let listener = ctl.scif.listen(host_ref(ctl.node), DCFA_PORT);
            let mut conn_id = 0u32;
            loop {
                let ep = listener.accept(ctx);
                ctl.stats.update(|c| c.connections += 1);
                let epoch = ctl.shared.lock().epoch;
                let ctl2 = ctl.clone();
                ctx.scheduler().spawn_daemon(
                    format!("dcfa-handler-{}.e{epoch}.{conn_id}", ctl.node),
                    move |hctx| handler(hctx, ep, ctl2, epoch),
                );
                conn_id += 1;
            }
        },
    );
}

/// Periodically reclaim sessions whose lease expired (client died without
/// `Bye`, or lost its command channel for longer than the TTL).
fn spawn_reaper(sched: &Scheduler, ctl: Arc<NodeCtl>) {
    let Some(ttl) = ctl.cfg.lease_ttl else {
        return;
    };
    sched.spawn_daemon(format!("dcfa-reaper-{}", ctl.node), move |ctx| {
        let vctx = VerbsContext::open(ctl.ib.clone(), ctl.node, Domain::Host);
        let cluster = ctl.ib.cluster().clone();
        loop {
            // Quiesce while there are no leases to watch: a timed poll here
            // would keep the simulation's event queue busy forever.
            let seen = ctl.session_added.epoch();
            if ctl.shared.lock().sessions.is_empty() {
                ctx.wait_event(&ctl.session_added, seen, "lease reaper idle");
                continue;
            }
            ctx.sleep(ctl.cfg.reaper_period);
            let now = ctx.now();
            let expired: Vec<(u32, Session)> = {
                let mut sh = ctl.shared.lock();
                let dead: Vec<u32> = sh
                    .sessions
                    .iter()
                    .filter(|(_, s)| now - s.last_seen > ttl)
                    .map(|(id, _)| *id)
                    .collect();
                dead.into_iter()
                    .filter_map(|id| sh.sessions.remove(&id).map(|s| (id, s)))
                    .collect()
            };
            for (id, sess) in expired {
                let n = sess.objects.len() as u64;
                drain_objects(&ctl, &vctx, &cluster, sess.objects);
                ctl.stats.update(|c| c.leases_reclaimed += 1);
                emit(
                    &ctl,
                    CtrlEvent::LeaseReclaim {
                        node: ctl.node,
                        client: id,
                        objects: n,
                    },
                );
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Fault firing and drains
// ---------------------------------------------------------------------------

/// Tick every armed plan matching this node; fire (and consume) the first
/// that has skipped its quota. Mirrors `Cluster::take_link_fault`.
fn take_daemon_fault(ctl: &NodeCtl) -> Option<DaemonFaultKind> {
    let node = ctl.node;
    let mut sh = ctl.shared.lock();
    let mut fired = None;
    sh.faults.retain_mut(|p| {
        if p.node.is_some_and(|n| n != node) {
            return true;
        }
        if p.after_cmds > 0 {
            p.after_cmds -= 1;
            return true;
        }
        if fired.is_none() {
            fired = Some(p.kind);
            return false;
        }
        true
    });
    fired
}

/// Clean teardown of a session's objects: deregister every MR and free
/// offload twins. Used by `Bye`, decode-storm disconnects and the reaper.
fn drain_objects(
    ctl: &NodeCtl,
    vctx: &VerbsContext,
    cluster: &Arc<Cluster>,
    objects: HashMap<u32, (Buffer, bool)>,
) {
    for (key, (buf, is_offload)) in objects {
        if let Some(mr) = ib_mr(&ctl.ib, key) {
            vctx.dereg_mr(&mr);
        }
        if is_offload {
            cluster.free(&buf);
            ctl.stats.update(|c| c.offload_deregistered += 1);
        } else {
            ctl.stats.update(|c| c.mr_deregistered += 1);
        }
    }
}

/// Remove `client`'s session (if any) and drain it cleanly.
fn drain_client(ctl: &NodeCtl, vctx: &VerbsContext, cluster: &Arc<Cluster>, client: Option<u32>) {
    let Some(id) = client else { return };
    let sess = ctl.shared.lock().sessions.remove(&id);
    if let Some(sess) = sess {
        drain_objects(ctl, vctx, cluster, sess.objects);
    }
}

/// The delegation process dies: all sessions are lost. Host twin buffers
/// lived in the daemon's address space, so they are deregistered and their
/// pages freed (kernel reclaim); plain MRs survive on the HCA (IB objects
/// are kernel-owned) but their hash-table metadata is gone until the client
/// replays its journal. The listen port closes until the supervisor
/// respawns the daemon one `restart_delay` later under a bumped epoch.
fn crash(
    ctx: &mut Ctx,
    ctl: &Arc<NodeCtl>,
    vctx: &VerbsContext,
    cluster: &Arc<Cluster>,
    my_epoch: u32,
) {
    let sessions = {
        let mut sh = ctl.shared.lock();
        if sh.epoch != my_epoch {
            return; // another handler already crashed this incarnation
        }
        sh.epoch = my_epoch + 1;
        std::mem::take(&mut sh.sessions)
    };
    let new_epoch = my_epoch + 1;
    ctl.stats.update(|c| c.daemon_crashes += 1);
    emit(
        ctl,
        CtrlEvent::DaemonCrash {
            node: ctl.node,
            epoch: new_epoch,
        },
    );
    for (_, sess) in sessions {
        for (key, (buf, is_offload)) in sess.objects {
            if is_offload {
                if let Some(mr) = ib_mr(&ctl.ib, key) {
                    vctx.dereg_mr(&mr);
                }
                cluster.free(&buf);
                ctl.stats.update(|c| c.offload_deregistered += 1);
            }
        }
    }
    ctl.scif.unlisten(host_ref(ctl.node), DCFA_PORT);
    let ctl2 = ctl.clone();
    ctx.scheduler()
        .call_after(ctl.cfg.restart_delay, move |sched| {
            ctl2.stats.update(|c| c.daemon_respawns += 1);
            emit(
                &ctl2,
                CtrlEvent::DaemonRespawn {
                    node: ctl2.node,
                    epoch: new_epoch,
                },
            );
            spawn_acceptor(sched, ctl2.clone(), new_epoch);
        });
}

// ---------------------------------------------------------------------------
// The handler
// ---------------------------------------------------------------------------

/// Serve one CMD client until `Bye`, a decode storm, or the death of this
/// daemon incarnation.
fn handler(ctx: &mut Ctx, ep: ScifEndpoint, ctl: Arc<NodeCtl>, my_epoch: u32) {
    let vctx = VerbsContext::open(ctl.ib.clone(), ctl.node, Domain::Host);
    let cluster = ctl.ib.cluster().clone();
    let cost = cluster.config().cost.clone();
    let mut client: Option<u32> = None;
    let mut decode_failures = 0u32;

    loop {
        let raw = ep.recv(ctx);
        if ctl.shared.lock().epoch != my_epoch {
            // Our incarnation crashed while we were blocked; the process is
            // gone, so the command goes unanswered and the client's timeout
            // path takes over.
            return;
        }
        let Some((seq, cmd)) = decode_cmd_frame(&raw) else {
            ctl.stats.update(|c| {
                c.commands += 1;
                c.errors += 1;
            });
            decode_failures += 1;
            if decode_failures >= ctl.cfg.decode_storm_limit {
                drain_client(&ctl, &vctx, &cluster, client);
                return;
            }
            ep.send(
                ctx,
                &encode_reply_frame(
                    SEQ_NONE,
                    my_epoch,
                    &Reply::Error {
                        code: err_code::BAD_REQUEST,
                    },
                ),
            );
            continue;
        };
        decode_failures = 0;

        if matches!(cmd, Cmd::Heartbeat) {
            // Fire-and-forget lease renewal: no reply, no fault ticking.
            ctl.stats.update(|c| c.heartbeats += 1);
            if let Some(id) = client {
                let now = ctx.now();
                if let Some(s) = ctl.shared.lock().sessions.get_mut(&id) {
                    s.last_seen = now;
                }
            }
            continue;
        }

        ctl.stats.update(|c| c.commands += 1);
        // Host CPU work to service any offloaded command.
        ctx.sleep(cost.cmd_host_work);

        // Retransmission? Answer from the dedup cache without re-executing.
        if let Some(id) = client {
            let now = ctx.now();
            let cached = {
                let mut sh = ctl.shared.lock();
                sh.sessions.get_mut(&id).and_then(|s| {
                    s.last_seen = now;
                    s.replies
                        .iter()
                        .find(|(s2, _)| *s2 == seq)
                        .map(|(_, r)| r.clone())
                })
            };
            if let Some(r) = cached {
                ctl.stats.update(|c| c.reply_replays += 1);
                emit(
                    &ctl,
                    CtrlEvent::ReplyReplayed {
                        node: ctl.node,
                        client: id,
                        seq,
                    },
                );
                ep.send(ctx, &encode_reply_frame(seq, my_epoch, &r));
                continue;
            }
        }

        let mut delay_reply = false;
        let mut drop_reply = false;
        match take_daemon_fault(&ctl) {
            Some(DaemonFaultKind::Crash) => {
                crash(ctx, &ctl, &vctx, &cluster, my_epoch);
                return;
            }
            Some(DaemonFaultKind::DropReply) => drop_reply = true,
            Some(DaemonFaultKind::DelayReply) => delay_reply = true,
            None => {}
        }

        let mut terminate = false;
        let reply = match cmd {
            Cmd::Hello {
                client: wire_client,
            } => {
                let now = ctx.now();
                let id = {
                    let mut sh = ctl.shared.lock();
                    let id = if wire_client == CLIENT_NONE {
                        let id = sh.next_client;
                        sh.next_client += 1;
                        id
                    } else {
                        wire_client
                    };
                    sh.sessions.entry(id).or_insert_with(|| Session::new(now));
                    id
                };
                ctl.session_added.notify_all(&ctx.scheduler());
                if wire_client != CLIENT_NONE {
                    ctl.stats.update(|c| c.reattaches += 1);
                }
                client = Some(id);
                Reply::Hello { client: id }
            }
            Cmd::Heartbeat => unreachable!("handled above"),
            Cmd::CreateQp | Cmd::CreateCq => Reply::Ok,
            Cmd::RegMr { mem, addr, len } => match session_mut(&ctl, client) {
                Err(e) => e,
                Ok(()) => {
                    let buffer = Buffer { mem, addr, len };
                    // Pin + HCA translation-table update on the host side.
                    ctx.sleep(cost.host_mr_reg_base + cost.host_mr_reg_per_page * buffer.pages());
                    let mr = vctx.reg_mr_uncharged(buffer.clone());
                    let adopted = with_session(&ctl, client, |s| {
                        s.objects.insert(mr.key().0, (buffer.clone(), false));
                    });
                    if adopted.is_some() {
                        ctl.stats.update(|c| c.mr_registered += 1);
                        Reply::MrKey { key: mr.key().0 }
                    } else {
                        // The lease expired during the registration sleep;
                        // undo so nothing dangles outside a session.
                        vctx.dereg_mr(&mr);
                        Reply::Error {
                            code: err_code::NO_SESSION,
                        }
                    }
                }
            },
            Cmd::AdoptMr { key } => match session_mut(&ctl, client) {
                Err(e) => e,
                Ok(()) => match ib_mr(&ctl.ib, key) {
                    Some(mr) => {
                        let buffer = mr.buffer().clone();
                        with_session(&ctl, client, |s| {
                            s.objects.insert(key, (buffer.clone(), false));
                        });
                        ctl.stats.update(|c| c.mrs_adopted += 1);
                        Reply::MrKey { key }
                    }
                    None => Reply::Error {
                        code: err_code::UNKNOWN_KEY,
                    },
                },
            },
            Cmd::DeregMr { key } => {
                let removed = with_session(&ctl, client, |s| s.objects.remove(&key)).flatten();
                match removed {
                    Some((buffer, is_offload)) => {
                        if let Some(mr) = ib_mr(&ctl.ib, key) {
                            vctx.dereg_mr(&mr);
                        }
                        if is_offload {
                            cluster.free(&buffer);
                        }
                        ctl.stats.update(|c| c.mr_deregistered += 1);
                        Reply::Ok
                    }
                    None => Reply::Error {
                        code: err_code::UNKNOWN_KEY,
                    },
                }
            }
            Cmd::RegOffloadMr { len } => match session_mut(&ctl, client) {
                Err(e) => e,
                Ok(()) => {
                    // "the corresponding host buffer is then allocated in the
                    // host delegation process and registered as an InfiniBand
                    // memory region" (§IV-B4).
                    match cluster.alloc_pages(host_ref(ctl.node), len) {
                        Ok(host_buf) => {
                            ctx.sleep(
                                cost.host_mr_reg_base
                                    + cost.host_mr_reg_per_page * host_buf.pages(),
                            );
                            let mr = vctx.reg_mr_uncharged(host_buf.clone());
                            let adopted = with_session(&ctl, client, |s| {
                                s.objects.insert(mr.key().0, (host_buf.clone(), true));
                            });
                            if adopted.is_some() {
                                ctl.stats.update(|c| c.offload_registered += 1);
                                Reply::Offload {
                                    key: mr.key().0,
                                    host_addr: host_buf.addr,
                                    host_len: host_buf.len,
                                }
                            } else {
                                vctx.dereg_mr(&mr);
                                cluster.free(&host_buf);
                                Reply::Error {
                                    code: err_code::NO_SESSION,
                                }
                            }
                        }
                        Err(_) => Reply::Error {
                            code: err_code::OOM,
                        },
                    }
                }
            },
            Cmd::DeregOffloadMr { key } => {
                // Idempotent teardown: a key the reaper (or a crash) already
                // reclaimed — or a whole reclaimed session — is simply gone;
                // the client's intent is satisfied either way.
                let removed = with_session(&ctl, client, |s| s.objects.remove(&key)).flatten();
                if let Some((buffer, _)) = removed {
                    if let Some(mr) = ib_mr(&ctl.ib, key) {
                        vctx.dereg_mr(&mr);
                    }
                    cluster.free(&buffer);
                    ctl.stats.update(|c| c.offload_deregistered += 1);
                }
                Reply::Ok
            }
            Cmd::InjectFault(fault) => {
                cluster.inject_link_fault(fault);
                ctl.stats.update(|c| c.faults_armed += 1);
                Reply::Ok
            }
            Cmd::Bye => {
                drain_client(&ctl, &vctx, &cluster, client);
                terminate = true;
                Reply::Ok
            }
        };

        if matches!(reply, Reply::Error { .. }) {
            ctl.stats.update(|c| c.errors += 1);
        }
        // Remember the reply for retransmit deduplication.
        if let Some(id) = client {
            let depth = ctl.cfg.dedup_depth;
            let mut sh = ctl.shared.lock();
            if let Some(s) = sh.sessions.get_mut(&id) {
                s.replies.push_back((seq, reply.clone()));
                while s.replies.len() > depth {
                    s.replies.pop_front();
                }
            }
        }
        if delay_reply {
            ctx.sleep(ctl.cfg.delay_reply);
        }
        if !drop_reply {
            ep.send(ctx, &encode_reply_frame(seq, my_epoch, &reply));
        }
        if terminate {
            return;
        }
    }
}

/// `Ok(())` if `client` has a live session, else the error reply to send
/// (no `Hello` yet, or the lease was reclaimed → client must re-attach).
fn session_mut(ctl: &NodeCtl, client: Option<u32>) -> Result<(), Reply> {
    let ok = client.is_some_and(|id| ctl.shared.lock().sessions.contains_key(&id));
    if ok {
        Ok(())
    } else {
        Err(Reply::Error {
            code: err_code::NO_SESSION,
        })
    }
}

/// Run `f` on `client`'s session if it still exists.
fn with_session<R>(
    ctl: &NodeCtl,
    client: Option<u32>,
    f: impl FnOnce(&mut Session) -> R,
) -> Option<R> {
    let id = client?;
    let mut sh = ctl.shared.lock();
    sh.sessions.get_mut(&id).map(f)
}

fn ib_mr(ib: &Arc<IbFabric>, key: u32) -> Option<verbs::MemoryRegion> {
    ib.mr_handle(verbs::MrKey(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_fault_spec_round_trips() {
        let plans = parse_daemon_fault_spec("6:crash, 20:drop@1, 35:delay@*").unwrap();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].after_cmds, 6);
        assert_eq!(plans[0].kind, DaemonFaultKind::Crash);
        assert_eq!(plans[0].node, None);
        assert_eq!(plans[1].kind, DaemonFaultKind::DropReply);
        assert_eq!(plans[1].node, Some(NodeId(1)));
        assert_eq!(plans[2].kind, DaemonFaultKind::DelayReply);
        assert_eq!(plans[2].node, None);
    }

    #[test]
    fn bad_daemon_fault_specs_rejected() {
        assert!(parse_daemon_fault_spec("").is_err());
        assert!(parse_daemon_fault_spec("crash").is_err());
        assert!(parse_daemon_fault_spec("x:crash").is_err());
        assert!(parse_daemon_fault_spec("1:meteor").is_err());
        assert!(parse_daemon_fault_spec("1:crash@phi").is_err());
    }
}
