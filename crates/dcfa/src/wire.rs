//! Binary codec for the DCFA command channel (Phi CMD client → host CMD
//! server). Commands are small fixed-layout messages: one tag byte followed
//! by little-endian fields, mirroring the paper's "command mechanism ...
//! for offloading these requests to a host delegation process" (§IV-B1).
//!
//! On the wire every command is framed with a client-assigned sequence id
//! and every reply echoes that id plus the daemon's incarnation epoch
//! ([`encode_cmd_frame`]/[`encode_reply_frame`]): sequence ids let the
//! daemon deduplicate retransmissions (a timed-out command is answered from
//! a reply cache, never re-executed), and the epoch lets a client detect
//! that the daemon restarted underneath it and replay its resource journal.

use fabric::{Domain, LinkFault, LinkFaultKind, MemRef, NodeId};

/// Sequence id used by unsequenced frames (heartbeats, error replies to
/// undecodable commands). Never dedup-cached.
pub const SEQ_NONE: u32 = u32::MAX;

/// `Cmd::Hello { client }` value asking the daemon to assign a fresh
/// client id (first attach); re-attaching clients send their assigned id.
pub const CLIENT_NONE: u32 = u32::MAX;

/// Commands sent from the Phi-side CMD client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Initial handshake after connecting (HCA init / resource setup).
    /// `client` is [`CLIENT_NONE`] on first attach (daemon assigns an id in
    /// [`Reply::Hello`]) or the previously assigned id on re-attach.
    Hello { client: u32 },
    /// Register `len` bytes at `addr` in `mem` as an InfiniBand MR. The
    /// client has already translated virtual→physical (charged separately).
    RegMr { mem: MemRef, addr: u64, len: u64 },
    /// Deregister an MR by key.
    DeregMr { key: u32 },
    /// Allocate QP resources on the host side (timing; structures are
    /// distributed between host and Phi memory).
    CreateQp,
    /// Allocate CQ resources on the host side.
    CreateCq,
    /// Allocate and register a host twin buffer of `len` bytes for the
    /// offloading-send-buffer mode (paper §IV-B4, `reg_offload_mr`).
    RegOffloadMr { len: u64 },
    /// Tear down an offload twin buffer (`dereg_offload_mr`).
    DeregOffloadMr { key: u32 },
    /// Client is going away.
    Bye,
    /// Arm a link-fault plan on the cluster fabric (test harnesses drive
    /// this through the same command channel as resource offloading, so a
    /// Phi-resident process can schedule faults without host-side code).
    InjectFault(fabric::LinkFault),
    /// Liveness beacon renewing the client's lease. Fire-and-forget: the
    /// daemon does not reply, so a sidecar heartbeat process can share the
    /// endpoint without stealing command replies.
    Heartbeat,
    /// Journal replay after a daemon respawn: re-adopt the control-plane
    /// metadata for MR `key`, which survived the crash on the HCA (IB
    /// objects live in the kernel driver, not the delegation process).
    AdoptMr { key: u32 },
}

/// Replies from the host CMD server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    Ok,
    /// MR registered under `key`.
    MrKey {
        key: u32,
    },
    /// Offload twin registered: host-side key and buffer address.
    Offload {
        key: u32,
        host_addr: u64,
        host_len: u64,
    },
    /// Command failed (e.g. host out of memory).
    Error {
        code: u8,
    },
    /// Handshake accepted: the client id to use from now on (assigned fresh
    /// when the client sent [`CLIENT_NONE`]).
    Hello {
        client: u32,
    },
}

/// Error codes carried by [`Reply::Error`].
pub mod err_code {
    pub const OOM: u8 = 1;
    pub const UNKNOWN_KEY: u8 = 2;
    pub const BAD_REQUEST: u8 = 3;
    /// The client's lease expired and its session was reclaimed (or it
    /// never said Hello); it must re-attach and replay its journal.
    pub const NO_SESSION: u8 = 4;
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.data.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.data.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn domain_tag(d: Domain) -> u8 {
    match d {
        Domain::Host => 0,
        Domain::Phi => 1,
    }
}

fn domain_from(tag: u8) -> Option<Domain> {
    match tag {
        0 => Some(Domain::Host),
        1 => Some(Domain::Phi),
        _ => None,
    }
}

fn fault_kind_tag(k: LinkFaultKind) -> u8 {
    match k {
        LinkFaultKind::Rnr => 0,
        LinkFaultKind::Retry => 1,
        LinkFaultKind::Fatal => 2,
    }
}

fn fault_kind_from(tag: u8) -> Option<LinkFaultKind> {
    match tag {
        0 => Some(LinkFaultKind::Rnr),
        1 => Some(LinkFaultKind::Retry),
        2 => Some(LinkFaultKind::Fatal),
        _ => None,
    }
}

/// A fault scope of `None` ("any node") rides the wire as `u32::MAX`.
fn node_scope_tag(n: Option<NodeId>) -> u32 {
    n.map_or(u32::MAX, |n| n.0 as u32)
}

fn node_scope_from(v: u32) -> Option<NodeId> {
    (v != u32::MAX).then_some(NodeId(v as usize))
}

impl Cmd {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            Cmd::Hello { client } => {
                b.push(0);
                put_u32(&mut b, *client);
            }
            Cmd::RegMr { mem, addr, len } => {
                b.push(1);
                put_u32(&mut b, mem.node.0 as u32);
                b.push(domain_tag(mem.domain));
                put_u64(&mut b, *addr);
                put_u64(&mut b, *len);
            }
            Cmd::DeregMr { key } => {
                b.push(2);
                put_u32(&mut b, *key);
            }
            Cmd::CreateQp => b.push(3),
            Cmd::CreateCq => b.push(4),
            Cmd::RegOffloadMr { len } => {
                b.push(5);
                put_u64(&mut b, *len);
            }
            Cmd::DeregOffloadMr { key } => {
                b.push(6);
                put_u32(&mut b, *key);
            }
            Cmd::Bye => b.push(7),
            Cmd::InjectFault(f) => {
                b.push(8);
                put_u64(&mut b, f.after_ops);
                b.push(fault_kind_tag(f.kind));
                put_u32(&mut b, node_scope_tag(f.from));
                put_u32(&mut b, node_scope_tag(f.to));
            }
            Cmd::Heartbeat => b.push(9),
            Cmd::AdoptMr { key } => {
                b.push(10);
                put_u32(&mut b, *key);
            }
        }
        b
    }

    pub fn decode(data: &[u8]) -> Option<Cmd> {
        let mut r = Reader::new(data);
        let cmd = match r.u8()? {
            0 => Cmd::Hello { client: r.u32()? },
            1 => {
                let node = NodeId(r.u32()? as usize);
                let domain = domain_from(r.u8()?)?;
                Cmd::RegMr {
                    mem: MemRef { node, domain },
                    addr: r.u64()?,
                    len: r.u64()?,
                }
            }
            2 => Cmd::DeregMr { key: r.u32()? },
            3 => Cmd::CreateQp,
            4 => Cmd::CreateCq,
            5 => Cmd::RegOffloadMr { len: r.u64()? },
            6 => Cmd::DeregOffloadMr { key: r.u32()? },
            7 => Cmd::Bye,
            8 => Cmd::InjectFault(LinkFault {
                after_ops: r.u64()?,
                kind: fault_kind_from(r.u8()?)?,
                from: node_scope_from(r.u32()?),
                to: node_scope_from(r.u32()?),
            }),
            9 => Cmd::Heartbeat,
            10 => Cmd::AdoptMr { key: r.u32()? },
            _ => return None,
        };
        r.done().then_some(cmd)
    }
}

/// Frame a command with its client-assigned sequence id.
pub fn encode_cmd_frame(seq: u32, cmd: &Cmd) -> Vec<u8> {
    let mut b = Vec::with_capacity(36);
    put_u32(&mut b, seq);
    b.extend_from_slice(&cmd.encode());
    b
}

/// Decode a framed command into `(seq, cmd)`.
pub fn decode_cmd_frame(data: &[u8]) -> Option<(u32, Cmd)> {
    if data.len() < 4 {
        return None;
    }
    let seq = u32::from_le_bytes(data[..4].try_into().unwrap());
    Some((seq, Cmd::decode(&data[4..])?))
}

/// Frame a reply with the sequence id it answers and the daemon's
/// incarnation epoch.
pub fn encode_reply_frame(seq: u32, epoch: u32, reply: &Reply) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    put_u32(&mut b, seq);
    put_u32(&mut b, epoch);
    b.extend_from_slice(&reply.encode());
    b
}

/// Decode a framed reply into `(seq, epoch, reply)`.
pub fn decode_reply_frame(data: &[u8]) -> Option<(u32, u32, Reply)> {
    if data.len() < 8 {
        return None;
    }
    let seq = u32::from_le_bytes(data[..4].try_into().unwrap());
    let epoch = u32::from_le_bytes(data[4..8].try_into().unwrap());
    Some((seq, epoch, Reply::decode(&data[8..])?))
}

impl Reply {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(24);
        match self {
            Reply::Ok => b.push(0),
            Reply::MrKey { key } => {
                b.push(1);
                put_u32(&mut b, *key);
            }
            Reply::Offload {
                key,
                host_addr,
                host_len,
            } => {
                b.push(2);
                put_u32(&mut b, *key);
                put_u64(&mut b, *host_addr);
                put_u64(&mut b, *host_len);
            }
            Reply::Error { code } => {
                b.push(3);
                b.push(*code);
            }
            Reply::Hello { client } => {
                b.push(4);
                put_u32(&mut b, *client);
            }
        }
        b
    }

    pub fn decode(data: &[u8]) -> Option<Reply> {
        let mut r = Reader::new(data);
        let reply = match r.u8()? {
            0 => Reply::Ok,
            1 => Reply::MrKey { key: r.u32()? },
            2 => Reply::Offload {
                key: r.u32()?,
                host_addr: r.u64()?,
                host_len: r.u64()?,
            },
            3 => Reply::Error { code: r.u8()? },
            4 => Reply::Hello { client: r.u32()? },
            _ => return None,
        };
        r.done().then_some(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(c: Cmd) {
        let enc = c.encode();
        assert_eq!(Cmd::decode(&enc), Some(c));
    }

    fn roundtrip_reply(r: Reply) {
        let enc = r.encode();
        assert_eq!(Reply::decode(&enc), Some(r));
    }

    #[test]
    fn cmd_roundtrips() {
        roundtrip_cmd(Cmd::Hello {
            client: CLIENT_NONE,
        });
        roundtrip_cmd(Cmd::Hello { client: 12 });
        roundtrip_cmd(Cmd::Heartbeat);
        roundtrip_cmd(Cmd::AdoptMr { key: 99 });
        roundtrip_cmd(Cmd::RegMr {
            mem: MemRef {
                node: NodeId(3),
                domain: Domain::Phi,
            },
            addr: 0xDEAD_BEEF,
            len: 1 << 22,
        });
        roundtrip_cmd(Cmd::DeregMr { key: 42 });
        roundtrip_cmd(Cmd::CreateQp);
        roundtrip_cmd(Cmd::CreateCq);
        roundtrip_cmd(Cmd::RegOffloadMr { len: 8192 });
        roundtrip_cmd(Cmd::DeregOffloadMr { key: 17 });
        roundtrip_cmd(Cmd::Bye);
        roundtrip_cmd(Cmd::InjectFault(LinkFault {
            after_ops: 12,
            kind: LinkFaultKind::Fatal,
            from: Some(NodeId(2)),
            to: None,
        }));
        roundtrip_cmd(Cmd::InjectFault(LinkFault {
            after_ops: 0,
            kind: LinkFaultKind::Rnr,
            from: None,
            to: Some(NodeId(1)),
        }));
        roundtrip_cmd(Cmd::InjectFault(LinkFault {
            after_ops: u64::MAX,
            kind: LinkFaultKind::Retry,
            from: None,
            to: None,
        }));
    }

    #[test]
    fn bad_fault_kind_rejected() {
        let mut enc = Cmd::InjectFault(LinkFault {
            after_ops: 1,
            kind: LinkFaultKind::Rnr,
            from: None,
            to: None,
        })
        .encode();
        enc[9] = 5; // corrupt the fault-kind byte (after tag + after_ops)
        assert_eq!(Cmd::decode(&enc), None);
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip_reply(Reply::Ok);
        roundtrip_reply(Reply::MrKey { key: 7 });
        roundtrip_reply(Reply::Offload {
            key: 9,
            host_addr: 0x1000,
            host_len: 65536,
        });
        roundtrip_reply(Reply::Error {
            code: err_code::OOM,
        });
        roundtrip_reply(Reply::Error {
            code: err_code::NO_SESSION,
        });
        roundtrip_reply(Reply::Hello { client: 3 });
    }

    #[test]
    fn frames_carry_seq_and_epoch() {
        let cmd = Cmd::RegOffloadMr { len: 4096 };
        let enc = encode_cmd_frame(77, &cmd);
        assert_eq!(decode_cmd_frame(&enc), Some((77, cmd)));

        let reply = Reply::MrKey { key: 5 };
        let enc = encode_reply_frame(77, 3, &reply);
        assert_eq!(decode_reply_frame(&enc), Some((77, 3, reply)));

        // Truncated frames and frames wrapping garbage are rejected.
        assert_eq!(decode_cmd_frame(&[1, 2, 3]), None);
        assert_eq!(decode_cmd_frame(&77u32.to_le_bytes()), None);
        assert_eq!(decode_reply_frame(&[0; 7]), None);
        let mut bad = encode_reply_frame(1, 1, &Reply::Ok);
        bad.push(0);
        assert_eq!(decode_reply_frame(&bad), None);
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        assert_eq!(Cmd::decode(&[]), None);
        assert_eq!(Cmd::decode(&[255]), None);
        let mut enc = Cmd::RegMr {
            mem: MemRef {
                node: NodeId(0),
                domain: Domain::Host,
            },
            addr: 1,
            len: 2,
        }
        .encode();
        enc.pop();
        assert_eq!(Cmd::decode(&enc), None);
        // Trailing junk rejected too.
        let mut enc = Cmd::Heartbeat.encode();
        enc.push(0);
        assert_eq!(Cmd::decode(&enc), None);
        assert_eq!(Reply::decode(&[9, 9]), None);
    }

    #[test]
    fn bad_domain_tag_rejected() {
        let mut b = vec![1u8];
        b.extend_from_slice(&0u32.to_le_bytes());
        b.push(7); // invalid domain
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(Cmd::decode(&b), None);
    }
}
