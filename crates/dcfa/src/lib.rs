//! # dcfa — Direct Communication Facility for Accelerators
//!
//! The paper's enabling substrate: a user-space InfiniBand Verbs library on
//! the Xeon Phi co-processor. Data-path operations (post send/recv, RDMA,
//! CQ polling) go directly from the co-processor to the HCA; resource
//! operations (HCA init, QP/CQ creation, memory registration) are offloaded
//! over a command channel to a host delegation daemon, so "users don't need
//! to write host assist programs anymore" (§I).
//!
//! Components (paper Fig. 3):
//!
//! * [`DcfaContext`] — the *DCFA IB IF*: same interface shape as host
//!   verbs, usable from Phi-resident simulated processes.
//! * [`wire`] — the *DCFA CMD* protocol between the Phi-side client and the
//!   host-side server.
//! * [`spawn_daemons`] — the host delegation daemon (CMD server), one per
//!   node, servicing offloaded requests and keeping created objects in a
//!   hash table.
//! * [`OffloadMr`] + `reg/sync/dereg_offload_mr` — the offloading send
//!   buffer (§IV-B4) that works around the slow HCA DMA read from Phi
//!   memory by staging sends through a host twin buffer.

mod context;
mod daemon;
pub mod wire;

pub use context::{DcfaConfig, DcfaContext, DcfaError, OffloadMr};
pub use daemon::{
    parse_daemon_fault_spec, spawn_daemons, spawn_daemons_with, spawn_node_daemon, CtrlEvent,
    CtrlHook, CtrlOp, CtrlPerf, DaemonConfig, DaemonFault, DaemonFaultKind, DcfaCounters,
    DcfaStats, PerfProbe, DCFA_PORT,
};
