//! The Phi-side DCFA library: the "DCFA IB IF" exposing the host's Verbs
//! interface in co-processor user space, plus the offloading send buffer.

use std::sync::Arc;

use fabric::{Buffer, Cluster, Domain, MemRef, NodeId};
use scif::{ScifError, ScifFabric};
use simcore::{Ctx, SimDuration};
use verbs::{CompletionQueue, IbFabric, MemoryRegion, MrKey, QueuePair, VerbsContext};

use crate::daemon::DCFA_PORT;
use crate::wire::{Cmd, Reply};

/// Errors surfaced by the DCFA user-space library.
#[derive(Debug)]
pub enum DcfaError {
    /// Couldn't reach the host delegation daemon.
    Connect(ScifError),
    /// The daemon refused or failed a command.
    Command { code: u8 },
    /// The daemon replied with something unexpected (protocol bug).
    Protocol,
}

impl std::fmt::Display for DcfaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcfaError::Connect(e) => write!(f, "cannot reach DCFA daemon: {e}"),
            DcfaError::Command { code } => write!(f, "DCFA command failed (code {code})"),
            DcfaError::Protocol => write!(f, "DCFA protocol violation"),
        }
    }
}

impl std::error::Error for DcfaError {}

/// An offloading memory region (paper §IV-B4, Fig. 6): the Phi-resident
/// user buffer plus its host twin. Sends source the *host* buffer after a
/// DMA-engine sync, sidestepping the slow HCA-reads-Phi path.
pub struct OffloadMr {
    // (Debug below — MemoryRegion carries a SimEvent, so derive won't do.)
    /// The Phi-resident user buffer.
    pub phi: Buffer,
    /// The host twin, registered as an InfiniBand MR.
    pub host_mr: MemoryRegion,
}

impl std::fmt::Debug for OffloadMr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffloadMr")
            .field("phi", &self.phi)
            .field("host", self.host_mr.buffer())
            .finish()
    }
}

/// The DCFA user-space context on a Xeon Phi co-processor: same interface
/// shape as the host Verbs library, with resource operations transparently
/// offloaded to the host delegation daemon over the command channel.
pub struct DcfaContext {
    // (Debug impl below.)
    vctx: VerbsContext,
    ep: scif::ScifEndpoint,
    cluster: Arc<Cluster>,
}

impl std::fmt::Debug for DcfaContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcfaContext")
            .field("node", &self.node())
            .finish_non_exhaustive()
    }
}

impl DcfaContext {
    /// Connect to the node's DCFA daemon and perform the hello handshake.
    /// Retries briefly to tolerate same-instant daemon startup.
    pub fn open(
        ctx: &mut Ctx,
        ib: &Arc<IbFabric>,
        scif_fabric: &Arc<ScifFabric>,
        node: NodeId,
    ) -> Result<DcfaContext, DcfaError> {
        let local = MemRef {
            node,
            domain: Domain::Phi,
        };
        let mut last_err = None;
        for _ in 0..4 {
            match scif_fabric.connect(ctx, local, Domain::Host, DCFA_PORT) {
                Ok(ep) => {
                    let dcfa = DcfaContext {
                        vctx: VerbsContext::open(ib.clone(), node, Domain::Phi),
                        ep,
                        cluster: ib.cluster().clone(),
                    };
                    match dcfa.roundtrip(ctx, Cmd::Hello)? {
                        Reply::Ok => return Ok(dcfa),
                        Reply::Error { code } => return Err(DcfaError::Command { code }),
                        _ => return Err(DcfaError::Protocol),
                    }
                }
                Err(e) => {
                    last_err = Some(e);
                    ctx.sleep(SimDuration::from_micros(1));
                }
            }
        }
        Err(DcfaError::Connect(last_err.unwrap()))
    }

    pub fn node(&self) -> NodeId {
        self.vctx.node()
    }

    /// Phi memory of this node.
    pub fn mem_ref(&self) -> MemRef {
        self.vctx.mem_ref()
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The underlying verbs context (data-path operations are direct).
    pub fn verbs(&self) -> &VerbsContext {
        &self.vctx
    }

    fn roundtrip(&self, ctx: &mut Ctx, cmd: Cmd) -> Result<Reply, DcfaError> {
        self.ep.send(ctx, &cmd.encode());
        let raw = self.ep.recv(ctx);
        Reply::decode(&raw).ok_or(DcfaError::Protocol)
    }

    /// Register a Phi-resident buffer as an InfiniBand memory region. The
    /// CMD client translates the buffer's pages to physical addresses and
    /// offloads the registration to the host daemon — this is why Phi-side
    /// registration "is much more expensive than that on the host"
    /// (§IV-B3), motivating DCFA-MPI's buffer cache pool.
    pub fn reg_mr(&self, ctx: &mut Ctx, buffer: Buffer) -> Result<MemoryRegion, DcfaError> {
        let cost = &self.cluster.config().cost;
        // Virtual→physical translation of every page, on a slow Phi core.
        ctx.sleep(cost.cpu_op(Domain::Phi) + cost.cmd_translate_per_page * buffer.pages());
        match self.roundtrip(
            ctx,
            Cmd::RegMr {
                mem: buffer.mem,
                addr: buffer.addr,
                len: buffer.len,
            },
        )? {
            Reply::MrKey { key } => self
                .vctx
                .fabric()
                .mr_handle(MrKey(key))
                .ok_or(DcfaError::Protocol),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Deregister a memory region through the daemon.
    pub fn dereg_mr(&self, ctx: &mut Ctx, mr: &MemoryRegion) -> Result<(), DcfaError> {
        match self.roundtrip(ctx, Cmd::DeregMr { key: mr.key().0 })? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Create a completion queue (resource setup offloaded; the CQ itself
    /// lives in Phi memory and is polled directly).
    pub fn create_cq(&self, ctx: &mut Ctx) -> Result<CompletionQueue, DcfaError> {
        match self.roundtrip(ctx, Cmd::CreateCq)? {
            Reply::Ok => Ok(self.vctx.create_cq()),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Create a reliable-connected QP. Resource initialization runs on the
    /// host; posts are issued from the Phi directly to the HCA.
    pub fn create_qp(
        &self,
        ctx: &mut Ctx,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
    ) -> Result<QueuePair, DcfaError> {
        match self.roundtrip(ctx, Cmd::CreateQp)? {
            Reply::Ok => Ok(self.vctx.create_qp(send_cq, recv_cq)),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// `reg_offload_mr`: allocate + register a host twin for `phi_buffer`
    /// (paper §IV-B4). Subsequent sends can source the host twin at full
    /// host DMA speed after a [`DcfaContext::sync_offload_mr`].
    pub fn reg_offload_mr(
        &self,
        ctx: &mut Ctx,
        phi_buffer: &Buffer,
    ) -> Result<OffloadMr, DcfaError> {
        assert_eq!(
            phi_buffer.mem.node,
            self.node(),
            "offload twin must be node-local"
        );
        match self.roundtrip(
            ctx,
            Cmd::RegOffloadMr {
                len: phi_buffer.len,
            },
        )? {
            Reply::Offload { key, .. } => {
                let host_mr = self
                    .vctx
                    .fabric()
                    .mr_handle(MrKey(key))
                    .ok_or(DcfaError::Protocol)?;
                Ok(OffloadMr {
                    phi: phi_buffer.clone(),
                    host_mr,
                })
            }
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// `sync_offload_mr`: DMA the latest bytes `[offset, offset+len)` from
    /// the Phi buffer into its host twin. Blocks until the host twin is
    /// up to date ("data must be synchronized into the corresponding host
    /// buffer using the DMA engine" before posting the send).
    pub fn sync_offload_mr(&self, ctx: &mut Ctx, omr: &OffloadMr, offset: u64, len: u64) {
        let src = omr.phi.slice(offset, len);
        let dst = omr.host_mr.buffer().slice(offset, len);
        let t = self.cluster.pci_dma(&src, &dst, ctx.now());
        ctx.wait_reason(&t.completion, "sync_offload_mr");
    }

    /// `dereg_offload_mr`: destroy the Phi-side descriptor, deregister the
    /// host MR and free the host twin.
    pub fn dereg_offload_mr(&self, ctx: &mut Ctx, omr: OffloadMr) -> Result<(), DcfaError> {
        match self.roundtrip(
            ctx,
            Cmd::DeregOffloadMr {
                key: omr.host_mr.key().0,
            },
        )? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Arm a link-fault plan on the cluster fabric through the host
    /// daemon. Lets a Phi-resident test harness schedule transport faults
    /// (consumed by the HCA model on matching posted operations) without
    /// any host-side assist code.
    pub fn inject_fault(&self, ctx: &mut Ctx, fault: fabric::LinkFault) -> Result<(), DcfaError> {
        match self.roundtrip(ctx, Cmd::InjectFault(fault))? {
            Reply::Ok => Ok(()),
            Reply::Error { code } => Err(DcfaError::Command { code }),
            _ => Err(DcfaError::Protocol),
        }
    }

    /// Tell the daemon this client is going away (handler exits).
    pub fn close(&self, ctx: &mut Ctx) {
        let _ = self.roundtrip(ctx, Cmd::Bye);
    }
}
